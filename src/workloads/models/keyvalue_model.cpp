// Key-Value model (Table 5 row 9, FaaS).
//
// Targets: SecureLease and Glamdring migrate essentially the same code
// (set() dominates; ~118 K static for both), so the whole gap is memory:
// the 158 MB store stays untrusted under SecureLease (4 MB enclave) but
// spills the EPC under Glamdring. With 500 K store operations this is the
// license-check-heaviest workload in the suite.
#include "workloads/models.hpp"
#include "workloads/model_builder.hpp"
#include "workloads/models/units.hpp"

namespace sl::workloads {

using namespace units;

AppModel make_keyvalue_model() {
  ModelBuilder b("Key-Value", "70MB, 500K elements");

  b.module("init",
           {
               {.name = "main", .code_instr = 2 * kK, .work_cycles = 5 * kM, .io = true},
               {.name = "op_driver", .code_instr = 2 * kK, .mem_bytes = 1 * kMB,
                .work_cycles = 5000, .invocations = 20 * kK, .io = true},
           });

  b.module("auth",
           {
               {.name = "check_license", .code_instr = 1200, .mem_bytes = 256 * kKB,
                .work_cycles = 200 * kK, .enclave_state = 256 * kKB, .am = true,
                .sensitive = true},
               {.name = "parse_license", .code_instr = 1000, .mem_bytes = 128 * kKB,
                .work_cycles = 100 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
               {.name = "verify_sig", .code_instr = 1300, .mem_bytes = 128 * kKB,
                .work_cycles = 300 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
           });

  // Key cluster: the store engine. set() owns the 158 MB store; hash_slot
  // is the hot helper keeping the cluster tight.
  b.module("store",
           {
               {.name = "set", .code_instr = 110'800, .mem_bytes = 158 * kMB,
                .work_cycles = 495 * kK, .invocations = 20 * kK,
                .page_touches = 2500 * kK, .random_access = true,
                .enclave_state = 3 * kMB, .key = true, .sensitive = true},
               {.name = "hash_slot", .code_instr = 3600, .mem_bytes = 256 * kKB,
                .work_cycles = 50, .invocations = 2 * kM,
                .enclave_state = 256 * kKB, .sensitive = true},
           });

  b.module("core_rest",
           {
               {.name = "compact", .code_instr = 200, .mem_bytes = 2 * kMB,
                .work_cycles = 3 * kB, .page_touches = 10 * kK, .sensitive = true},
           });

  b.call("main", "check_license", 1);
  b.call("main", "op_driver", 1);
  b.call("op_driver", "set", 20 * kK);   // boundary ECALLs (batched FaaS ops)
  b.call("set", "hash_slot", 2 * kM);    // intra-cluster (hot)
  b.call("main", "compact", 1);

  b.entry("main");
  return std::move(b).build();
}

}  // namespace sl::workloads
