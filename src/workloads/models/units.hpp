// Shared unit constants for the workload model tables.
#pragma once

#include <cstdint>

namespace sl::workloads::units {

inline constexpr std::uint64_t kK = 1'000;                 // thousand instructions
inline constexpr std::uint64_t kM = 1'000'000;             // million
inline constexpr std::uint64_t kB = 1'000'000'000;         // billion
inline constexpr std::uint64_t kKB = 1024;
inline constexpr std::uint64_t kMB = 1024 * 1024;

}  // namespace sl::workloads::units
