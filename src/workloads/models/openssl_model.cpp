// OpenSSL-like crypto-library model (Table 5 row 4).
//
// Targets: the cipher code base is huge (hundreds of K instructions), and
// the key cluster around decrypt() contains nearly all of it: SecureLease
// migrates 811.9 K of Glamdring's 815.3 K static instructions (99.6%) and
// 181 B of 189.1 B dynamic. The difference is memory: Glamdring pulls the
// ~300 MB of file/stream buffers into the EPC, SecureLease streams them
// from untrusted memory (4 MB enclave state).
#include "workloads/models.hpp"
#include "workloads/model_builder.hpp"
#include "workloads/models/units.hpp"

namespace sl::workloads {

using namespace units;

AppModel make_openssl_model() {
  ModelBuilder b("OpenSSL", "File Size: 151 MB");

  b.module("init",
           {
               {.name = "main", .code_instr = 2 * kK, .work_cycles = 5 * kM, .io = true},
               {.name = "stream_driver", .code_instr = 2500, .mem_bytes = 1 * kMB,
                .work_cycles = 5000, .invocations = 20 * kK, .io = true},
           });

  b.module("auth",
           {
               {.name = "check_license", .code_instr = 1100, .mem_bytes = 256 * kKB,
                .work_cycles = 200 * kK, .enclave_state = 256 * kKB, .am = true,
                .sensitive = true},
               {.name = "parse_license", .code_instr = 800, .mem_bytes = 128 * kKB,
                .work_cycles = 100 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
               {.name = "verify_sig", .code_instr = 1000, .mem_bytes = 128 * kKB,
                .work_cycles = 300 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
           });

  // Key cluster: the cipher core. decrypt() owns the large buffer region.
  b.module("cipher",
           {
               {.name = "decrypt", .code_instr = 500 * kK, .mem_bytes = 290 * kMB,
                .work_cycles = 6 * kM, .invocations = 20 * kK,
                .page_touches = 20 * kM, .random_access = false,
                .enclave_state = 2 * kMB, .key = true, .sensitive = true},
               {.name = "cipher_core", .code_instr = 200 * kK, .mem_bytes = 4 * kMB,
                .work_cycles = 5000, .invocations = 10 * kM,
                .enclave_state = 1 * kMB, .sensitive = true},
               {.name = "block_ops", .code_instr = 109 * kK, .mem_bytes = 2 * kMB,
                .work_cycles = 1100, .invocations = 10 * kM,
                .enclave_state = 512 * kKB, .sensitive = true},
           });

  b.module("core_rest",
           {
               {.name = "key_schedule", .code_instr = 1400, .mem_bytes = 1 * kMB,
                .work_cycles = 3 * kB, .sensitive = true},
               {.name = "io_buffer", .code_instr = 2 * kK, .mem_bytes = 12 * kMB,
                .work_cycles = 5100 * kM, .page_touches = 50 * kK,
                .sensitive = true},
           });

  b.call("main", "check_license", 1);
  b.call("main", "key_schedule", 1);
  b.call("main", "io_buffer", 1);
  b.call("main", "stream_driver", 1);
  b.call("stream_driver", "decrypt", 20 * kK);  // boundary ECALLs (batched)
  b.call("decrypt", "cipher_core", 10 * kM);    // intra-cluster (hot)

  b.entry("main");
  return std::move(b).build();
}

}  // namespace sl::workloads
