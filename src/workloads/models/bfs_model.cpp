// BFS model (Table 5 row 1).
//
// Calibration targets: SecureLease migrates the authentication module plus
// the frontier-update cluster {update, visit_push, visit_pop} — ~10 K static
// instructions (27.8% of Glamdring's 36.2 K) covering ~10.9 B of the ~11.6 B
// dynamic instructions; Glamdring's sensitive-data closure drags in nearly
// the whole app with a ~200 MB enclave footprint (the CSR graph), while
// SecureLease keeps the graph untrusted and needs only ~4 MB.
#include "workloads/models.hpp"
#include "workloads/model_builder.hpp"
#include "workloads/models/units.hpp"

namespace sl::workloads {

using namespace units;

AppModel make_bfs_model() {
  ModelBuilder b("BFS", "Nodes: 1M, Edges: 23M");

  b.module("init",
           {
               {.name = "main", .code_instr = 2 * kK, .work_cycles = 5 * kM, .io = true},
               {.name = "parse_args", .code_instr = 1200, .work_cycles = 100 * kK,
                .io = true},
               {.name = "load_graph", .code_instr = 6 * kK, .mem_bytes = 8 * kMB,
                .work_cycles = 200 * kM, .sensitive = true, .io = true},
               {.name = "graph_alloc", .code_instr = 2500, .mem_bytes = 2 * kMB,
                .work_cycles = 10 * kM, .sensitive = true},
           });

  b.module("auth",
           {
               {.name = "check_license", .code_instr = 1200, .mem_bytes = 256 * kKB,
                .work_cycles = 200 * kK, .enclave_state = 256 * kKB, .am = true,
                .sensitive = true},
               {.name = "parse_license", .code_instr = 1000, .mem_bytes = 128 * kKB,
                .work_cycles = 100 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
               {.name = "verify_sig", .code_instr = 1300, .mem_bytes = 128 * kKB,
                .work_cycles = 300 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
           });

  // The key cluster: frontier expansion. `update` owns the 184 MB CSR graph
  // region; under SecureLease that data stays untrusted (enclave_state is
  // small), under Glamdring it lives in the EPC and thrashes.
  b.module("frontier",
           {
               {.name = "update", .code_instr = 4 * kK, .mem_bytes = 184 * kMB,
                .work_cycles = 920 * kK, .invocations = 10 * kK,
                .page_touches = 700 * kK, .random_access = true,
                .enclave_state = 2560 * kKB, .key = true, .sensitive = true},
               {.name = "visit_push", .code_instr = 1500, .mem_bytes = 4 * kMB,
                .work_cycles = 840, .invocations = 1 * kM, .page_touches = 20 * kK,
                .enclave_state = 512 * kKB, .sensitive = true},
               {.name = "visit_pop", .code_instr = 1000, .mem_bytes = 2 * kMB,
                .work_cycles = 840, .invocations = 1 * kM, .page_touches = 10 * kK,
                .enclave_state = 512 * kKB, .sensitive = true},
           });

  // Remaining protected region: migrated by Glamdring only. Internally hot
  // (edge_iter/bitmap_ops) so it clusters apart from the frontier kernel.
  b.module("core_rest",
           {
               {.name = "bfs_run", .code_instr = 4 * kK, .mem_bytes = 1 * kMB,
                .work_cycles = 300 * kM, .sensitive = true},
               {.name = "init_frontier", .code_instr = 2200, .mem_bytes = 1 * kMB,
                .work_cycles = 1 * kM, .sensitive = true},
               {.name = "edge_iter", .code_instr = 5 * kK, .mem_bytes = 2 * kMB,
                .work_cycles = 1000, .invocations = 100 * kK, .sensitive = true},
               {.name = "bitmap_ops", .code_instr = 3500, .mem_bytes = 2 * kMB,
                .work_cycles = 500, .invocations = 200 * kK, .sensitive = true},
               {.name = "compute_stats", .code_instr = 3 * kK, .mem_bytes = 1 * kMB,
                .work_cycles = 50 * kM, .sensitive = true},
           });

  b.call("main", "parse_args", 1);
  b.call("main", "check_license", 1);
  b.call("main", "load_graph", 1);
  b.call("load_graph", "graph_alloc", 4);
  b.call("main", "bfs_run", 1);
  b.call("bfs_run", "init_frontier", 1);
  b.call("bfs_run", "update", 10 * kK);      // partition-boundary ECALLs (batched)
  b.call("bfs_run", "edge_iter", 100 * kK);  // intra core_rest (hot)
  b.call("edge_iter", "bitmap_ops", 200 * kK);
  b.call("main", "compute_stats", 1);

  b.entry("main");
  return std::move(b).build();
}

}  // namespace sl::workloads
