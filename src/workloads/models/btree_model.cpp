// B-Tree model (Table 5 row 2).
//
// Targets: SecureLease migrates find()/leaf()/create() plus the AM — 23.4 K
// static (97.9% of Glamdring's 23.9 K; this workload's protected region IS
// essentially the index), 23.5 B of 29.6 B dynamic instructions; the 270 MB
// tree stays untrusted under SecureLease (4 MB enclave) but lives in the
// EPC under Glamdring (~280 MB, heavy eviction traffic).
#include "workloads/models.hpp"
#include "workloads/model_builder.hpp"
#include "workloads/models/units.hpp"

namespace sl::workloads {

using namespace units;

AppModel make_btree_model() {
  ModelBuilder b("B-Tree", "Elements: 3M");

  b.module("init",
           {
               {.name = "main", .code_instr = 2 * kK, .work_cycles = 5 * kM, .io = true},
               {.name = "load_data", .code_instr = 3 * kK, .mem_bytes = 4 * kMB,
                .work_cycles = 20 * kM, .io = true},
           });

  b.module("auth",
           {
               {.name = "check_license", .code_instr = 1200, .mem_bytes = 256 * kKB,
                .work_cycles = 200 * kK, .enclave_state = 256 * kKB, .am = true,
                .sensitive = true},
               {.name = "parse_license", .code_instr = 1000, .mem_bytes = 128 * kKB,
                .work_cycles = 100 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
               {.name = "verify_sig", .code_instr = 1300, .mem_bytes = 128 * kKB,
                .work_cycles = 300 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
           });

  // Key cluster: the index operations. find() owns the 270 MB tree region.
  b.module("index",
           {
               {.name = "find", .code_instr = 8 * kK, .mem_bytes = 270 * kMB,
                .work_cycles = 1500 * kK, .invocations = 10 * kK,
                .page_touches = 950 * kK, .random_access = true,
                .enclave_state = 2 * kMB, .key = true, .sensitive = true},
               {.name = "leaf", .code_instr = 6 * kK, .mem_bytes = 4 * kMB,
                .work_cycles = 2000, .invocations = 3 * kM,
                .page_touches = 50 * kK, .random_access = true,
                .enclave_state = 768 * kKB, .key = true, .sensitive = true},
               {.name = "create", .code_instr = 5900, .mem_bytes = 2 * kMB,
                .work_cycles = 250 * kK, .invocations = 10 * kK,
                .page_touches = 20 * kK, .enclave_state = 512 * kKB, .key = true,
                .sensitive = true},
           });

  b.module("core_rest",
           {
               {.name = "insert_driver", .code_instr = 500, .mem_bytes = 8 * kMB,
                .work_cycles = 6100 * kM, .page_touches = 60 * kK,
                .sensitive = true, .io = true},
           });

  b.module("driver",
           {
               {.name = "lookup_driver", .code_instr = 2500, .mem_bytes = 1 * kMB,
                .work_cycles = 3000, .invocations = 10 * kK, .io = true},
           });

  b.call("main", "check_license", 1);
  b.call("main", "load_data", 1);
  b.call("main", "insert_driver", 1);
  b.call("main", "lookup_driver", 1);
  b.call("lookup_driver", "find", 10 * kK);   // boundary ECALLs (batched)
  b.call("find", "leaf", 1500 * kK);          // intra-cluster (hot)
  b.call("insert_driver", "create", 10 * kK); // boundary ECALLs (batched)
  b.call("create", "leaf", 1500 * kK);        // intra-cluster (hot)

  b.entry("main");
  return std::move(b).build();
}

}  // namespace sl::workloads
