// Matrix-multiplication model (Table 5 row 11, FaaS).
//
// Targets: SecureLease migrates multiply() + AM (101 K of Glamdring's
// 122 K static, 99.85% dynamic). SecureLease keeps an 80 MB tile workspace
// inside the enclave (fits the EPC, matching the paper's 81 MB) and
// streams matrices from untrusted memory; Glamdring keeps the full 300 MB
// of matrices inside and pays steady eviction traffic.
#include "workloads/models.hpp"
#include "workloads/model_builder.hpp"
#include "workloads/models/units.hpp"

namespace sl::workloads {

using namespace units;

AppModel make_matmult_model() {
  ModelBuilder b("Mat. Mult.", "Dimension: 2000 x 2000");

  b.module("init",
           {
               {.name = "main", .code_instr = 2 * kK, .work_cycles = 5 * kM, .io = true},
               {.name = "job_driver", .code_instr = 1800, .mem_bytes = 1 * kMB,
                .work_cycles = 3000, .invocations = 20 * kK, .io = true},
           });

  b.module("auth",
           {
               {.name = "check_license", .code_instr = 1200, .mem_bytes = 256 * kKB,
                .work_cycles = 200 * kK, .enclave_state = 256 * kKB, .am = true,
                .sensitive = true},
               {.name = "parse_license", .code_instr = 1000, .mem_bytes = 128 * kKB,
                .work_cycles = 100 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
               {.name = "verify_sig", .code_instr = 1300, .mem_bytes = 128 * kKB,
                .work_cycles = 300 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
           });

  // Key cluster: the blocked multiply kernel; tile_mac is its hot helper.
  b.module("kernel",
           {
               {.name = "multiply", .code_instr = 90 * kK, .mem_bytes = 300 * kMB,
                .work_cycles = 9575 * kK, .invocations = 20 * kK,
                .page_touches = 9 * kM, .random_access = false,
                .enclave_state = 80 * kMB, .key = true, .sensitive = true},
               {.name = "tile_mac", .code_instr = 7500, .mem_bytes = 1 * kMB,
                .work_cycles = 100, .invocations = 10 * kM,
                .enclave_state = 1 * kMB, .sensitive = true},
           });

  b.module("core_rest",
           {
               {.name = "transpose", .code_instr = 8 * kK, .mem_bytes = 8 * kMB,
                .work_cycles = 100 * kM, .sensitive = true},
               {.name = "alloc_mats", .code_instr = 6 * kK, .mem_bytes = 8 * kMB,
                .work_cycles = 50 * kM, .sensitive = true},
               {.name = "result_copy", .code_instr = 7 * kK, .mem_bytes = 4 * kMB,
                .work_cycles = 50 * kM, .sensitive = true},
           });

  b.call("main", "check_license", 1);
  b.call("main", "alloc_mats", 1);
  b.call("main", "transpose", 1);
  b.call("main", "job_driver", 1);
  b.call("job_driver", "multiply", 20 * kK);  // boundary ECALLs (FaaS jobs)
  b.call("multiply", "tile_mac", 10 * kM);    // intra-cluster (hot)
  b.call("main", "result_copy", 1);

  b.entry("main");
  return std::move(b).build();
}

}  // namespace sl::workloads
