// JSONParser model (Table 5 row 10, FaaS).
//
// Targets: SecureLease migrates parse() + AM (566 K of Glamdring's 580 K
// static, 98.8% dynamic). Footprints are small (34 vs 4 MB) so nobody
// faults; Glamdring's residual cost is the OCALL traffic of the migrated
// emit stage, giving SecureLease a single-digit advantage (paper: 8.88%).
#include "workloads/models.hpp"
#include "workloads/model_builder.hpp"
#include "workloads/models/units.hpp"

namespace sl::workloads {

using namespace units;

AppModel make_jsonparser_model() {
  ModelBuilder b("JSONParser", "Size: 1KB, Count: 10K");

  b.module("init",
           {
               {.name = "main", .code_instr = 2 * kK, .work_cycles = 5 * kM, .io = true},
               {.name = "doc_driver", .code_instr = 1500, .mem_bytes = 1 * kMB,
                .work_cycles = 2000, .invocations = 10 * kK, .io = true},
           });

  b.module("auth",
           {
               {.name = "check_license", .code_instr = 1200, .mem_bytes = 256 * kKB,
                .work_cycles = 200 * kK, .enclave_state = 256 * kKB, .am = true,
                .sensitive = true},
               {.name = "parse_license", .code_instr = 1000, .mem_bytes = 128 * kKB,
                .work_cycles = 100 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
               {.name = "verify_sig", .code_instr = 1300, .mem_bytes = 128 * kKB,
                .work_cycles = 300 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
           });

  // Key cluster: the parser (table-driven, hence the large static size);
  // lex_token is the hot helper keeping the cluster tight.
  b.module("parser",
           {
               {.name = "parse", .code_instr = 500 * kK, .mem_bytes = 28 * kMB,
                .work_cycles = 1210 * kK, .invocations = 10 * kK,
                .page_touches = 60 * kK, .enclave_state = 3 * kMB, .key = true,
                .sensitive = true},
               {.name = "lex_token", .code_instr = 62'500, .mem_bytes = 2 * kMB,
                .work_cycles = 80, .invocations = 3 * kM,
                .enclave_state = 512 * kKB, .sensitive = true},
           });

  b.module("core_rest",
           {
               {.name = "validate_schema", .code_instr = 8 * kK, .mem_bytes = 2 * kMB,
                .work_cycles = 10 * kK, .invocations = 10 * kK, .sensitive = true},
               {.name = "emit", .code_instr = 6 * kK, .mem_bytes = 2 * kMB,
                .work_cycles = 6000, .invocations = 10 * kK, .sensitive = true},
           });

  b.module("io",
           {
               {.name = "io_write", .code_instr = 900, .mem_bytes = 256 * kKB,
                .work_cycles = 700, .invocations = 100 * kK, .io = true},
           });

  b.call("main", "check_license", 1);
  b.call("main", "doc_driver", 1);
  b.call("doc_driver", "parse", 10 * kK);  // boundary ECALLs (FaaS calls)
  b.call("parse", "lex_token", 3 * kM);    // intra-cluster (hot)
  b.call("doc_driver", "validate_schema", 10 * kK);
  b.call("validate_schema", "emit", 10 * kK);
  b.call("emit", "io_write", 100 * kK);  // OCALLs under Glamdring

  b.entry("main");
  return std::move(b).build();
}

}  // namespace sl::workloads
