// MapReduce model (Table 5 row 8, FaaS).
//
// Targets: SecureLease migrates tokenize()/word_count() + AM (103 K of
// Glamdring's 104 K static, 92.5% dynamic coverage). Both schemes fit the
// EPC (82 vs 66 MB), so the gap comes from boundary traffic: Glamdring
// migrates the shuffle stage whose intermediate-file writes become an
// OCALL storm; SecureLease leaves shuffle untrusted.
#include "workloads/models.hpp"
#include "workloads/model_builder.hpp"
#include "workloads/models/units.hpp"

namespace sl::workloads {

using namespace units;

AppModel make_mapreduce_model() {
  ModelBuilder b("MapReduce", "Data: 19MB, Map:5, Reduce:2");

  b.module("init",
           {
               {.name = "main", .code_instr = 2 * kK, .work_cycles = 5 * kM, .io = true},
               {.name = "job_scheduler", .code_instr = 2500, .mem_bytes = 1 * kMB,
                .work_cycles = 2000, .invocations = 35 * kK, .io = true},
           });

  b.module("auth",
           {
               {.name = "check_license", .code_instr = 1200, .mem_bytes = 256 * kKB,
                .work_cycles = 200 * kK, .enclave_state = 256 * kKB, .am = true,
                .sensitive = true},
               {.name = "parse_license", .code_instr = 1000, .mem_bytes = 128 * kKB,
                .work_cycles = 100 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
               {.name = "verify_sig", .code_instr = 1300, .mem_bytes = 128 * kKB,
                .work_cycles = 300 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
           });

  // Key cluster: map+reduce task bodies. FaaS task buffers live inside the
  // enclave under both schemes; emit_kv is the shared hot helper that keeps
  // the two task types in one cluster.
  b.module("tasks",
           {
               {.name = "tokenize", .code_instr = 55 * kK, .mem_bytes = 40 * kMB,
                .work_cycles = 308 * kK, .invocations = 25 * kK,
                .page_touches = 80 * kK, .enclave_state = 40 * kMB, .key = true,
                .sensitive = true},
               {.name = "word_count", .code_instr = 40'500, .mem_bytes = 25 * kMB,
                .work_cycles = 490 * kK, .invocations = 10 * kK,
                .page_touches = 40 * kK, .enclave_state = 25 * kMB, .key = true,
                .sensitive = true},
               {.name = "emit_kv", .code_instr = 4 * kK, .mem_bytes = 1 * kMB,
                .work_cycles = 100, .invocations = 3 * kM,
                .enclave_state = 1 * kMB, .sensitive = true},
           });

  b.module("core_rest",
           {
               {.name = "shuffle", .code_instr = 1 * kK, .mem_bytes = 16 * kMB,
                .work_cycles = 22 * kK, .invocations = 50 * kK,
                .page_touches = 30 * kK, .sensitive = true},
           });

  b.module("io",
           {
               {.name = "io_write", .code_instr = 900, .mem_bytes = 512 * kKB,
                .work_cycles = 800, .invocations = 700 * kK, .io = true},
           });

  b.call("main", "check_license", 1);
  b.call("main", "job_scheduler", 1);
  b.call("job_scheduler", "tokenize", 25 * kK);    // boundary ECALLs (FaaS calls)
  b.call("job_scheduler", "word_count", 10 * kK);  // boundary ECALLs (FaaS calls)
  b.call("tokenize", "emit_kv", 2 * kM);           // intra-cluster (hot)
  b.call("word_count", "emit_kv", 1 * kM);         // intra-cluster (hot)
  b.call("job_scheduler", "shuffle", 50 * kK);
  b.call("shuffle", "io_write", 700 * kK);  // OCALL storm under Glamdring

  b.entry("main");
  return std::move(b).build();
}

}  // namespace sl::workloads
