// Workload registry: the eleven Table 4 workloads in paper order, with the
// per-run license-check counts used by the Figure 9 end-to-end experiment
// (the paper reports 10 K checks for JSONParser up to 500 K for Key-Value).
#include "workloads/models.hpp"

namespace sl::workloads {

const std::vector<WorkloadEntry>& all_workloads() {
  static const std::vector<WorkloadEntry> entries = {
      {"BFS", false, 100, make_bfs_model},
      {"B-Tree", false, 100, make_btree_model},
      {"HashJoin", false, 100, make_hashjoin_model},
      {"OpenSSL", false, 300, make_openssl_model},
      {"PageRank", false, 100, make_pagerank_model},
      {"Blockchain", false, 1'000, make_blockchain_model},
      {"SVM", false, 500, make_svm_model},
      {"MapReduce", true, 35'000, make_mapreduce_model},
      {"Key-Value", true, 500'000, make_keyvalue_model},
      {"JSONParser", true, 10'000, make_jsonparser_model},
      {"Mat. Mult.", true, 20'000, make_matmult_model},
  };
  return entries;
}

}  // namespace sl::workloads
