// Blockchain model (Table 5 row 6).
//
// Targets: SecureLease migrates insert()/hash() + AM (11.2 K of Glamdring's
// 32.9 K static, 97% dynamic coverage). The whole ledger state is tiny
// (4 MB) so neither scheme faults; Glamdring's small residual cost is the
// OCALL traffic of the migrated gossip stage — the paper reports only a
// 3.3% gap, making this the "enclave tax only" row.
#include "workloads/models.hpp"
#include "workloads/model_builder.hpp"
#include "workloads/models/units.hpp"

namespace sl::workloads {

using namespace units;

AppModel make_blockchain_model() {
  ModelBuilder b("Blockchain", "Chain length: 1000");

  b.module("init",
           {
               {.name = "main", .code_instr = 2 * kK, .work_cycles = 5 * kM, .io = true},
               {.name = "txn_driver", .code_instr = 1500, .mem_bytes = 512 * kKB,
                .work_cycles = 5000, .invocations = 1000, .io = true},
           });

  b.module("auth",
           {
               {.name = "check_license", .code_instr = 1200, .mem_bytes = 256 * kKB,
                .work_cycles = 200 * kK, .enclave_state = 256 * kKB, .am = true,
                .sensitive = true},
               {.name = "parse_license", .code_instr = 1000, .mem_bytes = 128 * kKB,
                .work_cycles = 100 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
               {.name = "verify_sig", .code_instr = 1300, .mem_bytes = 128 * kKB,
                .work_cycles = 300 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
           });

  // Key cluster: block creation + mining hash.
  b.module("ledger",
           {
               {.name = "insert", .code_instr = 4200, .mem_bytes = 1 * kMB,
                .work_cycles = 29'600 * kK, .invocations = 1000,
                .enclave_state = 1 * kMB, .key = true, .sensitive = true},
               {.name = "hash", .code_instr = 3500, .mem_bytes = 512 * kKB,
                .work_cycles = 200 * kK, .invocations = 500 * kK,
                .enclave_state = 512 * kKB, .key = true, .sensitive = true},
           });

  b.module("core_rest",
           {
               {.name = "validate", .code_instr = 5 * kK, .mem_bytes = 512 * kKB,
                .work_cycles = 2 * kB, .sensitive = true},
               {.name = "serialize", .code_instr = 4200, .mem_bytes = 512 * kKB,
                .work_cycles = 1 * kM, .invocations = 1000, .sensitive = true},
               {.name = "txpool", .code_instr = 5500, .mem_bytes = 1 * kMB,
                .work_cycles = 500 * kM, .sensitive = true},
               {.name = "net_gossip", .code_instr = 7 * kK, .mem_bytes = 512 * kKB,
                .work_cycles = 4000, .invocations = 300 * kK, .sensitive = true},
           });

  b.module("io",
           {
               {.name = "socket_send", .code_instr = 1 * kK, .mem_bytes = 256 * kKB,
                .work_cycles = 500, .invocations = 300 * kK, .io = true},
           });

  b.call("main", "check_license", 1);
  b.call("main", "txn_driver", 1);
  b.call("txn_driver", "insert", 1000);   // boundary ECALLs
  b.call("insert", "hash", 500 * kK);     // intra-cluster (mining loop)
  b.call("main", "validate", 1);
  b.call("validate", "serialize", 1000);
  b.call("txn_driver", "txpool", 1000);
  b.call("main", "net_gossip", 1);
  b.call("net_gossip", "socket_send", 300 * kK);  // OCALL storm under Glamdring

  b.entry("main");
  return std::move(b).build();
}

}  // namespace sl::workloads
