// HashJoin model (Table 5 row 3).
//
// Targets: SecureLease migrates probe() + hash helper + AM (10.3 K static,
// 45% of Glamdring's 22.9 K; 30.2 B of 33 B dynamic). Glamdring keeps the
// 1.22 GB-class hash table (modelled as 120 MB hot region) inside the EPC
// and thrashes massively — this is the workload with the worst Glamdring
// paging behaviour in the paper (millions of evictions).
#include "workloads/models.hpp"
#include "workloads/model_builder.hpp"
#include "workloads/models/units.hpp"

namespace sl::workloads {

using namespace units;

AppModel make_hashjoin_model() {
  ModelBuilder b("HashJoin", "Data Table Size: 1.22 GB");

  b.module("init",
           {
               {.name = "main", .code_instr = 2 * kK, .work_cycles = 5 * kM, .io = true},
               {.name = "probe_driver", .code_instr = 2 * kK, .mem_bytes = 1 * kMB,
                .work_cycles = 3000, .invocations = 20 * kK, .io = true},
           });

  b.module("auth",
           {
               {.name = "check_license", .code_instr = 1200, .mem_bytes = 256 * kKB,
                .work_cycles = 200 * kK, .enclave_state = 256 * kKB, .am = true,
                .sensitive = true},
               {.name = "parse_license", .code_instr = 1000, .mem_bytes = 128 * kKB,
                .work_cycles = 100 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
               {.name = "verify_sig", .code_instr = 1300, .mem_bytes = 128 * kKB,
                .work_cycles = 300 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
           });

  // Key cluster: the probe pipeline. probe() owns the hot hash-table region.
  b.module("probe_mod",
           {
               {.name = "probe", .code_instr = 5 * kK, .mem_bytes = 120 * kMB,
                .work_cycles = 1485 * kK, .invocations = 20 * kK,
                .page_touches = 25 * kM, .random_access = true,
                .enclave_state = 3 * kMB, .key = true, .sensitive = true},
               {.name = "hash_fn", .code_instr = 1800, .mem_bytes = 64 * kKB,
                .work_cycles = 25, .invocations = 20 * kM,
                .enclave_state = 64 * kKB, .sensitive = true},
           });

  b.module("core_rest",
           {
               {.name = "build", .code_instr = 4500, .mem_bytes = 6 * kMB,
                .work_cycles = 2 * kB, .page_touches = 30 * kK, .sensitive = true},
               {.name = "partition_input", .code_instr = 3200, .mem_bytes = 8 * kMB,
                .work_cycles = 500 * kM, .sensitive = true},
               {.name = "radix_prep", .code_instr = 2400, .mem_bytes = 2 * kMB,
                .work_cycles = 200 * kM, .sensitive = true},
               {.name = "io_read", .code_instr = 2500, .mem_bytes = 2 * kMB,
                .work_cycles = 100 * kM, .sensitive = true},
           });

  b.call("main", "check_license", 1);
  b.call("main", "io_read", 1);
  b.call("main", "partition_input", 1);
  b.call("partition_input", "radix_prep", 2);
  b.call("main", "build", 1);
  b.call("main", "probe_driver", 1);
  b.call("probe_driver", "probe", 20 * kK);  // boundary ECALLs (batched)
  b.call("probe", "hash_fn", 20 * kM);       // intra-cluster (hot)

  b.entry("main");
  return std::move(b).build();
}

}  // namespace sl::workloads
