// PageRank model (Table 5 row 5).
//
// Targets: SecureLease migrates map()/reduce()/set_rank() + AM (10.5 K of
// Glamdring's 23.3 K static, 99.1% dynamic coverage). The 50 M-edge graph
// (~1.3 GB) is by far the largest footprint in the suite: Glamdring's
// enclave thrashes the EPC hard (paper reports ~2.2 M evictions), while
// SecureLease leaves the edges untrusted.
#include "workloads/models.hpp"
#include "workloads/model_builder.hpp"
#include "workloads/models/units.hpp"

namespace sl::workloads {

using namespace units;

AppModel make_pagerank_model() {
  ModelBuilder b("PageRank", "Nodes: 10K, Edges: 50M");

  b.module("init",
           {
               {.name = "main", .code_instr = 2 * kK, .work_cycles = 5 * kM, .io = true},
               {.name = "iterate", .code_instr = 2 * kK, .mem_bytes = 1 * kMB,
                .work_cycles = 2000, .invocations = 20, .io = true},
           });

  b.module("auth",
           {
               {.name = "check_license", .code_instr = 1200, .mem_bytes = 256 * kKB,
                .work_cycles = 200 * kK, .enclave_state = 256 * kKB, .am = true,
                .sensitive = true},
               {.name = "parse_license", .code_instr = 1000, .mem_bytes = 128 * kKB,
                .work_cycles = 100 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
               {.name = "verify_sig", .code_instr = 1300, .mem_bytes = 128 * kKB,
                .work_cycles = 300 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
           });

  // Key cluster: the rank kernel. map() owns the 1.3 GB edge region.
  b.module("rank_kernel",
           {
               {.name = "map", .code_instr = 3 * kK, .mem_bytes = 1340 * kMB,
                .work_cycles = 600 * kK, .invocations = 10 * kK,
                .page_touches = 2200 * kK, .random_access = true,
                .enclave_state = 2 * kMB, .key = true, .sensitive = true},
               {.name = "reduce", .code_instr = 2200, .mem_bytes = 4 * kMB,
                .work_cycles = 200 * kK, .invocations = 10 * kK,
                .page_touches = 20 * kK, .enclave_state = 1 * kMB, .key = true,
                .sensitive = true},
               {.name = "set_rank", .code_instr = 1800, .mem_bytes = 2 * kMB,
                .work_cycles = 4000, .invocations = 200 * kK,
                .enclave_state = 512 * kKB, .key = true, .sensitive = true},
           });

  b.module("core_rest",
           {
               {.name = "load_edges", .code_instr = 4 * kK, .mem_bytes = 8 * kMB,
                .work_cycles = 50 * kM, .sensitive = true},
               {.name = "init_ranks", .code_instr = 2 * kK, .mem_bytes = 1 * kMB,
                .work_cycles = 5 * kM, .sensitive = true},
               {.name = "normalize", .code_instr = 2800, .mem_bytes = 1 * kMB,
                .work_cycles = 10 * kM, .sensitive = true},
               {.name = "convergence", .code_instr = 2 * kK, .mem_bytes = 1 * kMB,
                .work_cycles = 5 * kM, .sensitive = true},
               {.name = "alloc_graph", .code_instr = 2 * kK, .mem_bytes = 2 * kMB,
                .work_cycles = 10 * kM, .sensitive = true},
           });

  b.call("main", "check_license", 1);
  b.call("main", "load_edges", 1);
  b.call("load_edges", "alloc_graph", 1);
  b.call("main", "init_ranks", 1);
  b.call("main", "iterate", 20);
  b.call("iterate", "map", 10 * kK);       // boundary ECALLs (batched)
  b.call("iterate", "reduce", 10 * kK);    // boundary ECALLs (batched)
  b.call("map", "set_rank", 100 * kK);     // intra-cluster (hot)
  b.call("reduce", "set_rank", 100 * kK);  // intra-cluster (hot)
  b.call("iterate", "normalize", 20);
  b.call("iterate", "convergence", 20);

  b.entry("main");
  return std::move(b).build();
}

}  // namespace sl::workloads
