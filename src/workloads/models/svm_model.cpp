// SVM model (Table 5 row 7).
//
// Targets: SecureLease migrates predict() + AM (11.58 K of 12.52 K static,
// 99.4% dynamic coverage). The model weights ARE the vendor's IP, so unlike
// the data-heavy workloads SecureLease keeps them inside the enclave: its
// footprint is 85 MB (just under the EPC), vs Glamdring's 110 MB which
// spills. Glamdring additionally pays OCALLs for the training loop's
// logging/IO that SecureLease never migrates.
#include "workloads/models.hpp"
#include "workloads/model_builder.hpp"
#include "workloads/models/units.hpp"

namespace sl::workloads {

using namespace units;

AppModel make_svm_model() {
  ModelBuilder b("SVM", "Data: 4000, Features: 128");

  b.module("init",
           {
               {.name = "main", .code_instr = 2 * kK, .work_cycles = 5 * kM, .io = true},
               {.name = "batch_driver", .code_instr = 1800, .mem_bytes = 1 * kMB,
                .work_cycles = 4000, .invocations = 20 * kK, .io = true},
           });

  b.module("auth",
           {
               {.name = "check_license", .code_instr = 1200, .mem_bytes = 256 * kKB,
                .work_cycles = 200 * kK, .enclave_state = 256 * kKB, .am = true,
                .sensitive = true},
               {.name = "parse_license", .code_instr = 1000, .mem_bytes = 128 * kKB,
                .work_cycles = 100 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
               {.name = "verify_sig", .code_instr = 1300, .mem_bytes = 128 * kKB,
                .work_cycles = 300 * kK, .enclave_state = 128 * kKB, .am = true,
                .sensitive = true},
           });

  // Key cluster: inference. The 84 MB model stays in the enclave under
  // BOTH schemes (enclave_state == mem region here — the weights are IP).
  b.module("inference",
           {
               {.name = "predict", .code_instr = 7 * kK, .mem_bytes = 84 * kMB,
                .work_cycles = 14'660 * kK, .invocations = 20 * kK,
                .page_touches = 310 * kK, .random_access = true,
                .enclave_state = 84 * kMB, .key = true, .sensitive = true},
               {.name = "dot_product", .code_instr = 1080, .mem_bytes = 256 * kKB,
                .work_cycles = 50, .invocations = 5 * kM,
                .enclave_state = 256 * kKB, .sensitive = true},
           });

  b.module("core_rest",
           {
               {.name = "train_update", .code_instr = 940, .mem_bytes = 25 * kMB,
                .work_cycles = 375, .invocations = 4 * kM,
                .page_touches = 100 * kK, .random_access = true,
                .sensitive = true},
           });

  b.module("io",
           {
               {.name = "io_log", .code_instr = 800, .mem_bytes = 256 * kKB,
                .work_cycles = 500, .invocations = 4 * kM, .io = true},
           });

  b.call("main", "check_license", 1);
  b.call("main", "train_update", 4 * kM);
  b.call("train_update", "io_log", 4 * kM);  // OCALL storm under Glamdring
  b.call("main", "batch_driver", 1);
  b.call("batch_driver", "predict", 20 * kK);  // boundary ECALLs (batched)
  b.call("predict", "dot_product", 5 * kM);    // intra-cluster (hot)

  b.entry("main");
  return std::move(b).build();
}

}  // namespace sl::workloads
