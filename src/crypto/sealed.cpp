#include "crypto/sealed.hpp"

#include "crypto/aes128.hpp"
#include "crypto/sha256.hpp"

namespace sl::crypto {

namespace {
// CTR nonce for sealed payloads; uniqueness comes from the fresh per-commit
// key, so a fixed nonce is safe here (each key encrypts exactly one payload).
constexpr std::uint64_t kSealNonce = 0x534c5f5345414c00ULL;
}  // namespace

SealedPayload protect(ByteView data, KeyGenerator& keygen) {
  SealedPayload sealed;
  sealed.key = protect_into(data, keygen, sealed.ciphertext);
  return sealed;
}

std::uint64_t protect_into(ByteView data, KeyGenerator& keygen,
                           Bytes& ciphertext) {
  const Sha256Digest digest = Sha256::hash(data);
  ciphertext.clear();
  ciphertext.insert(ciphertext.end(), data.begin(), data.end());
  ciphertext.insert(ciphertext.end(), digest.begin(), digest.end());
  const std::uint64_t key = keygen.next_key64();
  aes128_ctr_xor(expand_lease_key(key), kSealNonce,
                 std::span<std::uint8_t>(ciphertext));
  return key;
}

std::optional<Bytes> validate(ByteView ciphertext, std::uint64_t key) {
  if (ciphertext.size() < kSha256DigestSize) return std::nullopt;
  const Bytes bundle = aes128_ctr(expand_lease_key(key), kSealNonce, ciphertext);

  const std::size_t data_size = bundle.size() - kSha256DigestSize;
  const ByteView data(bundle.data(), data_size);
  const ByteView stored_hash(bundle.data() + data_size, kSha256DigestSize);

  const Sha256Digest expected = Sha256::hash(data);
  if (!constant_time_equal(stored_hash, ByteView(expected.data(), expected.size()))) {
    return std::nullopt;
  }
  return Bytes(data.begin(), data.end());
}

}  // namespace sl::crypto
