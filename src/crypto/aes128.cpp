#include "crypto/aes128.hpp"

#include <cstring>

#include "common/error.hpp"

namespace sl::crypto {

namespace {

// The AES S-box and its inverse are generated at startup from the finite
// field definition (multiplicative inverse in GF(2^8) followed by the affine
// transform) rather than spelled out as literal tables.
struct SBoxes {
  std::array<std::uint8_t, 256> fwd{};
  std::array<std::uint8_t, 256> inv{};
};

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t result = 0;
  while (b) {
    if (b & 1) result ^= a;
    const bool hi = a & 0x80;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a ^= 0x1b;  // x^8 + x^4 + x^3 + x + 1
    b >>= 1;
  }
  return result;
}

SBoxes make_sboxes() {
  // Multiplicative inverses via brute force (256*256 is trivial at startup).
  std::array<std::uint8_t, 256> inverse{};
  for (int a = 1; a < 256; ++a) {
    for (int b = 1; b < 256; ++b) {
      if (gf_mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)) == 1) {
        inverse[a] = static_cast<std::uint8_t>(b);
        break;
      }
    }
  }
  SBoxes boxes;
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t x = inverse[i];
    const std::uint8_t s = static_cast<std::uint8_t>(
        x ^ static_cast<std::uint8_t>((x << 1) | (x >> 7)) ^
        static_cast<std::uint8_t>((x << 2) | (x >> 6)) ^
        static_cast<std::uint8_t>((x << 3) | (x >> 5)) ^
        static_cast<std::uint8_t>((x << 4) | (x >> 4)) ^ 0x63);
    boxes.fwd[i] = s;
    boxes.inv[s] = static_cast<std::uint8_t>(i);
  }
  return boxes;
}

const SBoxes& sboxes() {
  static const SBoxes boxes = make_sboxes();
  return boxes;
}

}  // namespace

Aes128::Aes128(const AesKey& key) {
  const auto& sbox = sboxes().fwd;
  std::memcpy(round_keys_.data(), key.data(), 16);
  std::uint8_t rcon = 1;
  for (std::size_t i = 16; i < round_keys_.size(); i += 4) {
    std::uint8_t temp[4];
    std::memcpy(temp, &round_keys_[i - 4], 4);
    if (i % 16 == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(sbox[temp[1]] ^ rcon);
      temp[1] = sbox[temp[2]];
      temp[2] = sbox[temp[3]];
      temp[3] = sbox[t0];
      rcon = gf_mul(rcon, 2);
    }
    for (int j = 0; j < 4; ++j) {
      round_keys_[i + j] = round_keys_[i - 16 + j] ^ temp[j];
    }
  }
}

AesBlock Aes128::encrypt_block(const AesBlock& in) const {
  const auto& sbox = sboxes().fwd;
  AesBlock s = in;
  auto add_round_key = [&](int round) {
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[16 * round + i];
  };
  auto sub_bytes = [&] {
    for (auto& b : s) b = sbox[b];
  };
  auto shift_rows = [&] {
    AesBlock t = s;
    for (int c = 0; c < 4; ++c) {
      for (int r = 1; r < 4; ++r) {
        s[4 * c + r] = t[4 * ((c + r) % 4) + r];
      }
    }
  };
  auto mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t* col = &s[4 * c];
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3;
      col[1] = a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3;
      col[2] = a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3);
      col[3] = gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2);
    }
  };

  add_round_key(0);
  for (int round = 1; round < 10; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
  return s;
}

AesBlock Aes128::decrypt_block(const AesBlock& in) const {
  const auto& inv_sbox = sboxes().inv;
  AesBlock s = in;
  auto add_round_key = [&](int round) {
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[16 * round + i];
  };
  auto inv_sub_bytes = [&] {
    for (auto& b : s) b = inv_sbox[b];
  };
  auto inv_shift_rows = [&] {
    AesBlock t = s;
    for (int c = 0; c < 4; ++c) {
      for (int r = 1; r < 4; ++r) {
        s[4 * ((c + r) % 4) + r] = t[4 * c + r];
      }
    }
  };
  auto inv_mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t* col = &s[4 * c];
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = gf_mul(a0, 14) ^ gf_mul(a1, 11) ^ gf_mul(a2, 13) ^ gf_mul(a3, 9);
      col[1] = gf_mul(a0, 9) ^ gf_mul(a1, 14) ^ gf_mul(a2, 11) ^ gf_mul(a3, 13);
      col[2] = gf_mul(a0, 13) ^ gf_mul(a1, 9) ^ gf_mul(a2, 14) ^ gf_mul(a3, 11);
      col[3] = gf_mul(a0, 11) ^ gf_mul(a1, 13) ^ gf_mul(a2, 9) ^ gf_mul(a3, 14);
    }
  };

  add_round_key(10);
  for (int round = 9; round >= 1; --round) {
    inv_shift_rows();
    inv_sub_bytes();
    add_round_key(round);
    inv_mix_columns();
  }
  inv_shift_rows();
  inv_sub_bytes();
  add_round_key(0);
  return s;
}

Bytes aes128_ctr(const AesKey& key, std::uint64_t nonce, ByteView data) {
  Bytes out(data.begin(), data.end());
  aes128_ctr_xor(key, nonce, std::span<std::uint8_t>(out));
  return out;
}

void aes128_ctr_xor(const AesKey& key, std::uint64_t nonce,
                    std::span<std::uint8_t> data) {
  const Aes128 cipher(key);
  AesBlock counter{};
  for (int i = 0; i < 8; ++i) counter[i] = static_cast<std::uint8_t>(nonce >> (8 * i));
  std::uint64_t block_index = 0;
  std::size_t offset = 0;
  while (offset < data.size()) {
    for (int i = 0; i < 8; ++i) {
      counter[8 + i] = static_cast<std::uint8_t>(block_index >> (8 * i));
    }
    const AesBlock keystream = cipher.encrypt_block(counter);
    const std::size_t take = std::min(data.size() - offset, kAesBlockSize);
    for (std::size_t i = 0; i < take; ++i) {
      data[offset + i] ^= keystream[i];
    }
    offset += take;
    ++block_index;
  }
}

AesKey expand_lease_key(std::uint64_t key64) {
  AesKey key{};
  for (int i = 0; i < 8; ++i) key[i] = static_cast<std::uint8_t>(key64 >> (8 * i));
  // Fixed domain-separation pad distinguishes lease keys from other uses.
  static constexpr std::uint8_t kPad[8] = {'S', 'L', 'e', 'a', 's', 'e', '0', '1'};
  for (int i = 0; i < 8; ++i) key[8 + i] = kPad[i] ^ static_cast<std::uint8_t>(key64 >> (8 * (7 - i)));
  return key;
}

}  // namespace sl::crypto
