// Protect/Validate primitives for offloaded lease data.
//
// Direct implementation of the paper's Algorithm 2 (Protect) and Algorithm 3
// (Validate): hash the plaintext, append the hash, encrypt the bundle under a
// fresh random key, and on restore decrypt + re-hash + compare. The key lives
// with the *parent* (lease-tree entry or SL-Remote for the root), which is
// what yields the freshness chain of Section 5.6.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "crypto/keygen.hpp"

namespace sl::crypto {

struct SealedPayload {
  Bytes ciphertext;
  std::uint64_t key = 0;  // 64-bit key held by the parent, never stored here
};

// Algorithm 2: returns <ciphertext, key>; `keygen` supplies RandomKeyGen().
SealedPayload protect(ByteView data, KeyGenerator& keygen);

// Scratch-buffer variant: seals into `ciphertext` (cleared, capacity reused)
// and returns the fresh key — the incremental commit path re-seals a dirty
// leaf without allocating. Identical bytes to protect().
std::uint64_t protect_into(ByteView data, KeyGenerator& keygen,
                           Bytes& ciphertext);

// Algorithm 3: returns the plaintext, or nullopt when the hash check fails
// (tampering or replay with a stale key).
std::optional<Bytes> validate(ByteView ciphertext, std::uint64_t key);

}  // namespace sl::crypto
