#include "crypto/hmac.hpp"

#include <array>

namespace sl::crypto {

Sha256Digest hmac_sha256(ByteView key, ByteView data) {
  static constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> key_block{};
  if (key.size() > kBlock) {
    const Sha256Digest digest = Sha256::hash(key);
    std::copy(digest.begin(), digest.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  std::array<std::uint8_t, kBlock> ipad{};
  std::array<std::uint8_t, kBlock> opad{};
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ByteView(ipad.data(), ipad.size()));
  inner.update(data);
  const Sha256Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(ByteView(opad.data(), opad.size()));
  outer.update(ByteView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

bool hmac_verify(ByteView key, ByteView data, const Sha256Digest& tag) {
  const Sha256Digest expected = hmac_sha256(key, data);
  return constant_time_equal(ByteView(expected.data(), expected.size()),
                             ByteView(tag.data(), tag.size()));
}

}  // namespace sl::crypto
