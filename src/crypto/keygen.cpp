#include "crypto/keygen.hpp"

#include "crypto/sha256.hpp"

namespace sl::crypto {

KeyGenerator::KeyGenerator(std::uint64_t seed) {
  state_.reserve(8);
  put_u64(state_, seed);
}

Sha256Digest KeyGenerator::next_block() {
  // state_ is the 8-byte seed laid down by the constructor; the hash input
  // (state || counter, both little-endian) fits a stack buffer, so drawing
  // a block never allocates. Byte-identical to hashing `state_` with the
  // counter appended via put_u64.
  std::array<std::uint8_t, 16> input;
  std::copy(state_.begin(), state_.end(), input.begin());
  const std::uint64_t c = counter_++;
  for (int i = 0; i < 8; ++i) {
    input[state_.size() + i] = static_cast<std::uint8_t>(c >> (8 * i));
  }
  return Sha256::hash(ByteView(input.data(), state_.size() + 8));
}

Bytes KeyGenerator::next_bytes(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    const Sha256Digest digest = next_block();
    const std::size_t take = std::min(n - out.size(), digest.size());
    out.insert(out.end(), digest.begin(), digest.begin() + take);
  }
  return out;
}

std::uint64_t KeyGenerator::next_key64() {
  const Sha256Digest digest = next_block();
  return get_u64(ByteView(digest.data(), digest.size()), 0);
}

AesKey KeyGenerator::next_aes_key() {
  const Sha256Digest digest = next_block();
  AesKey key{};
  std::copy(digest.begin(), digest.begin() + kAesKeySize, key.begin());
  return key;
}

}  // namespace sl::crypto
