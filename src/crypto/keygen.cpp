#include "crypto/keygen.hpp"

#include "crypto/sha256.hpp"

namespace sl::crypto {

KeyGenerator::KeyGenerator(std::uint64_t seed) {
  state_.reserve(8);
  put_u64(state_, seed);
}

Bytes KeyGenerator::next_bytes(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    Bytes input = state_;
    put_u64(input, counter_++);
    const Sha256Digest digest = Sha256::hash(input);
    const std::size_t take = std::min(n - out.size(), digest.size());
    out.insert(out.end(), digest.begin(), digest.begin() + take);
  }
  return out;
}

std::uint64_t KeyGenerator::next_key64() {
  const Bytes b = next_bytes(8);
  return get_u64(b, 0);
}

AesKey KeyGenerator::next_aes_key() {
  const Bytes b = next_bytes(kAesKeySize);
  AesKey key{};
  std::copy(b.begin(), b.end(), key.begin());
  return key;
}

}  // namespace sl::crypto
