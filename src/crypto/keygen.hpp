// Key generation for lease protection.
//
// The paper's Algorithm 2 calls RandomKeyGen() for a fresh 64-bit key on
// every commit. The simulator uses a hash-DRBG built from SHA-256 over a
// seed plus a counter: deterministic under a fixed seed (reproducible tests
// and benches), unpredictable without it.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/aes128.hpp"
#include "crypto/sha256.hpp"

namespace sl::crypto {

class KeyGenerator {
 public:
  // `seed` plays the role of the enclave's entropy source.
  explicit KeyGenerator(std::uint64_t seed);

  // Fresh 64-bit key (paper stores 64-bit keys in lease-tree entries).
  std::uint64_t next_key64();

  // Fresh full-width AES key.
  AesKey next_aes_key();

  // Fresh arbitrary-length secret.
  Bytes next_bytes(std::size_t n);

 private:
  // One DRBG block: SHA-256(state || counter++). Stack-only — next_key64
  // sits on the per-leaf seal path, which must not touch the heap.
  Sha256Digest next_block();

  Bytes state_;
  std::uint64_t counter_ = 0;
};

}  // namespace sl::crypto
