// AES-128 (FIPS 197) block cipher plus a CTR-mode stream wrapper.
//
// Used for lease-node encryption on commit/offload (paper Section 5.5) and
// as the cipher behind the OpenSSL-like workload. Implemented from the
// specification with plain table lookups; hardened constant-time execution
// is out of scope for the simulation.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace sl::crypto {

inline constexpr std::size_t kAesBlockSize = 16;
inline constexpr std::size_t kAesKeySize = 16;

using AesKey = std::array<std::uint8_t, kAesKeySize>;
using AesBlock = std::array<std::uint8_t, kAesBlockSize>;

class Aes128 {
 public:
  explicit Aes128(const AesKey& key);

  // Single-block ECB primitives.
  AesBlock encrypt_block(const AesBlock& in) const;
  AesBlock decrypt_block(const AesBlock& in) const;

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, 176> round_keys_{};
};

// Encrypts/decrypts with AES-128 in counter mode (symmetric; same function
// both directions). The nonce seeds the counter block.
Bytes aes128_ctr(const AesKey& key, std::uint64_t nonce, ByteView data);

// In-place CTR transform over a caller-owned buffer — the hot seal path
// reuses one scratch buffer instead of allocating per commit.
void aes128_ctr_xor(const AesKey& key, std::uint64_t nonce,
                    std::span<std::uint8_t> data);

// Builds a full 128-bit AES key from a 64-bit lease key. The paper stores a
// 64-bit per-node key in the parent entry (Section 5.2.1); we stretch it to
// 128 bits with a fixed domain-separation pad so the cipher still gets a
// full-width key schedule.
AesKey expand_lease_key(std::uint64_t key64);

}  // namespace sl::crypto
