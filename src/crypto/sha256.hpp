// SHA-256 (FIPS 180-4), implemented from the specification.
//
// Used for lease integrity hashes (paper Algorithms 2 and 3), the SHA-based
// hash-table baseline of Table 1, and the Blockchain workload.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace sl::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256();

  void update(ByteView data);
  Sha256Digest finish();

  // One-shot convenience.
  static Sha256Digest hash(ByteView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

// Truncated 64-bit digest, convenient for the lease tree's 64-bit hash field.
std::uint64_t sha256_64(ByteView data);

}  // namespace sl::crypto
