// MurmurHash3 (public-domain hash by Austin Appleby).
//
// This is the hash behind the "MurmurHash" hash-table baseline in Table 1 of
// the paper (the hash used by common unordered_map implementations).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace sl::crypto {

// 32-bit MurmurHash3_x86_32.
std::uint32_t murmur3_32(ByteView data, std::uint32_t seed = 0);

// 64 bits taken from MurmurHash3_x64_128.
std::uint64_t murmur3_64(ByteView data, std::uint64_t seed = 0);

}  // namespace sl::crypto
