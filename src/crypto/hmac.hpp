// HMAC-SHA256 (RFC 2104) for authenticated tokens of execution.
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace sl::crypto {

// Computes HMAC-SHA256(key, data).
Sha256Digest hmac_sha256(ByteView key, ByteView data);

// Verifies a tag in constant time.
bool hmac_verify(ByteView key, ByteView data, const Sha256Digest& tag);

}  // namespace sl::crypto
