#include "net/channel.hpp"

#include "common/error.hpp"

namespace sl::net {

void RpcServer::register_method(const std::string& method, Handler handler) {
  require(static_cast<bool>(handler), "register_method: empty handler");
  handlers_[method] = std::move(handler);
}

bool RpcServer::has_method(const std::string& method) const {
  return handlers_.contains(method);
}

Bytes RpcServer::dispatch(const std::string& method, ByteView request) const {
  auto it = handlers_.find(method);
  require(it != handlers_.end(), "dispatch: unknown method " + method);
  return it->second(request);
}

RpcClient::RpcClient(SimNetwork& network, NodeId node, RpcServer& server, SimClock& clock)
    : network_(network), node_(node), server_(server), clock_(clock) {}

bool RpcClient::establish_session() {
  if (session_established_) return true;
  // Two round trips: key agreement + confirmation.
  if (!network_.round_trip(node_, clock_)) return false;
  if (!network_.round_trip(node_, clock_)) return false;
  session_established_ = true;
  return true;
}

RpcResult RpcClient::call(const std::string& method, ByteView request) {
  RpcResult result;
  if (!session_established_ && !establish_session()) return result;
  if (!network_.round_trip(node_, clock_)) return result;
  result.payload = server_.dispatch(method, request);
  result.ok = true;
  return result;
}

}  // namespace sl::net
