// One direction of a point-to-point message pipe with seeded misbehavior.
//
// SimNetwork::round_trip models a client RPC as a single success/failure
// draw; replication needs the message itself to survive (or not) so the
// receiver can observe duplicates and reorderings. A SimLink owns a queue of
// in-flight messages: send() stamps each with a delivery time derived from
// the LinkProfile (half the rtt, plus a seeded reorder slip), may drop it
// (1 - reliability) or enqueue it twice (duplicate_prob), and deliver()
// returns every message whose time has come, ordered by (ready_at, send
// order) so replay is deterministic.
//
// Rng draws are gated on the knobs being non-default: a lossless_link()
// profile consumes zero draws and zero virtual time, which is what keeps
// pre-PR replication traces bit-identical (tests/net/test_link.cpp pins
// this).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "net/network.hpp"

namespace sl::net {

struct SimLinkStats {
  std::uint64_t sent = 0;        // send() calls
  std::uint64_t dropped = 0;     // messages lost to (1 - reliability)
  std::uint64_t duplicated = 0;  // extra copies enqueued
  std::uint64_t reordered = 0;   // copies that drew a non-zero slip
  std::uint64_t delivered = 0;   // messages handed out by deliver()
};

class SimLink {
 public:
  SimLink(LinkProfile profile, std::uint64_t seed)
      : profile_(profile), rng_(seed) {}

  void set_profile(const LinkProfile& profile) { profile_ = profile; }
  const LinkProfile& profile() const { return profile_; }
  const SimLinkStats& stats() const { return stats_; }
  std::size_t in_flight() const { return queue_.size(); }

  // Enqueues `message` (and possibly a duplicate) for delivery at or after
  // `now` plus the one-way latency. A dropped message consumes its
  // reliability draw but nothing else.
  void send(ByteView message, Cycles now);

  // Pops every message whose delivery time is <= `now`, in deterministic
  // (ready_at, send order) order.
  std::vector<Bytes> deliver(Cycles now);

  // The earliest pending delivery time, or 0 when nothing is in flight —
  // the leader's ack-wait loop advances its clock to this before polling.
  Cycles next_ready() const;

  // Drops everything still in flight (a restarted endpoint's socket).
  void clear() { queue_.clear(); }

 private:
  struct InFlight {
    Bytes payload;
    Cycles ready_at = 0;
    std::uint64_t order = 0;  // send sequence, the deterministic tie-break
  };

  void enqueue(ByteView message, Cycles now);
  Cycles one_way_cycles() const;

  LinkProfile profile_;
  Rng rng_;
  std::vector<InFlight> queue_;
  std::uint64_t next_order_ = 0;
  SimLinkStats stats_;
};

}  // namespace sl::net
