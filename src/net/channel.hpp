// Typed message channel used for the SL-Local <-> SL-Remote protocol.
//
// Messages are byte payloads with a method tag; the channel serializes the
// request/response exchange over a SimNetwork link so every protocol step
// pays realistic latency and can fail. Transport-level encryption stands in
// for the TLS-like secure channel of Figure 3 (payloads are opaque bytes; we
// model the handshake cost once per session).
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "net/network.hpp"

namespace sl::net {

struct RpcResult {
  bool ok = false;        // transport success
  Bytes payload;          // response body when ok
};

// Server side: registry of method handlers.
class RpcServer {
 public:
  using Handler = std::function<Bytes(ByteView request)>;

  void register_method(const std::string& method, Handler handler);
  bool has_method(const std::string& method) const;

  // Invoked by the client stub after transport succeeds.
  Bytes dispatch(const std::string& method, ByteView request) const;

 private:
  std::unordered_map<std::string, Handler> handlers_;
};

// Client stub bound to one node's link.
class RpcClient {
 public:
  RpcClient(SimNetwork& network, NodeId node, RpcServer& server, SimClock& clock);

  // One round trip; returns !ok if the link dropped all retries.
  RpcResult call(const std::string& method, ByteView request);

  // Performs the session handshake (key agreement) once; subsequent calls
  // are cheap. Returns false if the network is down.
  bool establish_session();
  bool session_established() const { return session_established_; }

 private:
  SimNetwork& network_;
  NodeId node_;
  RpcServer& server_;
  SimClock& clock_;
  bool session_established_ = false;
};

}  // namespace sl::net
