#include "net/link.hpp"

#include <algorithm>

namespace sl::net {

Cycles SimLink::one_way_cycles() const {
  return micros_to_cycles(profile_.rtt_millis * 1e3 / 2.0);
}

void SimLink::enqueue(ByteView message, Cycles now) {
  InFlight entry;
  entry.payload.assign(message.begin(), message.end());
  entry.ready_at = now + one_way_cycles();
  // A reorder slip delays this copy by up to reorder_window extra delivery
  // quanta, letting a later send overtake it. The quantum is the one-way
  // latency (or 1ms on a zero-latency link, so slips remain observable).
  if (profile_.reorder_window > 0) {
    const std::uint64_t slip = rng_.next_below(profile_.reorder_window + 1);
    if (slip > 0) {
      const Cycles quantum =
          std::max<Cycles>(one_way_cycles(), micros_to_cycles(1e3));
      entry.ready_at += slip * quantum;
      stats_.reordered++;
    }
  }
  entry.order = next_order_++;
  queue_.push_back(std::move(entry));
}

void SimLink::send(ByteView message, Cycles now) {
  stats_.sent++;
  // Draw discipline: each knob consumes rng only when it is active, so a
  // lossless profile leaves the stream untouched.
  if (profile_.reliability < 1.0 && !rng_.next_bool(profile_.reliability)) {
    stats_.dropped++;
    return;
  }
  enqueue(message, now);
  if (profile_.duplicate_prob > 0.0 && rng_.next_bool(profile_.duplicate_prob)) {
    stats_.duplicated++;
    enqueue(message, now);
  }
}

std::vector<Bytes> SimLink::deliver(Cycles now) {
  std::vector<Bytes> ready;
  std::vector<InFlight> kept;
  kept.reserve(queue_.size());
  std::vector<InFlight> due;
  for (InFlight& entry : queue_) {
    if (entry.ready_at <= now) {
      due.push_back(std::move(entry));
    } else {
      kept.push_back(std::move(entry));
    }
  }
  queue_ = std::move(kept);
  std::sort(due.begin(), due.end(), [](const InFlight& a, const InFlight& b) {
    return a.ready_at != b.ready_at ? a.ready_at < b.ready_at
                                    : a.order < b.order;
  });
  ready.reserve(due.size());
  for (InFlight& entry : due) {
    ready.push_back(std::move(entry.payload));
    stats_.delivered++;
  }
  return ready;
}

Cycles SimLink::next_ready() const {
  Cycles earliest = 0;
  for (const InFlight& entry : queue_) {
    if (earliest == 0 || entry.ready_at < earliest) earliest = entry.ready_at;
  }
  return earliest;
}

}  // namespace sl::net
