#include "net/network.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sl::net {

SimNetwork::SimNetwork(std::uint64_t seed) : rng_(seed) {
  obs_attempts_ = obs::get_counter("sl_net_attempts_total",
                                   "RPC round-trip attempts on all links");
  obs_failures_ = obs::get_counter("sl_net_failures_total",
                                   "RPC attempts that timed out");
  obs_backoffs_ = obs::get_counter("sl_net_backoffs_total",
                                   "Retry backoff waits charged");
  obs_latency_dropped_ = obs::get_counter(
      "sl_net_attempt_latency_dropped_total",
      "Per-attempt latencies overwritten by the bounded LinkStats ring");
  obs_attempt_latency_ = obs::get_histogram(
      "sl_net_attempt_latency_cycles",
      "Per-attempt latency (rtt or timeout) in virtual cycles");
}

void SimNetwork::set_link(NodeId node, LinkProfile profile) {
  require(profile.reliability >= 0.0 && profile.reliability <= 1.0,
          "set_link: reliability must be in [0,1]");
  links_[node] = profile;
}

const LinkProfile& SimNetwork::link(NodeId node) const {
  auto it = links_.find(node);
  require(it != links_.end(), "link: unknown node");
  return it->second;
}

bool SimNetwork::round_trip(NodeId node, SimClock& clock, int max_retries) {
  const LinkProfile& profile = link(node);
  LinkStats& stats = stats_[node];
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff with jitter before every retry. The jitter draw
      // happens only on this failure path, so a perfectly reliable link
      // consumes exactly the same rng stream as before backoff existed.
      double wait = profile.backoff_base_millis;
      for (int k = 1; k < attempt; ++k) wait *= profile.backoff_factor;
      wait = std::min(wait, profile.backoff_max_millis);
      wait *= 0.5 + 0.5 * rng_.next_double();
      clock.advance_millis(wait);
      stats.backoffs++;
      stats.total_backoff_millis += wait;
      obs::inc(obs_backoffs_);
    }
    stats.attempts++;
    obs::inc(obs_attempts_);
    // The ring wraps past kAttemptLatencyWindow entries; count overwrites.
    if (stats.attempt_latency_count >= kAttemptLatencyWindow) {
      obs::inc(obs_latency_dropped_);
    }
    if (rng_.next_bool(profile.reliability)) {
      clock.advance_millis(profile.rtt_millis);
      stats.record_attempt(profile.rtt_millis);
      obs::observe(obs_attempt_latency_, micros_to_cycles(profile.rtt_millis * 1e3));
      return true;
    }
    stats.failures++;
    obs::inc(obs_failures_);
    clock.advance_millis(profile.timeout_millis);
    stats.record_attempt(profile.timeout_millis);
    obs::observe(obs_attempt_latency_, micros_to_cycles(profile.timeout_millis * 1e3));
  }
  return false;
}

const LinkStats& SimNetwork::stats(NodeId node) const { return stats_[node]; }

double SimNetwork::observed_reliability(NodeId node) const {
  const LinkStats& stats = stats_[node];
  if (stats.attempts == 0) return 1.0;
  return 1.0 - static_cast<double>(stats.failures) / static_cast<double>(stats.attempts);
}

}  // namespace sl::net
