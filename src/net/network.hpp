// Simulated wide-area network between client machines and SL-Remote.
//
// The paper's renewal heuristic (Algorithm 1) consumes a per-node network
// reliability n in [0,1] (0 = dead, 1 = stable). The simulator models each
// link with a base round-trip latency and that reliability: an RPC attempt
// fails (and costs a timeout) with probability 1-n, and the caller retries
// with exponential backoff and seeded jitter — retry storms against a
// recovering server are as unrealistic in simulation as in production.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "obs/metrics.hpp"

namespace sl::net {

using NodeId = std::uint32_t;

struct LinkProfile {
  double rtt_millis = 20.0;      // round-trip latency of one successful RPC
  double reliability = 1.0;      // n in [0,1]
  double timeout_millis = 200.0; // cost of a failed attempt
  // Exponential backoff between retries: the k-th retry waits
  // min(base * factor^(k-1), max), scaled by a seeded jitter in [0.5, 1).
  // No backoff (and no jitter draw) happens before the first attempt or
  // after the last, so a reliability=1.0 link is bit-identical to the old
  // fixed-retry behavior.
  double backoff_base_millis = 50.0;
  double backoff_factor = 2.0;
  double backoff_max_millis = 2'000.0;
  // Message-level misbehavior, consumed only by SimLink (link.hpp) — the
  // RPC-style round_trip() path below never reads these, and SimLink draws
  // from its rng for them only when they are non-default, so every
  // pre-existing reliability=1.0 trace replays bit-identically.
  double duplicate_prob = 0.0;       // chance a sent message is delivered twice
  std::uint32_t reorder_window = 0;  // max extra delivery slots a message slips
};

// The profile replication uses between co-located replicas by default: no
// latency, no loss, no duplication, no reordering. A SimLink configured with
// it consumes zero rng draws and charges zero cycles, so shipping frames
// through it is observably identical to a direct method call.
inline LinkProfile lossless_link() {
  LinkProfile profile;
  profile.rtt_millis = 0.0;
  profile.reliability = 1.0;
  profile.timeout_millis = 0.0;
  return profile;
}

// Size of the per-link ring of recent attempt latencies.
inline constexpr std::size_t kAttemptLatencyWindow = 64;

struct LinkStats {
  std::uint64_t attempts = 0;
  std::uint64_t failures = 0;
  std::uint64_t backoffs = 0;          // retry waits charged
  double total_latency_millis = 0.0;   // rtt + timeouts across all attempts
  double total_backoff_millis = 0.0;   // jittered waits across all retries
  // Ring buffer of the most recent per-attempt latencies (rtt for a
  // success, timeout for a failure; backoff waits are not attempts).
  std::array<double, kAttemptLatencyWindow> attempt_latencies{};
  std::uint64_t attempt_latency_count = 0;  // total recorded (ring wraps)

  void record_attempt(double millis) {
    attempt_latencies[attempt_latency_count % kAttemptLatencyWindow] = millis;
    attempt_latency_count++;
    total_latency_millis += millis;
  }

  // Latencies overwritten by the ring wrapping: the window is bounded by
  // design, and long loadgen runs surface the overwrite count as the
  // sl_net_attempt_latency_dropped_total metric rather than growing memory.
  std::uint64_t dropped() const {
    return attempt_latency_count > kAttemptLatencyWindow
               ? attempt_latency_count - kAttemptLatencyWindow
               : 0;
  }
};

class SimNetwork {
 public:
  explicit SimNetwork(std::uint64_t seed);

  // Configures the link between client `node` and the server.
  void set_link(NodeId node, LinkProfile profile);
  const LinkProfile& link(NodeId node) const;

  // Simulates one RPC round trip on `node`'s link, charging latency to
  // `clock`. Returns false when the attempt failed (per reliability); the
  // timeout has already been charged. `max_retries` additional attempts are
  // made before giving up.
  bool round_trip(NodeId node, SimClock& clock, int max_retries = 3);

  const LinkStats& stats(NodeId node) const;
  // Measured reliability of the link (successes / attempts); equals the
  // configured value in expectation — this is what SL-Remote would observe.
  double observed_reliability(NodeId node) const;

 private:
  Rng rng_;
  std::unordered_map<NodeId, LinkProfile> links_;
  mutable std::unordered_map<NodeId, LinkStats> stats_;
  // Metric handles, resolved once at construction (null when compiled out).
  obs::Counter* obs_attempts_ = nullptr;
  obs::Counter* obs_failures_ = nullptr;
  obs::Counter* obs_backoffs_ = nullptr;
  obs::Counter* obs_latency_dropped_ = nullptr;
  obs::Histogram* obs_attempt_latency_ = nullptr;
};

}  // namespace sl::net
