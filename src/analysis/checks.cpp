#include "analysis/checks.hpp"

#include <algorithm>
#include <deque>

namespace sl::analysis {

namespace {

std::string join_names(const cfg::CallGraph& graph,
                       const std::vector<cfg::NodeId>& path) {
  std::string out;
  for (cfg::NodeId n : path) {
    if (!out.empty()) out += " -> ";
    out += graph.node(n).name;
  }
  return out;
}

std::vector<std::string> path_names(const cfg::CallGraph& graph,
                                    const std::vector<cfg::NodeId>& path) {
  std::vector<std::string> names;
  names.reserve(path.size());
  for (cfg::NodeId n : path) names.push_back(graph.node(n).name);
  return names;
}

// A node the partition is supposed to keep out of unauthorized hands:
// developer-annotated key functions, and sensitive functions the partition
// placed inside the enclave (untrusted sensitive functions are the egress
// pass's business).
bool protected_target(const AuditContext& ctx, cfg::NodeId n) {
  const cfg::FunctionInfo& info = ctx.graph().node(n);
  if (ctx.guard(n)) return false;  // authorizes its own invocation
  if (info.is_key_function) return true;
  return info.touches_sensitive_data && ctx.migrated(n);
}

std::vector<cfg::NodeId> sorted_by_name(const AuditContext& ctx,
                                        std::vector<cfg::NodeId> nodes) {
  std::sort(nodes.begin(), nodes.end(), [&](cfg::NodeId a, cfg::NodeId b) {
    return ctx.name(a) < ctx.name(b);
  });
  return nodes;
}

}  // namespace

// --- context -----------------------------------------------------------------

AuditContext::AuditContext(const cfg::CallGraph& graph, cfg::NodeId entry,
                           const partition::PartitionResult& partition,
                           bool lease_gated_keys)
    : graph_(graph),
      entry_(entry),
      partition_(partition),
      lease_gated_keys_(lease_gated_keys) {
  for (cfg::NodeId n : partition_.migrated) {
    const cfg::FunctionInfo& info = graph_.node(n);
    if (info.in_authentication_module ||
        (lease_gated_keys_ && info.is_key_function)) {
      guards_.insert(n);
    }
  }
}

bool AuditContext::internally_guarded(cfg::NodeId enclave_entry) const {
  const auto cached = internally_guarded_cache_.find(enclave_entry);
  if (cached != internally_guarded_cache_.end()) return cached->second;
  const NodeSet subtree =
      reachable_within(graph_, enclave_entry, partition_.migrated, /*stop=*/{});
  bool guarded = false;
  for (cfg::NodeId n : subtree) {
    if (n != enclave_entry && guard(n)) {
      guarded = true;
      break;
    }
  }
  internally_guarded_cache_.emplace(enclave_entry, guarded);
  return guarded;
}

std::vector<cfg::NodeId> AuditContext::ecall_surface() const {
  NodeSet surface;
  for (const cfg::Edge& e : graph_.edges()) {
    if (!migrated(e.from) && migrated(e.to)) surface.insert(e.to);
  }
  if (migrated(entry_)) surface.insert(entry_);
  std::vector<cfg::NodeId> out(surface.begin(), surface.end());
  std::sort(out.begin(), out.end(), [&](cfg::NodeId a, cfg::NodeId b) {
    return name(a) < name(b);
  });
  return out;
}

// --- attacker reachability ---------------------------------------------------

std::vector<cfg::NodeId> AttackReach::path_to(cfg::NodeId node) const {
  std::vector<cfg::NodeId> path;
  if (!parent.contains(node)) return path;
  for (cfg::NodeId at = node;; at = parent.at(at)) {
    path.push_back(at);
    if (parent.at(at) == at) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

AttackReach attack_reachability(const AuditContext& ctx, cfg::NodeId start) {
  AttackReach out;
  // Guards never execute unauthorized; an internally-guarded migrated start
  // is assumed dominated by its in-subtree check.
  if (ctx.guard(start)) return out;
  if (ctx.migrated(start) && ctx.internally_guarded(start)) return out;

  out.parent.emplace(start, start);
  out.reached.insert(start);
  std::deque<cfg::NodeId> queue{start};
  while (!queue.empty()) {
    const cfg::NodeId at = queue.front();
    queue.pop_front();
    const bool at_untrusted = !ctx.migrated(at);
    for (const cfg::Edge& e : ctx.graph().out_edges(at)) {
      const cfg::NodeId next = e.to;
      if (out.reached.contains(next)) continue;
      if (ctx.guard(next)) continue;
      if (ctx.migrated(next)) {
        // Boundary crossing: from untrusted code the attacker enters the
        // enclave through `next`'s ECALL stub — blocked when a guard sits
        // in the subtree behind it. In-enclave edges progress freely.
        if (at_untrusted && ctx.internally_guarded(next)) continue;
      }
      out.parent.emplace(next, at);
      out.reached.insert(next);
      queue.push_back(next);
    }
  }
  return out;
}

// --- pass 1: check-skip ------------------------------------------------------

std::vector<Finding> run_check_skip(const AuditContext& ctx) {
  std::vector<Finding> findings;
  const AttackReach reach = attack_reachability(ctx, ctx.entry());
  for (cfg::NodeId n : sorted_by_name(ctx, ctx.graph().all_nodes())) {
    if (!protected_target(ctx, n)) continue;
    const cfg::FunctionInfo& info = ctx.graph().node(n);
    const Severity severity =
        info.is_key_function ? Severity::kCritical : Severity::kHigh;
    if (reach.reached.contains(n)) {
      const auto path = reach.path_to(n);
      Finding f;
      f.check = CheckId::kCheckSkip;
      f.severity = severity;
      f.status = Status::kConfirmed;
      f.function = info.name;
      f.message = std::string(info.is_key_function ? "key function"
                                                   : "sensitive function") +
                  " '" + info.name +
                  "' executes without any authorization gate on the path: " +
                  join_names(ctx.graph(), path);
      f.evidence_path = path_names(ctx.graph(), path);
      findings.push_back(std::move(f));
    } else if (!ctx.migrated(n)) {
      // Not on any path from the entry, but untrusted code is directly
      // invocable under the virtual-CPU threat model.
      Finding f;
      f.check = CheckId::kCheckSkip;
      f.severity = severity;
      f.status = Status::kConfirmed;
      f.function = info.name;
      f.message = std::string(info.is_key_function ? "key function"
                                                   : "sensitive function") +
                  " '" + info.name +
                  "' lives in untrusted memory and is directly invocable by "
                  "the attacker (no gate can intervene)";
      f.evidence_path = {info.name};
      findings.push_back(std::move(f));
    }
  }
  return findings;
}

// --- pass 2: return-forge ----------------------------------------------------

std::vector<Finding> run_return_forge(const AuditContext& ctx) {
  std::vector<Finding> findings;

  // Forgeable protected work from the perspective of a decision consumer
  // `u`: anything attacker-reachable from u that the enclave should refuse.
  const auto forgeable_target =
      [&](cfg::NodeId u) -> std::optional<std::vector<cfg::NodeId>> {
    const AttackReach reach = attack_reachability(ctx, u);
    std::optional<std::vector<cfg::NodeId>> best;
    for (cfg::NodeId t : sorted_by_name(
             ctx, {reach.reached.begin(), reach.reached.end()})) {
      if (!protected_target(ctx, t)) continue;
      auto path = reach.path_to(t);
      if (!best.has_value() || path.size() < best->size()) best = std::move(path);
    }
    return best;
  };

  // Variant A (Figure 6 attack 2): the AM runs in the enclave, but its
  // boolean verdict returns to an untrusted caller which then gates the
  // protected work — the attacker bends the consumer, not the check.
  NodeSet reported_consumers;
  for (const cfg::Edge& e : ctx.graph().edges()) {
    if (ctx.migrated(e.from) || !ctx.guard(e.to)) continue;
    if (!ctx.graph().node(e.to).in_authentication_module) continue;
    if (reported_consumers.contains(e.from)) continue;
    const auto target = forgeable_target(e.from);
    if (!target.has_value()) continue;
    reported_consumers.insert(e.from);
    Finding f;
    f.check = CheckId::kReturnForge;
    f.severity = Severity::kCritical;
    f.status = Status::kConfirmed;
    f.function = ctx.name(e.from);
    f.message = "authorization decision of enclave AM '" + ctx.name(e.to) +
                "' returns to untrusted '" + ctx.name(e.from) +
                "'; forging the verdict unlocks: " +
                join_names(ctx.graph(), *target);
    f.evidence_path = path_names(ctx.graph(), *target);
    findings.push_back(std::move(f));
  }

  // Variant B (Figure 6 attack 1): the AM itself executes untrusted — its
  // internal decision branch is bendable in place. Flipping the branch makes
  // it return "authorized", so the unlocked work is whatever the AM itself
  // or its (untrusted) callers gate.
  for (cfg::NodeId n : sorted_by_name(ctx, ctx.graph().all_nodes())) {
    const cfg::FunctionInfo& info = ctx.graph().node(n);
    if (!info.in_authentication_module || ctx.migrated(n)) continue;
    auto target = forgeable_target(n);
    for (const cfg::Edge& e : ctx.graph().in_edges(n)) {
      if (target.has_value()) break;
      if (!ctx.migrated(e.from)) target = forgeable_target(e.from);
    }
    if (!target.has_value()) continue;
    Finding f;
    f.check = CheckId::kReturnForge;
    f.severity = Severity::kCritical;
    f.status = Status::kConfirmed;
    f.function = info.name;
    f.message = "authentication module '" + info.name +
                "' executes in untrusted memory; bending its decision branch "
                "unlocks: " + join_names(ctx.graph(), *target);
    f.evidence_path = path_names(ctx.graph(), *target);
    findings.push_back(std::move(f));
  }
  return findings;
}

// --- pass 3: interface-width -------------------------------------------------

std::vector<Finding> run_interface_width(const AuditContext& ctx,
                                         std::vector<EcallEntry>* surface) {
  std::vector<Finding> findings;
  if (surface != nullptr) surface->clear();

  for (cfg::NodeId e : ctx.ecall_surface()) {
    const bool is_guard = ctx.guard(e);
    const bool internal = !is_guard && ctx.internally_guarded(e);
    const NodeSet subtree =
        reachable_within(ctx.graph(), e, ctx.partition().migrated, /*stop=*/{});

    if (surface != nullptr) {
      EcallEntry entry;
      entry.function = ctx.name(e);
      entry.guard = is_guard;
      entry.internally_guarded = internal;
      entry.reachable_enclave_functions = subtree.size();
      NodeSet callers;
      for (const cfg::Edge& edge : ctx.graph().in_edges(e)) {
        if (!ctx.migrated(edge.from)) callers.insert(edge.from);
      }
      for (cfg::NodeId c : sorted_by_name(ctx, {callers.begin(), callers.end()})) {
        entry.untrusted_callers.push_back(ctx.name(c));
      }
      surface->push_back(std::move(entry));
    }

    if (is_guard) continue;

    // Protected callees the host can drive through this entry; guards in
    // the subtree terminate unauthorized exploration.
    const NodeSet reach = reachable_within(ctx.graph(), e,
                                           ctx.partition().migrated,
                                           ctx.guards());
    std::vector<cfg::NodeId> exposed;
    for (cfg::NodeId t : reach) {
      const cfg::FunctionInfo& info = ctx.graph().node(t);
      if (info.is_key_function || info.touches_sensitive_data) exposed.push_back(t);
    }
    if (exposed.empty()) continue;
    exposed = sorted_by_name(ctx, std::move(exposed));

    std::string exposed_names;
    for (cfg::NodeId t : exposed) {
      if (!exposed_names.empty()) exposed_names += ", ";
      exposed_names += ctx.name(t);
    }
    Finding f;
    f.check = CheckId::kInterfaceWidth;
    f.function = ctx.name(e);
    if (internal) {
      // A guard exists somewhere behind the entry; assumed to dominate
      // (enclave CFI), so this is informational only.
      f.severity = Severity::kInfo;
      f.status = Status::kAdvisory;
      f.message = "enclave entry '" + ctx.name(e) +
                  "' exposes protected callees (" + exposed_names +
                  ") but a guard in its subtree is assumed to dominate them";
    } else {
      f.severity = Severity::kHigh;
      f.status = Status::kConfirmed;
      const auto path = find_path_within(ctx.graph(), e, exposed.front(),
                                         ctx.partition().migrated, ctx.guards());
      f.message = "unauthenticated enclave entry '" + ctx.name(e) +
                  "' lets the host drive protected callee(s) without any "
                  "license check: " + exposed_names;
      f.evidence_path = path_names(ctx.graph(), path);
      if (f.evidence_path.empty()) f.evidence_path = {ctx.name(e)};
    }
    findings.push_back(std::move(f));
  }
  return findings;
}

// --- pass 4: sensitive-data egress -------------------------------------------

std::vector<Finding> run_sensitive_egress(const AuditContext& ctx) {
  std::vector<Finding> findings;
  for (cfg::NodeId n : sorted_by_name(ctx, ctx.graph().all_nodes())) {
    const cfg::FunctionInfo& info = ctx.graph().node(n);
    if (!info.touches_sensitive_data) continue;
    if (!ctx.migrated(n)) {
      Finding f;
      f.check = CheckId::kSensitiveEgress;
      f.function = info.name;
      if (ctx.partition().data_in_enclave) {
        // The scheme promises in-enclave data, yet left this function (and
        // the region it touches) in untrusted memory.
        f.severity = Severity::kHigh;
        f.status = Status::kConfirmed;
        f.message = "partition claims in-enclave data, but sensitive function '" +
                    info.name + "' and its region stay in untrusted memory";
      } else {
        f.severity = Severity::kWarning;
        f.status = Status::kAdvisory;
        f.message = "sensitive function '" + info.name +
                    "' runs untrusted; its region is exposed to the host "
                    "(data-outside schemes trade this for execution control)";
      }
      findings.push_back(std::move(f));
      continue;
    }
    // Migrated sensitive function whose sensitive callee stayed outside:
    // the region crosses the boundary on every OCALL.
    for (const cfg::Edge& e : ctx.graph().out_edges(n)) {
      if (ctx.migrated(e.to)) continue;
      if (!ctx.graph().node(e.to).touches_sensitive_data) continue;
      Finding f;
      f.check = CheckId::kSensitiveEgress;
      f.severity = Severity::kMedium;
      f.status = Status::kAdvisory;
      f.function = info.name;
      f.message = "sensitive region flows out of the enclave: '" + info.name +
                  "' (inside) calls sensitive '" + ctx.name(e.to) +
                  "' (outside) " + std::to_string(e.call_count) + " times";
      f.evidence_path = {info.name, ctx.name(e.to)};
      findings.push_back(std::move(f));
    }
  }
  return findings;
}

}  // namespace sl::analysis
