// Vulnerability findings produced by the partition security auditor.
//
// A Finding records one control-flow-bending (CFB) exposure a static check
// discovered in a partitioned call graph: which check fired, how bad it is,
// whether the check holds a concrete witness (CONFIRMED) or reports a
// heuristic concern (ADVISORY), and the evidence path through the graph.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cfg/graph.hpp"

namespace sl::analysis {

// The four static passes (docs/ANALYSIS.md describes each in detail).
enum class CheckId {
  kCheckSkip,        // protected function reachable while skipping every gate
  kReturnForge,      // authorization decision returns to untrusted code
  kInterfaceWidth,   // unauthenticated ECALL entry exposes protected callees
  kSensitiveEgress,  // sensitive data resides in / flows to untrusted memory
};

enum class Severity { kInfo, kWarning, kMedium, kHigh, kCritical };

// CONFIRMED findings carry a concrete witness (a path or edge in the graph
// that realizes the attack precondition); ADVISORY findings flag policy
// concerns that need no path to hold.
enum class Status { kAdvisory, kConfirmed };

std::string check_name(CheckId check);
std::string severity_name(Severity severity);
std::string status_name(Status status);

struct Finding {
  CheckId check = CheckId::kCheckSkip;
  Severity severity = Severity::kInfo;
  Status status = Status::kAdvisory;
  // The function the finding is about (attack target, forgeable decision
  // site, or exposed entry point depending on the check).
  std::string function;
  std::string message;
  // Witness: function names along the attack path (empty for advisories).
  std::vector<std::string> evidence_path;
};

// One enclave entry point of the effective ECALL surface the partition
// induces: a migrated function with at least one untrusted caller (plus the
// program entry when it migrates).
struct EcallEntry {
  std::string function;
  // The entry authorizes callers itself (AM member, or a lease-gated key
  // function under schemes that gate keys at run time).
  bool guard = false;
  // A guard exists somewhere in the entry's in-enclave call subtree; with
  // enclave control-flow integrity the check cannot be skipped once the
  // boundary is crossed.
  bool internally_guarded = false;
  std::vector<std::string> untrusted_callers;
  // Enclave functions the host can drive through this entry.
  std::uint64_t reachable_enclave_functions = 0;
};

struct AuditReport {
  std::string app;
  std::string scheme;
  std::string entry;
  std::uint64_t function_count = 0;
  std::uint64_t migrated_count = 0;

  std::vector<EcallEntry> ecall_surface;
  // Sorted most severe first (then by check, then by function name).
  std::vector<Finding> findings;

  bool clean() const { return findings.empty(); }
  std::uint64_t count(Severity severity) const;
  std::uint64_t confirmed_count() const;
  Severity worst_severity() const;  // kInfo when clean
};

// Canonical ordering applied to every report (stable output for golden
// tests): severity descending, then check id, then subject function.
void sort_findings(std::vector<Finding>& findings);

}  // namespace sl::analysis
