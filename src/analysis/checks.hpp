// The four static CFB-vulnerability passes of the partition auditor.
//
// Attacker model (paper Section 2): the adversary runs the victim on a
// virtual CPU with total control over untrusted code — branches can be
// flipped, calls skipped, any untrusted function invoked directly, and any
// ECALL stub the partition generates can be called with chosen arguments.
// Enclave-resident code has control-flow integrity: once execution crosses
// the boundary, it follows the program, and *guard* functions (the AM, plus
// lease-gated key functions under SecureLease's runtime) refuse to work
// without a valid license/lease.
//
// Each pass is independent and returns findings; the auditor (auditor.hpp)
// assembles them into a report.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/finding.hpp"
#include "analysis/reachability.hpp"
#include "cfg/graph.hpp"
#include "partition/partitioner.hpp"

namespace sl::analysis {

// Everything the passes need, precomputed once per audit.
class AuditContext {
 public:
  AuditContext(const cfg::CallGraph& graph, cfg::NodeId entry,
               const partition::PartitionResult& partition,
               bool lease_gated_keys);

  const cfg::CallGraph& graph() const { return graph_; }
  cfg::NodeId entry() const { return entry_; }
  const partition::PartitionResult& partition() const { return partition_; }
  bool lease_gated_keys() const { return lease_gated_keys_; }

  bool migrated(cfg::NodeId n) const { return partition_.migrated.contains(n); }
  // Guards authorize their own invocation at run time: migrated AM members
  // always, migrated key functions only when the scheme gates them.
  bool guard(cfg::NodeId n) const { return guards_.contains(n); }
  const NodeSet& guards() const { return guards_; }
  const std::string& name(cfg::NodeId n) const { return graph_.node(n).name; }

  // The entry's in-enclave call subtree contains a guard; under enclave
  // control-flow integrity the check cannot be bent around once entered, so
  // the auditor assumes it dominates the subtree (documented assumption).
  bool internally_guarded(cfg::NodeId enclave_entry) const;

  // Effective ECALL surface: migrated functions with at least one untrusted
  // caller, plus the program entry when it migrates. Sorted by name.
  std::vector<cfg::NodeId> ecall_surface() const;

 private:
  const cfg::CallGraph& graph_;
  cfg::NodeId entry_;
  const partition::PartitionResult& partition_;
  bool lease_gated_keys_;
  NodeSet guards_;
  mutable std::unordered_map<cfg::NodeId, bool> internally_guarded_cache_;
};

// Unauthorized-execution reachability from `start` under the attacker
// model: untrusted nodes expand freely (attacker-bent control flow),
// migrated non-guard nodes are enterable from untrusted code only when not
// internally guarded (boundary crossing via their ECALL stub) and expand
// through in-enclave edges; guards are never entered.
struct AttackReach {
  NodeSet reached;
  std::unordered_map<cfg::NodeId, cfg::NodeId> parent;

  // Path start -> node (inclusive); empty when not reached.
  std::vector<cfg::NodeId> path_to(cfg::NodeId node) const;
};

AttackReach attack_reachability(const AuditContext& ctx, cfg::NodeId start);

// Pass 1 — check-skip: a protected function (key function, or migrated
// sensitive function) executes along an attacker-feasible path that never
// crosses a guard. The classic CFB skip of paper Section 2.1.1.
std::vector<Finding> run_check_skip(const AuditContext& ctx);

// Pass 2 — return-forge: an authorization decision whose result is
// consumed by untrusted code that gates access to work the enclave does not
// independently protect (paper Section 3 / Figure 6 attack 2); also flags
// AM members left entirely untrusted (Figure 2 / Figure 6 attack 1).
std::vector<Finding> run_return_forge(const AuditContext& ctx);

// Pass 3 — interface-width: enumerates the ECALL surface and flags entry
// points that expose protected callees to the host without any
// authorization on the in-enclave path.
std::vector<Finding> run_interface_width(const AuditContext& ctx,
                                         std::vector<EcallEntry>* surface);

// Pass 4 — sensitive-data egress: sensitive functions left outside the
// enclave partition, and sensitive regions flowing across the boundary.
std::vector<Finding> run_sensitive_egress(const AuditContext& ctx);

}  // namespace sl::analysis
