#include "analysis/envelope.hpp"

#include <cstdio>
#include <sstream>

namespace sl::analysis {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string envelope_header(const std::string& tool) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema_version\": " << kReportSchemaVersion << ",\n";
  os << "  \"tool\": \"" << json_escape(tool) << "\",\n";
  return os.str();
}

namespace {

// Position just past `key` (a full '"name":' pattern) or npos.
std::size_t find_key(const std::string& json, const std::string& key) {
  const std::string pattern = "\"" + key + "\":";
  const std::size_t at = json.find(pattern);
  return at == std::string::npos ? std::string::npos : at + pattern.size();
}

void skip_spaces(const std::string& json, std::size_t& at) {
  while (at < json.size() &&
         (json[at] == ' ' || json[at] == '\n' || json[at] == '\t')) {
    ++at;
  }
}

// Advances past a string literal starting at `at` (which must be '"').
bool skip_string(const std::string& json, std::size_t& at) {
  if (at >= json.size() || json[at] != '"') return false;
  for (++at; at < json.size(); ++at) {
    if (json[at] == '\\') {
      ++at;
    } else if (json[at] == '"') {
      ++at;
      return true;
    }
  }
  return false;
}

}  // namespace

std::optional<EnvelopeInfo> parse_envelope(const std::string& json) {
  EnvelopeInfo info;

  std::size_t at = find_key(json, "schema_version");
  if (at == std::string::npos) return std::nullopt;
  skip_spaces(json, at);
  if (at >= json.size() || json[at] < '0' || json[at] > '9') return std::nullopt;
  while (at < json.size() && json[at] >= '0' && json[at] <= '9') {
    info.schema_version = info.schema_version * 10 + (json[at] - '0');
    ++at;
  }

  at = find_key(json, "tool");
  if (at == std::string::npos) return std::nullopt;
  skip_spaces(json, at);
  const std::size_t open = at;
  if (!skip_string(json, at)) return std::nullopt;
  info.tool = json.substr(open + 1, at - open - 2);

  at = find_key(json, "findings");
  if (at == std::string::npos) return std::nullopt;
  skip_spaces(json, at);
  if (at >= json.size() || json[at] != '[') return std::nullopt;
  ++at;
  int depth = 0;  // brace/bracket depth inside the findings array
  for (; at < json.size(); ++at) {
    const char c = json[at];
    if (c == '"') {
      if (!skip_string(json, at)) return std::nullopt;
      --at;  // the loop increment re-advances past the closing quote
    } else if (c == '{' || c == '[') {
      if (c == '{' && depth == 0) ++info.finding_count;
      ++depth;
    } else if (c == '}' || c == ']') {
      if (depth == 0) {
        if (c == ']') return info;  // end of the findings array
        return std::nullopt;
      }
      --depth;
    }
  }
  return std::nullopt;
}

}  // namespace sl::analysis
