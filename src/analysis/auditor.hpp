// Partition security auditor — static CFB-reachability analysis.
//
// Takes a call graph plus a partition result and proves (or refutes) the
// paper's central claim for that concrete partition: no control-flow-bending
// attack mounted from untrusted code can obtain protected work without a
// valid license. Four independent passes (checks.hpp) produce findings with
// severity, status, and evidence paths; report.hpp renders them as text,
// JSON, or an annotated DOT overlay.
#pragma once

#include <optional>
#include <string>

#include "analysis/finding.hpp"
#include "partition/partitioner.hpp"
#include "workloads/app_model.hpp"

namespace sl::analysis {

struct AuditOptions {
  // Whether migrated key functions validate a lease on every invocation
  // (SecureLease's runtime guarantee, Section 4.1). When unset, inferred
  // from the partition's scheme: true only for Scheme::kSecureLease.
  std::optional<bool> lease_gated_keys;
  // Human-readable scheme label for the report header. Defaults to the
  // partition scheme's name; override when auditing a hand-built partition
  // whose protection has no Scheme value (e.g. the victims' "enclave-AM").
  std::optional<std::string> scheme_label;
};

// Audit an arbitrary annotated call graph (e.g. parsed from DOT).
AuditReport audit_graph(const cfg::CallGraph& graph, cfg::NodeId entry,
                        const partition::PartitionResult& partition,
                        const std::string& app_name,
                        const AuditOptions& options = {});

// Audit a workload model under a partition of it.
AuditReport audit_partition(const workloads::AppModel& model,
                            const partition::PartitionResult& partition,
                            const AuditOptions& options = {});

}  // namespace sl::analysis
