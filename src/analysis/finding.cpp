#include "analysis/finding.hpp"

#include <algorithm>
#include <tuple>

namespace sl::analysis {

std::string check_name(CheckId check) {
  switch (check) {
    case CheckId::kCheckSkip: return "check-skip";
    case CheckId::kReturnForge: return "return-forge";
    case CheckId::kInterfaceWidth: return "interface-width";
    case CheckId::kSensitiveEgress: return "sensitive-egress";
  }
  return "?";
}

std::string severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kMedium: return "medium";
    case Severity::kHigh: return "high";
    case Severity::kCritical: return "critical";
  }
  return "?";
}

std::string status_name(Status status) {
  switch (status) {
    case Status::kAdvisory: return "ADVISORY";
    case Status::kConfirmed: return "CONFIRMED";
  }
  return "?";
}

std::uint64_t AuditReport::count(Severity severity) const {
  std::uint64_t total = 0;
  for (const Finding& f : findings) {
    if (f.severity == severity) ++total;
  }
  return total;
}

std::uint64_t AuditReport::confirmed_count() const {
  std::uint64_t total = 0;
  for (const Finding& f : findings) {
    if (f.status == Status::kConfirmed) ++total;
  }
  return total;
}

Severity AuditReport::worst_severity() const {
  Severity worst = Severity::kInfo;
  for (const Finding& f : findings) {
    if (static_cast<int>(f.severity) > static_cast<int>(worst)) worst = f.severity;
  }
  return worst;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::make_tuple(-static_cast<int>(a.severity),
                                     static_cast<int>(a.check), a.function,
                                     a.message) <
                     std::make_tuple(-static_cast<int>(b.severity),
                                     static_cast<int>(b.check), b.function,
                                     b.message);
            });
}

}  // namespace sl::analysis
