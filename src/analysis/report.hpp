// Rendering for audit reports: human text, machine-readable JSON, and an
// annotated Graphviz overlay of the partitioned graph with findings.
#pragma once

#include <string>

#include "analysis/finding.hpp"
#include "partition/partitioner.hpp"

namespace sl::analysis {

std::string to_text(const AuditReport& report);

// Deterministic, stably-ordered JSON (used by the golden-file tests).
std::string to_json(const AuditReport& report);

// DOT overlay: migrated nodes boxed, guards marked, flagged functions
// filled by their worst severity, the first evidence path of each finding
// drawn in red. Emits sl_* annotation attributes so the overlay round-trips
// through cfg::parse_dot.
std::string to_dot_overlay(const AuditReport& report,
                           const cfg::CallGraph& graph,
                           const partition::PartitionResult& partition);

}  // namespace sl::analysis
