#include "analysis/detlint/rules.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <unordered_map>

#include "analysis/reachability.hpp"
#include "cfg/graph.hpp"

namespace sl::analysis::detlint {

namespace {

bool is_code(const Token& t) {
  return t.kind != TokenKind::kComment && t.kind != TokenKind::kDirective;
}

bool is_plain_ident(const Token& t) {
  return t.kind == TokenKind::kIdentifier && !is_keyword(t.text);
}

std::string to_lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

// Splits a joined type string into identifier words ("std::vector<int>" ->
// {"std", "vector", "int"}).
std::vector<std::string> type_words(const std::string& type) {
  std::vector<std::string> words;
  std::string cur;
  for (const char c : type) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      cur += c;
    } else if (!cur.empty()) {
      words.push_back(cur);
      cur.clear();
    }
  }
  if (!cur.empty()) words.push_back(cur);
  return words;
}

bool is_builtin_scalar_word(const std::string& w) {
  static const std::set<std::string> kBuiltin = {
      "bool",   "char",  "short",    "int",       "long",
      "signed", "float", "double",   "size_t",    "ptrdiff_t",
      "wchar_t", "char8_t", "char16_t", "char32_t",
      "uintptr_t", "intptr_t", "intmax_t", "uintmax_t",
  };
  if (kBuiltin.contains(w)) return true;
  // u?int(8|16|32|64)(_least\d+|_fast\d+)?_t
  std::string rest = w;
  if (rest.rfind("uint", 0) == 0) {
    rest = rest.substr(4);
  } else if (rest.rfind("int", 0) == 0) {
    rest = rest.substr(3);
  } else {
    return false;
  }
  if (rest.size() < 3 || rest.substr(rest.size() - 2) != "_t") return false;
  rest = rest.substr(0, rest.size() - 2);
  if (rest.rfind("_least", 0) == 0) rest = rest.substr(6);
  if (rest.rfind("_fast", 0) == 0) rest = rest.substr(5);
  return rest == "8" || rest == "16" || rest == "32" || rest == "64";
}

// A type is scalar when, modulo `std`/`const` qualifiers, every word is a
// builtin arithmetic type, a sized integer, a corpus enum, or an alias that
// resolves to one. (`std::vector<std::uint8_t>` fails on "vector".)
bool is_scalar_type(const Model& model, const std::string& type, int depth) {
  if (depth > 4) return false;
  std::size_t checked = 0;
  for (const std::string& w : type_words(type)) {
    if (w == "std" || w == "const" || w == "unsigned") continue;
    ++checked;
    if (is_builtin_scalar_word(w)) continue;
    if (model.enum_names.contains(w)) continue;
    const auto alias = model.aliases.find(w);
    if (alias != model.aliases.end() &&
        is_scalar_type(model, alias->second, depth + 1)) {
      continue;
    }
    return false;
  }
  return checked > 0 || type.find("unsigned") != std::string::npos;
}

bool type_contains_any(const std::string& type,
                       const std::vector<std::string>& needles) {
  for (const std::string& n : needles) {
    if (type.find(n) != std::string::npos) return true;
  }
  return false;
}

bool is_sync_type(const std::string& type) {
  return type_contains_any(type, {"atomic", "mutex", "once_flag",
                                  "condition_variable", "latch", "barrier",
                                  "semaphore", "jthread"});
}

// True when a record of this type synchronizes internally (owns a mutex or
// atomic member), e.g. the MetricsRegistry / TraceRecorder singletons.
bool is_internally_synchronized(const Model& model, const std::string& type,
                                std::string* via) {
  for (const std::string& w : type_words(type)) {
    const Record* record = model.find_record(w);
    if (record == nullptr) continue;
    for (const Member& m : record->members) {
      if (is_sync_type(m.type)) {
        *via = record->name + " owns " + m.type + " " + m.name;
        return true;
      }
    }
  }
  return false;
}

bool is_obs_handle(const std::string& type) {
  return type_contains_any(type, {"Counter", "Gauge", "Histogram"});
}

void classify_shared_state(const Model& model, LintReport& report) {
  for (const SharedState& decl : model.shared_state) {
    SharedStateEntry entry;
    entry.decl = decl;
    std::string via;
    if (is_sync_type(decl.type)) {
      entry.classification = "guarded";
      entry.detail = "synchronized type";
    } else if (is_internally_synchronized(model, decl.type, &via)) {
      entry.classification = "guarded";
      entry.detail = "internally synchronized: " + via;
    } else if (decl.obs_gated) {
      entry.classification = "gated";
      entry.detail = "declared under #if SL_OBS_ENABLED";
    } else if (is_obs_handle(decl.type)) {
      entry.classification = "gated";
      entry.detail = "observability handle; inert unless SL_OBS_ENABLED";
    } else {
      entry.classification = "unguarded";
      entry.detail = "no synchronization or compile-out gate found";
    }
    report.shared_state.push_back(std::move(entry));
  }
  std::sort(report.shared_state.begin(), report.shared_state.end(),
            [](const SharedStateEntry& a, const SharedStateEntry& b) {
              return std::tie(a.decl.file, a.decl.line, a.decl.symbol) <
                     std::tie(b.decl.file, b.decl.line, b.decl.symbol);
            });
}

// Adds alias-typed declarations (`NodeSet visited;` where `using NodeSet =
// std::unordered_set<...>`) to the unordered name sets.
void resolve_unordered_aliases(const Model& model,
                               std::set<std::string>& names,
                               std::set<std::string>& returning) {
  std::set<std::string> unordered_types;
  for (const auto& [alias, underlying] : model.aliases) {
    if (underlying.find("unordered_map") != std::string::npos ||
        underlying.find("unordered_set") != std::string::npos) {
      unordered_types.insert(alias);
    }
  }
  if (unordered_types.empty()) return;
  for (const SourceFile& file : model.files) {
    const auto& t = file.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!is_code(t[i]) || !is_plain_ident(t[i])) continue;
      if (!unordered_types.contains(t[i].text)) continue;
      std::size_t j = i + 1;
      while (j < t.size() && !is_code(t[j])) ++j;
      // Skip reference/pointer declarators.
      while (j < t.size() && t[j].kind == TokenKind::kPunct &&
             (t[j].text == "&" || t[j].text == "*")) {
        ++j;
        while (j < t.size() && !is_code(t[j])) ++j;
      }
      if (j >= t.size() || !is_plain_ident(t[j])) continue;
      std::size_t k = j + 1;
      while (k < t.size() && !is_code(t[k])) ++k;
      if (k < t.size() && t[k].kind == TokenKind::kPunct && t[k].text == "(") {
        returning.insert(t[j].text);
      } else {
        names.insert(t[j].text);
      }
    }
  }
}

struct Reach {
  cfg::CallGraph graph;
  NodeSet reachable;
  // reached node -> a serialization entry that reaches it.
  std::unordered_map<cfg::NodeId, cfg::NodeId> via_entry;
};

Reach build_reachability(const Model& model) {
  Reach r;
  std::set<std::string> names;
  for (const Function& fn : model.functions) names.insert(fn.name);
  for (const std::string& name : names) {
    cfg::FunctionInfo info;
    info.name = name;
    r.graph.add_function(std::move(info));
  }
  for (const Function& fn : model.functions) {
    for (const std::string& callee : fn.calls) {
      if (callee != fn.name && names.contains(callee)) {
        r.graph.add_call(fn.name, callee, 1);
      }
    }
  }
  const NodeSet avoid;  // transitive closure avoids nothing
  for (const std::string& name : names) {
    if (!is_serialization_entry(name)) continue;
    const cfg::NodeId entry = r.graph.id_of(name);
    for (const cfg::NodeId node : reachable_avoiding(r.graph, entry, avoid)) {
      if (r.reachable.insert(node).second) r.via_entry[node] = entry;
    }
  }
  return r;
}

void add_finding(const Model& model, LintReport& report, LintFinding finding) {
  if (model.is_suppressed(finding.rule, finding.file, finding.line)) {
    ++report.suppressed;
    return;
  }
  report.findings.push_back(std::move(finding));
}

}  // namespace

std::vector<std::string> all_rules() {
  return {kRuleWallClock,       kRuleUnseededRandom,
          kRuleUnorderedIteration, kRulePointerOrdering,
          kRuleUninitWireMember,   kRuleUnguardedSharedState};
}

bool is_serialization_entry(const std::string& name) {
  const std::string lower = to_lower(name);
  // "serialize" counts unless every occurrence is part of "deserialize":
  // parsers consume bytes, they do not expose iteration order.
  for (std::size_t at = lower.find("serialize"); at != std::string::npos;
       at = lower.find("serialize", at + 1)) {
    if (at < 2 || lower.compare(at - 2, 2, "de") != 0) return true;
  }
  for (const char* needle : {"digest", "fingerprint", "to_json",
                             "to_prometheus", "to_text", "to_dot", "jsonl"}) {
    if (lower.find(needle) != std::string::npos) return true;
  }
  return false;
}

void run_rules(const Model& model, LintReport& report) {
  report.files_scanned = model.files.size();
  report.function_count = model.functions.size();

  classify_shared_state(model, report);

  // --- wall-clock / unseeded-random ------------------------------------------
  for (const BannedUse& use : model.clock_uses) {
    LintFinding f;
    f.rule = kRuleWallClock;
    f.severity = Severity::kHigh;
    f.file = use.file;
    f.line = use.line;
    f.function = use.function;
    f.symbol = use.identifier;
    f.message = "wall-clock API `" + use.identifier +
                "` breaks deterministic replay; thread virtual time through "
                "SimClock instead";
    add_finding(model, report, std::move(f));
  }
  for (const BannedUse& use : model.random_uses) {
    LintFinding f;
    f.rule = kRuleUnseededRandom;
    f.severity = Severity::kHigh;
    f.file = use.file;
    f.line = use.line;
    f.function = use.function;
    f.symbol = use.identifier;
    f.message = "nondeterministic randomness `" + use.identifier +
                "` is not replayable; draw from the seeded common/rng "
                "generator instead";
    add_finding(model, report, std::move(f));
  }

  // --- unordered-iteration ----------------------------------------------------
  std::set<std::string> unordered_names = model.unordered_names;
  std::set<std::string> unordered_returning = model.unordered_returning;
  resolve_unordered_aliases(model, unordered_names, unordered_returning);
  const Reach reach = build_reachability(model);
  const NodeSet avoid;
  for (const RangeFor& rf : model.range_fors) {
    std::string matched;
    for (const std::string& ident : rf.idents) {
      if (unordered_names.contains(ident) ||
          unordered_returning.contains(ident)) {
        matched = ident;
        break;
      }
    }
    if (matched.empty() || rf.function.empty()) continue;
    const auto node = reach.graph.find(rf.function);
    if (!node.has_value() || !reach.reachable.contains(*node)) continue;
    LintFinding f;
    f.rule = kRuleUnorderedIteration;
    f.severity = Severity::kMedium;
    f.file = rf.file;
    f.line = rf.line;
    f.function = rf.function;
    f.symbol = matched;
    const cfg::NodeId entry = reach.via_entry.at(*node);
    for (const cfg::NodeId hop :
         find_path_avoiding(reach.graph, entry, *node, avoid)) {
      f.evidence.push_back(reach.graph.node(hop).name);
    }
    f.message = "iteration order of `" + matched +
                "` escapes through serialization entry `" +
                reach.graph.node(entry).name +
                "`; iterate a sorted copy or switch to an ordered container";
    add_finding(model, report, std::move(f));
  }

  // --- pointer-ordering -------------------------------------------------------
  for (const PointerKeyUse& use : model.pointer_keys) {
    LintFinding f;
    f.rule = kRulePointerOrdering;
    f.severity = Severity::kMedium;
    f.file = use.file;
    f.line = use.line;
    f.function = use.function;
    f.symbol = use.key_type;
    f.message = "`" + use.container + "` keyed by pointer type `" +
                use.key_type +
                "` orders/hashes by address, which varies across runs; key "
                "by a stable id instead";
    add_finding(model, report, std::move(f));
  }

  // --- uninit-wire-member -----------------------------------------------------
  for (const Record& record : model.records) {
    if (!record.has_method("serialize") && !record.has_method("deserialize")) {
      continue;
    }
    for (const Member& m : record.members) {
      if (m.initialized || m.is_static || m.is_const) continue;
      if (!is_scalar_type(model, m.type, 0)) continue;
      LintFinding f;
      f.rule = kRuleUninitWireMember;
      f.severity = Severity::kHigh;
      f.file = record.file;
      f.line = m.line;
      f.symbol = record.name + "::" + m.name;
      f.message = "wire struct member `" + record.name + "::" + m.name +
                  "` (" + m.type +
                  ") has no initializer; partially-filled messages would "
                  "serialize indeterminate bytes";
      add_finding(model, report, std::move(f));
    }
  }

  // --- unguarded-shared-state -------------------------------------------------
  for (const SharedStateEntry& entry : report.shared_state) {
    if (entry.classification != "unguarded") continue;
    LintFinding f;
    f.rule = kRuleUnguardedSharedState;
    f.severity = Severity::kWarning;
    f.file = entry.decl.file;
    f.line = entry.decl.line;
    f.symbol = entry.decl.symbol;
    f.message = "mutable " + entry.decl.kind + " `" + entry.decl.symbol +
                "` (" + entry.decl.type +
                ") is unsynchronized; it must be guarded, sharded, or gated "
                "before the thread-per-shard backend lands";
    add_finding(model, report, std::move(f));
  }

  std::sort(report.findings.begin(), report.findings.end(),
            [](const LintFinding& a, const LintFinding& b) {
              return std::tie(a.rule, a.file, a.line, a.symbol) <
                     std::tie(b.rule, b.file, b.line, b.symbol);
            });
}

}  // namespace sl::analysis::detlint
