#include "analysis/detlint/model.hpp"

#include <algorithm>

namespace sl::analysis::detlint {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

bool is_code(const Token& t) {
  return t.kind != TokenKind::kComment && t.kind != TokenKind::kDirective;
}

bool is_ident(const Token& t) {
  return t.kind == TokenKind::kIdentifier && !is_keyword(t.text);
}

bool punct_is(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool ident_is(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

// Joins type tokens readably: no spaces around '::' or before template and
// declarator punctuation.
std::string join_type(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) {
    const bool tight = p == "::" || p == "<" || p == ">" || p == "," ||
                       p == "*" || p == "&";
    const bool prev_tight =
        !out.empty() && (out.back() == ':' || out.back() == '<');
    if (!out.empty() && !tight && !prev_tight) out += ' ';
    out += p;
  }
  return out;
}

// --- Per-file scanner --------------------------------------------------------

class Scanner {
 public:
  Scanner(Model& model, std::size_t file_index)
      : model_(model),
        file_index_(file_index),
        path_(model.files[file_index].path),
        t_(model.files[file_index].tokens),
        n_(model.files[file_index].tokens.size()) {}

  void run() {
    collect_suppressions();
    scan_scope(0, n_, kNone);
    collect_unordered_decls();
    collect_pointer_keys();
    collect_banned_uses();
  }

 private:
  // First code token at or after `i`.
  std::size_t next_code(std::size_t i) const {
    while (i < n_ && !is_code(t_[i])) ++i;
    return i;
  }

  // Index just past the token matching the opener at `open` ('(', '{', '[').
  std::size_t match_group(std::size_t open) const {
    const std::string& o = t_[open].text;
    const char* close = o == "(" ? ")" : o == "{" ? "}" : "]";
    int depth = 0;
    for (std::size_t i = open; i < n_; ++i) {
      // Only punctuators balance: a string/char literal like `"}"` must not.
      if (punct_is(t_[i], o.c_str())) {
        ++depth;
      } else if (punct_is(t_[i], close)) {
        if (--depth == 0) return i + 1;
      }
    }
    return n_;
  }

  // Index just past the '>' matching '<' at `open`, or kNone when the scan
  // runs into a statement boundary (then '<' was a comparison, not a
  // template-argument list).
  std::size_t match_angles(std::size_t open) const {
    int depth = 0;
    std::size_t steps = 0;
    for (std::size_t i = open; i < n_ && steps < 512; ++i, ++steps) {
      if (t_[i].kind != TokenKind::kPunct) continue;
      const std::string& x = t_[i].text;
      if (x == "<") {
        ++depth;
      } else if (x == ">") {
        if (--depth == 0) return i + 1;
      } else if (x == ";" || x == "{" || x == "}") {
        return kNone;
      }
    }
    return kNone;
  }

  void collect_suppressions() {
    for (std::size_t idx = 0; idx < n_; ++idx) {
      const Token& tok = t_[idx];
      if (tok.kind != TokenKind::kComment) continue;
      std::size_t at = tok.text.find("detlint:allow(");
      if (at == std::string::npos) continue;
      at += sizeof("detlint:allow(") - 1;
      const std::size_t end = tok.text.find(')', at);
      if (end == std::string::npos) continue;
      // The marker covers its own line and the next code line, skipping any
      // continuation comments in between (multi-line reasons).
      int target = tok.line + 1;
      for (std::size_t j = idx + 1; j < n_; ++j) {
        if (t_[j].kind == TokenKind::kComment && t_[j].line >= target) {
          target = t_[j].line + 1;
        } else if (t_[j].kind != TokenKind::kComment) {
          break;
        }
      }
      std::string rule;
      for (std::size_t i = at; i <= end; ++i) {
        const char c = i < end ? tok.text[i] : ',';
        if (c == ',' || c == ')') {
          if (!rule.empty()) {
            model_.suppressions[path_][tok.line].insert(rule);
            model_.suppressions[path_][target].insert(rule);
            rule.clear();
          }
        } else if (c != ' ') {
          rule += c;
        }
      }
    }
  }

  // --- Scope walk ------------------------------------------------------------

  // Scans declarations in [begin, end). `record_index` indexes
  // model_.records for the enclosing struct/class (kNone at namespace
  // scope); it is passed explicitly so nested record definitions cannot
  // redirect the outer record's members.
  void scan_scope(std::size_t begin, std::size_t end, std::size_t record_index) {
    std::size_t i = next_code(begin);
    while (i < end) {
      const Token& tok = t_[i];
      if (!is_code(tok)) {
        ++i;
        continue;
      }
      if (punct_is(tok, ";") || punct_is(tok, "}")) {
        ++i;
      } else if (ident_is(tok, "namespace")) {
        std::size_t j = next_code(i + 1);
        while (j < end && (is_ident(t_[j]) || punct_is(t_[j], "::"))) {
          j = next_code(j + 1);
        }
        if (j < end && punct_is(t_[j], "{")) {
          const std::size_t close = match_group(j);
          scan_scope(j + 1, close - 1, kNone);
          i = close;
        } else if (j < end && punct_is(t_[j], "=")) {
          i = skip_statement(j, end);  // namespace alias: `namespace fs = ...;`
        } else {
          i = j + 1;
        }
      } else if (ident_is(tok, "struct") || ident_is(tok, "class") ||
                 ident_is(tok, "union")) {
        i = scan_record(i, end);
      } else if (ident_is(tok, "enum")) {
        std::size_t j = next_code(i + 1);
        if (j < end && (ident_is(t_[j], "class") || ident_is(t_[j], "struct"))) {
          j = next_code(j + 1);
        }
        if (j < end && is_ident(t_[j])) {
          model_.enum_names.insert(t_[j].text);
        }
        while (j < end && !punct_is(t_[j], "{") && !punct_is(t_[j], ";")) {
          j = next_code(j + 1);
        }
        i = (j < end && punct_is(t_[j], "{")) ? match_group(j) : j + 1;
      } else if (ident_is(tok, "using") || ident_is(tok, "typedef")) {
        i = scan_alias(i, end);
      } else if (ident_is(tok, "template")) {
        const std::size_t j = next_code(i + 1);
        std::size_t past = kNone;
        if (j < end && punct_is(t_[j], "<")) past = match_angles(j);
        i = past == kNone ? j + 1 : past;
      } else if (ident_is(tok, "extern")) {
        const std::size_t j = next_code(i + 1);
        if (j < end && t_[j].kind == TokenKind::kString) {
          const std::size_t k = next_code(j + 1);
          if (k < end && punct_is(t_[k], "{")) {
            const std::size_t close = match_group(k);
            scan_scope(k + 1, close - 1, record_index);
            i = close;
            continue;
          }
        }
        i = skip_statement(i, end);  // extern declaration, not a definition
      } else if (ident_is(tok, "public") || ident_is(tok, "private") ||
                 ident_is(tok, "protected")) {
        const std::size_t j = next_code(i + 1);
        i = (j < end && punct_is(t_[j], ":")) ? j + 1 : i + 1;
      } else if (ident_is(tok, "friend") || ident_is(tok, "static_assert")) {
        i = skip_statement(i, end);
      } else if (punct_is(tok, "{")) {
        // Unrecognized block at declaration scope: scan its contents too.
        const std::size_t close = match_group(i);
        scan_scope(i + 1, close - 1, record_index);
        i = close;
      } else {
        i = scan_statement(i, end, record_index);
      }
    }
  }

  std::size_t skip_statement(std::size_t i, std::size_t end) const {
    while (i < end) {
      if (!is_code(t_[i])) {
        ++i;
      } else if (punct_is(t_[i], ";")) {
        return i + 1;
      } else if (punct_is(t_[i], "(") || punct_is(t_[i], "{") ||
                 punct_is(t_[i], "[")) {
        i = match_group(i);
      } else if (punct_is(t_[i], "}")) {
        return i;
      } else {
        ++i;
      }
    }
    return i;
  }

  std::size_t scan_alias(std::size_t i, std::size_t end) {
    // `using NAME = <type>;` — recorded so the rules can resolve scalar and
    // unordered aliases; `using namespace` / `using a::b;` are skipped.
    const std::size_t j = next_code(i + 1);
    if (j < end && is_ident(t_[j])) {
      const std::size_t k = next_code(j + 1);
      if (k < end && punct_is(t_[k], "=")) {
        std::vector<std::string> type;
        std::size_t m = next_code(k + 1);
        while (m < end && !punct_is(t_[m], ";")) {
          if (is_code(t_[m])) type.push_back(t_[m].text);
          ++m;
        }
        model_.aliases[t_[j].text] = join_type(type);
        return m + 1;
      }
    }
    return skip_statement(i, end);
  }

  std::size_t scan_record(std::size_t i, std::size_t end) {
    std::size_t j = next_code(i + 1);
    while (j < end && punct_is(t_[j], "[")) j = next_code(match_group(j));
    if (j >= end || !is_ident(t_[j])) return skip_statement(i, end);
    const std::string name = t_[j].text;
    const int line = t_[j].line;
    j = next_code(j + 1);
    if (j < end && ident_is(t_[j], "final")) j = next_code(j + 1);
    if (j < end && punct_is(t_[j], ";")) return j + 1;  // forward declaration
    while (j < end && !punct_is(t_[j], "{") && !punct_is(t_[j], ";")) {
      if (punct_is(t_[j], "<")) {
        const std::size_t past = match_angles(j);
        j = past == kNone ? j + 1 : past;
        continue;
      }
      j = next_code(j + 1);
    }
    if (j >= end || !punct_is(t_[j], "{")) return j + 1;
    const std::size_t close = match_group(j);
    model_.records.push_back({name, path_, line, {}, {}});
    scan_scope(j + 1, close - 1, model_.records.size() - 1);
    // `};` terminator (any `} instance;` declarator is ignored).
    std::size_t k = next_code(close);
    while (k < end && !punct_is(t_[k], ";") && !punct_is(t_[k], "}")) {
      k = next_code(k + 1);
    }
    return (k < end && punct_is(t_[k], ";")) ? k + 1 : k;
  }

  // A statement at declaration scope: a function definition, a method
  // declaration, or a variable/member declaration.
  std::size_t scan_statement(std::size_t i, std::size_t end,
                             std::size_t record_index) {
    // Pass 1: look for a function-definition head `name ( ... ) ... {`.
    bool saw_equals = false;
    std::size_t j = i;
    while (j < end) {
      if (!is_code(t_[j])) {
        ++j;
        continue;
      }
      const Token& tok = t_[j];
      if (punct_is(tok, ";")) break;
      if (punct_is(tok, "}")) return j;
      if (punct_is(tok, "=")) {
        saw_equals = true;
        ++j;
        continue;
      }
      if (punct_is(tok, "{")) break;  // brace initializer, no candidate found
      if (punct_is(tok, "[")) {
        j = match_group(j);
        continue;
      }
      if (punct_is(tok, "<")) {
        const std::size_t past = match_angles(j);
        j = past == kNone ? j + 1 : past;
        continue;
      }
      if (punct_is(tok, "(")) {
        j = match_group(j);
        continue;
      }
      if (is_ident(tok) && !saw_equals) {
        const std::size_t after = next_code(j + 1);
        if (after < end && punct_is(t_[after], "(")) {
          const std::size_t past_params = match_group(after);
          const Trailer verdict = validate_trailer(past_params, end);
          if (verdict.body_open != kNone) {
            return register_function(j, verdict.body_open, record_index);
          }
          if (verdict.decl_end != kNone) {
            // A declaration (`...);` / `...) = default;`): record method
            // names so wire structs are recognized from headers.
            if (record_index != kNone) {
              model_.records[record_index].methods.push_back(tok.text);
            }
            return verdict.decl_end;
          }
          j = past_params;  // not a function head; keep scanning
          continue;
        }
      }
      ++j;
    }
    // Pass 2: variable / member declaration.
    return scan_variable(i, end, record_index);
  }

  struct Trailer {
    std::size_t body_open = kNone;  // '{' opening a definition body
    std::size_t decl_end = kNone;   // one past ';' of a pure declaration
  };

  // After a parameter list, decides between a definition (finds the body
  // '{'), a pure declaration (finds ';' or '= default;'), or neither.
  Trailer validate_trailer(std::size_t m, std::size_t end) const {
    Trailer v;
    m = next_code(m);
    while (m < end) {
      const Token& tok = t_[m];
      if (punct_is(tok, "{")) {
        v.body_open = m;
        return v;
      }
      if (punct_is(tok, ";")) {
        v.decl_end = m + 1;
        return v;
      }
      if (punct_is(tok, "=")) {  // = default / = delete / = 0
        while (m < end && !punct_is(t_[m], ";")) m = next_code(m + 1);
        v.decl_end = m < end ? m + 1 : end;
        return v;
      }
      if (punct_is(tok, ":")) return validate_init_list(m + 1, end);
      if (ident_is(tok, "noexcept") || ident_is(tok, "throw")) {
        m = next_code(m + 1);
        if (m < end && punct_is(t_[m], "(")) m = match_group(m);
        m = next_code(m);
        continue;
      }
      if (punct_is(tok, "<")) {
        const std::size_t past = match_angles(m);
        if (past == kNone) return v;
        m = next_code(past);
        continue;
      }
      if (tok.kind == TokenKind::kIdentifier || punct_is(tok, "::") ||
          punct_is(tok, "*") || punct_is(tok, "&") || punct_is(tok, "->")) {
        m = next_code(m + 1);
        continue;
      }
      return v;  // anything else: not a function header
    }
    return v;
  }

  // Constructor member-initializer list: `: a_(x), b_{y} {`.
  Trailer validate_init_list(std::size_t m, std::size_t end) const {
    Trailer v;
    m = next_code(m);
    while (m < end) {
      const Token& tok = t_[m];
      if (punct_is(tok, "(") || punct_is(tok, "{")) {
        const std::size_t past = match_group(m);
        const std::size_t after = next_code(past);
        if (after < end && punct_is(t_[after], ",")) {
          m = next_code(after + 1);
          continue;
        }
        if (after < end && punct_is(t_[after], "{")) {
          v.body_open = after;
          return v;
        }
        return v;
      }
      if (tok.kind == TokenKind::kIdentifier || punct_is(tok, "::")) {
        m = next_code(m + 1);
        continue;
      }
      if (punct_is(tok, "<")) {
        const std::size_t past = match_angles(m);
        if (past == kNone) return v;
        m = next_code(past);
        continue;
      }
      return v;
    }
    return v;
  }

  std::size_t register_function(std::size_t name_idx, std::size_t body_open,
                                std::size_t record_index) {
    Function fn;
    fn.name = t_[name_idx].text;
    fn.qualified = fn.name;
    // Walk back over `Qualifier::` chains.
    std::size_t q = name_idx;
    while (q >= 2 && punct_is(t_[q - 1], "::") && is_ident(t_[q - 2])) {
      fn.qualified = t_[q - 2].text + "::" + fn.qualified;
      q -= 2;
    }
    if (record_index != kNone && fn.qualified == fn.name) {
      fn.qualified = model_.records[record_index].name + "::" + fn.name;
      model_.records[record_index].methods.push_back(fn.name);
    }
    fn.file = path_;
    fn.line = t_[name_idx].line;
    fn.file_index = file_index_;
    fn.body_begin = body_open;
    fn.body_end = match_group(body_open);
    analyze_body(fn);
    const std::size_t past = fn.body_end;
    model_.functions.push_back(std::move(fn));
    return past;
  }

  // --- Function bodies -------------------------------------------------------

  void analyze_body(Function& fn) {
    std::size_t i = fn.body_begin + 1;
    while (i + 1 < fn.body_end) {
      const Token& tok = t_[i];
      if (!is_code(tok)) {
        ++i;
        continue;
      }
      if (ident_is(tok, "static")) {
        i = scan_static_local(i, fn);
        continue;
      }
      if (ident_is(tok, "for")) {
        const std::size_t open = next_code(i + 1);
        if (open < fn.body_end && punct_is(t_[open], "(")) {
          scan_range_for(open, fn);
        }
        ++i;
        continue;
      }
      if (is_ident(tok)) {
        const std::size_t after = next_code(i + 1);
        if (after < fn.body_end && punct_is(t_[after], "(")) {
          // Exclude `Type name(...)` declarations: the token before a call
          // is never a plain (non-keyword) identifier.
          std::size_t prev = i;
          while (prev > fn.body_begin && !is_code(t_[prev - 1])) --prev;
          const bool decl_like = prev > fn.body_begin && is_ident(t_[prev - 1]);
          if (!decl_like) fn.calls.push_back(tok.text);
        }
      }
      ++i;
    }
  }

  std::size_t scan_static_local(std::size_t i, Function& fn) {
    // `static <type> name [= ...|{...}|(...)];` inside a body.
    std::vector<std::string> type;
    std::string name;
    int line = t_[i].line;
    bool is_const = false;
    const bool gated = t_[i].obs_gated;
    std::size_t j = next_code(i + 1);
    while (j < fn.body_end) {
      const Token& tok = t_[j];
      if (punct_is(tok, ";") || punct_is(tok, "=") || punct_is(tok, "{") ||
          punct_is(tok, "(")) {
        break;
      }
      if (ident_is(tok, "const") || ident_is(tok, "constexpr")) {
        is_const = true;
      } else if (punct_is(tok, "<")) {
        const std::size_t past = match_angles(j);
        if (past == kNone) break;
        if (!name.empty()) {
          type.push_back(name);
          name.clear();
        }
        for (std::size_t k = j; k < past; ++k) {
          if (is_code(t_[k])) type.push_back(t_[k].text);
        }
        j = past;
        continue;
      } else if (is_ident(tok)) {
        if (!name.empty()) type.push_back(name);
        name = tok.text;
        line = tok.line;
      } else if (tok.kind == TokenKind::kIdentifier || punct_is(tok, "::") ||
                 punct_is(tok, "*") || punct_is(tok, "&")) {
        if (!name.empty()) {
          type.push_back(name);
          name.clear();
        }
        type.push_back(tok.text);
      } else {
        break;  // anything exotic: give up on this static
      }
      j = next_code(j + 1);
    }
    if (!name.empty() && !is_const) {
      model_.shared_state.push_back({fn.name + "::" + name, join_type(type),
                                     path_, line, "static-local", gated});
    }
    return skip_statement(i, fn.body_end);
  }

  void scan_range_for(std::size_t open, Function& fn) {
    const std::size_t close = match_group(open);
    int depth = 0;
    std::size_t colon = kNone;
    for (std::size_t i = open; i < close; ++i) {
      if (!is_code(t_[i])) continue;
      if (punct_is(t_[i], "(")) ++depth;
      if (punct_is(t_[i], ")")) --depth;
      if (depth == 1 && punct_is(t_[i], ";")) return;  // classic for
      if (depth == 1 && punct_is(t_[i], ":")) {
        colon = i;
        break;
      }
    }
    if (colon == kNone) return;
    RangeFor rf;
    rf.function = fn.name;
    rf.file = path_;
    rf.line = t_[colon].line;
    for (std::size_t i = colon + 1; i + 1 < close; ++i) {
      if (is_code(t_[i]) && is_ident(t_[i])) rf.idents.push_back(t_[i].text);
    }
    if (!rf.idents.empty()) model_.range_fors.push_back(std::move(rf));
  }

  // --- Linear passes ---------------------------------------------------------

  std::string enclosing_function(std::size_t idx) const {
    std::string best;
    std::size_t best_begin = 0;
    for (const Function& fn : model_.functions) {
      if (fn.file_index != file_index_) continue;
      if (fn.body_begin <= idx && idx < fn.body_end &&
          fn.body_begin >= best_begin) {
        best = fn.name;
        best_begin = fn.body_begin;
      }
    }
    return best;
  }

  void collect_unordered_decls() {
    for (std::size_t i = 0; i < n_; ++i) {
      if (!is_code(t_[i])) continue;
      if (!ident_is(t_[i], "unordered_map") &&
          !ident_is(t_[i], "unordered_set")) {
        continue;
      }
      std::size_t j = next_code(i + 1);
      if (j < n_ && punct_is(t_[j], "<")) {
        const std::size_t past = match_angles(j);
        if (past == kNone) continue;
        j = next_code(past);
      }
      while (j < n_ && (punct_is(t_[j], "&") || punct_is(t_[j], "*") ||
                        ident_is(t_[j], "const"))) {
        j = next_code(j + 1);
      }
      if (j < n_ && is_ident(t_[j])) {
        const std::size_t after = next_code(j + 1);
        if (after < n_ && punct_is(t_[after], "(")) {
          model_.unordered_returning.insert(t_[j].text);
        } else {
          model_.unordered_names.insert(t_[j].text);
        }
      }
    }
  }

  void collect_pointer_keys() {
    for (std::size_t i = 0; i < n_; ++i) {
      if (!is_code(t_[i]) || t_[i].kind != TokenKind::kIdentifier) continue;
      const std::string& name = t_[i].text;
      if (name != "map" && name != "set" && name != "unordered_map" &&
          name != "unordered_set" && name != "less" && name != "hash") {
        continue;
      }
      const std::size_t open = next_code(i + 1);
      if (open >= n_ || !punct_is(t_[open], "<")) continue;
      // First template argument: up to ',' or the matching '>' at depth 1.
      int depth = 0;
      std::vector<std::string> arg;
      bool closed = false;
      bool bailed = false;
      for (std::size_t j = open; j < n_ && !closed && !bailed; ++j) {
        if (!is_code(t_[j])) continue;
        const std::string& x = t_[j].text;
        if (x == "<") {
          ++depth;
          if (depth == 1) continue;
        } else if (x == ">") {
          if (--depth == 0) {
            closed = true;
            continue;
          }
        } else if (x == ";" || x == "{" || x == "}") {
          bailed = true;  // comparison operator, not a template
          continue;
        } else if (x == "," && depth == 1) {
          closed = true;
          continue;
        }
        arg.push_back(x);
      }
      if (!closed || arg.empty() || arg.back() != "*") continue;
      model_.pointer_keys.push_back(
          {name, join_type(arg), enclosing_function(i), path_, t_[i].line});
    }
  }

  void collect_banned_uses() {
    static const std::set<std::string> kClock = {
        "system_clock",  "steady_clock", "high_resolution_clock",
        "clock_gettime", "gettimeofday", "timespec_get",
        "localtime",     "gmtime",       "mktime",
        "strftime",      "utc_clock",    "file_clock",
    };
    static const std::set<std::string> kClockCallOnly = {"time", "clock"};
    static const std::set<std::string> kRandom = {
        "random_device", "srand", "rand_r", "drand48", "lrand48", "mrand48",
    };
    static const std::set<std::string> kRandomCallOnly = {"rand"};

    for (std::size_t i = 0; i < n_; ++i) {
      if (!is_code(t_[i]) || t_[i].kind != TokenKind::kIdentifier) continue;
      const std::string& name = t_[i].text;
      const bool clock_hit = kClock.contains(name);
      const bool random_hit = kRandom.contains(name);
      const bool clock_call = kClockCallOnly.contains(name);
      const bool random_call = kRandomCallOnly.contains(name);
      if (!clock_hit && !random_hit && !clock_call && !random_call) continue;
      if (clock_call || random_call) {
        // Only a direct call counts: `time(...)` / `std::rand()`, but not a
        // member named `time` (`x.time(...)`), an accessor declaration
        // (`SimClock& clock()`), or a plain variable of that name.
        const std::size_t after = next_code(i + 1);
        if (after >= n_ || !punct_is(t_[after], "(")) continue;
        std::size_t prev = i;
        while (prev > 0 && !is_code(t_[prev - 1])) --prev;
        if (prev > 0 &&
            (punct_is(t_[prev - 1], ".") || punct_is(t_[prev - 1], "->") ||
             punct_is(t_[prev - 1], "&") || punct_is(t_[prev - 1], "*") ||
             is_ident(t_[prev - 1]))) {
          continue;
        }
      }
      const BannedUse use{name, enclosing_function(i), path_, t_[i].line};
      if (clock_hit || clock_call) {
        model_.clock_uses.push_back(use);
      } else {
        model_.random_uses.push_back(use);
      }
    }
  }

  // --- Variable / member declarations ----------------------------------------

  std::size_t scan_variable(std::size_t i, std::size_t end,
                            std::size_t record_index) {
    const std::size_t stmt_end = skip_statement(i, end);
    // Collect top-level token indices of the statement (outside any nested
    // (), [], {} or template-argument group). Group openers are themselves
    // top-level so brace initializers stay visible.
    std::vector<std::size_t> top;
    int paren = 0, brace = 0, bracket = 0, angle = 0;
    for (std::size_t j = i; j < stmt_end; ++j) {
      if (!is_code(t_[j])) continue;
      if (t_[j].kind != TokenKind::kPunct) {
        if (paren == 0 && brace == 0 && bracket == 0 && angle == 0) {
          top.push_back(j);
        }
        continue;
      }
      const std::string& x = t_[j].text;
      if (x == ")") {
        --paren;
        continue;
      }
      if (x == "}") {
        --brace;
        continue;
      }
      if (x == "]") {
        --bracket;
        continue;
      }
      if (x == ">" && angle > 0) {
        --angle;
        continue;
      }
      const bool top_level =
          paren == 0 && brace == 0 && bracket == 0 && angle == 0;
      if (top_level) top.push_back(j);
      if (x == "(") {
        ++paren;
      } else if (x == "{") {
        ++brace;
      } else if (x == "[") {
        ++bracket;
      } else if (x == "<" && top_level) {
        const std::size_t past = match_angles(j);
        if (past != kNone && past <= stmt_end) ++angle;
      }
    }
    if (top.empty()) return stmt_end;

    bool is_static = false, is_const = false, initialized = false;
    std::size_t name_idx = kNone;
    std::size_t init_at = kNone;
    for (const std::size_t pos : top) {
      const Token& tok = t_[pos];
      if (ident_is(tok, "static")) is_static = true;
      if (name_idx == kNone &&
          (ident_is(tok, "const") || ident_is(tok, "constexpr") ||
           ident_is(tok, "constinit"))) {
        is_const = true;
      }
      if (punct_is(tok, "=") || punct_is(tok, "{")) {
        if (init_at == kNone) init_at = pos;
        initialized = true;
      }
      if (is_ident(tok) && init_at == kNone) name_idx = pos;
    }
    if (name_idx == kNone) return stmt_end;
    // A '(' right after the name would be a rejected function candidate
    // (e.g. `operator==(...)` noise): not a variable.
    const std::size_t after_name = next_code(name_idx + 1);
    if (after_name < stmt_end && punct_is(t_[after_name], "(")) return stmt_end;

    // Type text: everything before the name, storage qualifiers stripped.
    std::vector<std::string> type;
    for (std::size_t j = top.front(); j < name_idx; ++j) {
      if (!is_code(t_[j])) continue;
      if (ident_is(t_[j], "static") || ident_is(t_[j], "inline") ||
          ident_is(t_[j], "mutable") || ident_is(t_[j], "extern")) {
        continue;
      }
      type.push_back(t_[j].text);
    }
    const std::string type_text = join_type(type);
    const std::string name = t_[name_idx].text;
    const int line = t_[name_idx].line;
    const bool gated = t_[name_idx].obs_gated;

    if (record_index != kNone) {
      model_.records[record_index].members.push_back(
          {type_text, name, line, initialized, is_static, is_const});
      if (is_static && !is_const) {
        model_.shared_state.push_back(
            {model_.records[record_index].name + "::" + name, type_text, path_,
             line, "static-member", gated});
      }
    } else if (!is_const) {
      model_.shared_state.push_back(
          {name, type_text, path_, line, "global", gated});
    }
    return stmt_end;
  }

  Model& model_;
  const std::size_t file_index_;
  const std::string path_;
  const std::vector<Token>& t_;
  const std::size_t n_;
};

}  // namespace

bool Record::has_method(const std::string& method) const {
  return std::find(methods.begin(), methods.end(), method) != methods.end();
}

bool Model::is_suppressed(const std::string& rule, const std::string& file,
                          int line) const {
  const auto by_file = suppressions.find(file);
  if (by_file == suppressions.end()) return false;
  const auto by_line = by_file->second.find(line);
  if (by_line == by_file->second.end()) return false;
  return by_line->second.contains(rule) || by_line->second.contains("*");
}

const Record* Model::find_record(const std::string& name) const {
  for (const Record& r : records) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

void scan_file(Model& model, const std::string& path, const std::string& text) {
  model.files.push_back({path, lex(text)});
  Scanner scanner(model, model.files.size() - 1);
  scanner.run();
}

}  // namespace sl::analysis::detlint
