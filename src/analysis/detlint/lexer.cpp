#include "analysis/detlint/lexer.hpp"

#include <cctype>
#include <unordered_set>

namespace sl::analysis::detlint {

bool is_keyword(const std::string& word) {
  static const std::unordered_set<std::string> kKeywords = {
      "alignas",   "alignof",  "auto",     "bool",      "break",
      "case",      "catch",    "char",     "class",     "const",
      "constexpr", "continue", "decltype", "default",   "delete",
      "do",        "double",   "else",     "enum",      "explicit",
      "extern",    "false",    "float",    "for",       "friend",
      "goto",      "if",       "inline",   "int",       "long",
      "mutable",   "namespace","new",      "noexcept",  "nullptr",
      "operator",  "override", "private",  "protected", "public",
      "return",    "short",    "signed",   "sizeof",    "static",
      "struct",    "switch",   "template", "this",      "throw",
      "true",      "try",      "typedef",  "typename",  "union",
      "unsigned",  "using",    "virtual",  "void",      "volatile",
      "while",     "final",    "co_await", "co_return", "co_yield",
      "consteval", "constinit","requires", "concept",   "static_assert",
  };
  return kKeywords.contains(word);
}

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  // Stack of open preprocessor conditionals; `true` frames gate on
  // SL_OBS_ENABLED. A token is obs_gated when any open frame is true.
  std::vector<bool> pp_stack;
  int gated_frames = 0;

  const auto push = [&](TokenKind kind, std::string text, int at_line) {
    out.push_back({kind, std::move(text), at_line, gated_frames > 0});
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }

    // Preprocessor directive: '#' at the start of a (logical) line.
    if (c == '#') {
      const int at = line;
      std::string text;
      while (i < n && source[i] != '\n') {
        if (source[i] == '\\' && i + 1 < n && source[i + 1] == '\n') {
          text += ' ';
          ++line;
          i += 2;
          continue;
        }
        text += source[i];
        ++i;
      }
      // Track the conditional stack for obs gating.
      const auto starts_with = [&](const char* prefix) {
        return text.rfind(prefix, 0) == 0;
      };
      if (starts_with("#if") || starts_with("# if")) {
        const bool gated = text.find("SL_OBS_ENABLED") != std::string::npos;
        pp_stack.push_back(gated);
        if (gated) ++gated_frames;
      } else if (starts_with("#endif") || starts_with("# endif")) {
        if (!pp_stack.empty()) {
          if (pp_stack.back()) --gated_frames;
          pp_stack.pop_back();
        }
      }
      push(TokenKind::kDirective, std::move(text), at);
      continue;
    }

    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      const int at = line;
      i += 2;
      std::string text;
      while (i < n && source[i] != '\n') text += source[i++];
      push(TokenKind::kComment, std::move(text), at);
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const int at = line;
      i += 2;
      std::string text;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') ++line;
        text += source[i++];
      }
      i = i + 2 <= n ? i + 2 : n;
      push(TokenKind::kComment, std::move(text), at);
      continue;
    }

    // Raw string literal R"delim(...)delim".
    if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
      std::size_t d = i + 2;
      std::string delim;
      while (d < n && source[d] != '(' && source[d] != '"' && delim.size() < 16) {
        delim += source[d++];
      }
      if (d < n && source[d] == '(') {
        const int at = line;
        const std::string close = ")" + delim + "\"";
        const std::size_t end = source.find(close, d + 1);
        std::string text = source.substr(d + 1, end == std::string::npos
                                                    ? std::string::npos
                                                    : end - d - 1);
        for (char t : text) {
          if (t == '\n') ++line;
        }
        i = end == std::string::npos ? n : end + close.size();
        push(TokenKind::kString, std::move(text), at);
        continue;
      }
    }

    // String / char literals.
    if (c == '"' || c == '\'') {
      const int at = line;
      const char quote = c;
      ++i;
      std::string text;
      while (i < n && source[i] != quote) {
        if (source[i] == '\\' && i + 1 < n) {
          text += source[i];
          text += source[i + 1];
          i += 2;
          continue;
        }
        if (source[i] == '\n') ++line;  // unterminated; keep scanning
        text += source[i++];
      }
      if (i < n) ++i;  // closing quote
      push(quote == '"' ? TokenKind::kString : TokenKind::kChar,
           std::move(text), at);
      continue;
    }

    // Identifiers and keywords.
    if (ident_start(c)) {
      const int at = line;
      std::string text;
      while (i < n && ident_char(source[i])) text += source[i++];
      push(TokenKind::kIdentifier, std::move(text), at);
      continue;
    }

    // Numbers (good enough: digits, dots, exponents, suffixes, hex, and
    // digit separators — `100'000` must not open a char literal).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const int at = line;
      std::string text;
      while (i < n && (ident_char(source[i]) || source[i] == '.' ||
                       (source[i] == '\'' && i + 1 < n &&
                        ident_char(source[i + 1])) ||
                       ((source[i] == '+' || source[i] == '-') && !text.empty() &&
                        (text.back() == 'e' || text.back() == 'E' ||
                         text.back() == 'p' || text.back() == 'P')))) {
        text += source[i++];
      }
      push(TokenKind::kNumber, std::move(text), at);
      continue;
    }

    // Combined punctuators the scanner depends on. `>` stays single so
    // template-argument scanning can balance '>>' as two closers.
    if (c == ':' && i + 1 < n && source[i + 1] == ':') {
      push(TokenKind::kPunct, "::", line);
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && source[i + 1] == '>') {
      push(TokenKind::kPunct, "->", line);
      i += 2;
      continue;
    }

    push(TokenKind::kPunct, std::string(1, c), line);
    ++i;
  }
  return out;
}

}  // namespace sl::analysis::detlint
