#include "analysis/detlint/detlint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/envelope.hpp"

namespace sl::analysis::detlint {

namespace fs = std::filesystem;

namespace {

bool is_source_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

// Extracts the accepted (rule, file, symbol) triples from a baseline file.
// The format is the narrow JSON this repo emits itself, so a targeted
// scanner is enough: every object in the "accepted" array carries exactly
// those three string fields, in order.
bool parse_baseline(const std::string& json, std::set<std::string>* keys) {
  const std::size_t accepted = json.find("\"accepted\"");
  if (accepted == std::string::npos) return false;
  std::size_t at = accepted;
  while (true) {
    at = json.find("\"rule\"", at);
    if (at == std::string::npos) break;
    std::vector<std::string> values;
    std::size_t cursor = at;
    for (const char* field : {"\"rule\"", "\"file\"", "\"symbol\""}) {
      cursor = json.find(field, cursor);
      if (cursor == std::string::npos) return false;
      cursor = json.find(':', cursor);
      if (cursor == std::string::npos) return false;
      const std::size_t open = json.find('"', cursor);
      if (open == std::string::npos) return false;
      std::size_t close = open + 1;
      while (close < json.size() && json[close] != '"') {
        if (json[close] == '\\') ++close;
        ++close;
      }
      if (close >= json.size()) return false;
      values.push_back(json.substr(open + 1, close - open - 1));
      cursor = close + 1;
    }
    keys->insert(values[0] + "|" + values[1] + "|" + values[2]);
    at = cursor;
  }
  return true;
}

std::string json_string_array(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + json_escape(values[i]) + "\"";
  }
  return out + "]";
}

}  // namespace

std::string finding_key(const LintFinding& finding) {
  const std::string& subject =
      finding.symbol.empty() ? finding.function : finding.symbol;
  return finding.rule + "|" + finding.file + "|" + subject;
}

LintResult run_lint(const LintOptions& options) {
  LintResult result;
  std::error_code ec;
  if (!fs::is_directory(options.root, ec)) {
    result.ok = false;
    result.error = "not a directory: " + options.root;
    return result;
  }

  // Deterministic scan order: collected then sorted root-relative paths.
  std::vector<fs::path> files;
  for (fs::recursive_directory_iterator it(options.root, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file(ec) && is_source_file(it->path())) {
      files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());

  Model model;
  for (const fs::path& path : files) {
    std::string text;
    if (!read_file(path.string(), &text)) {
      result.ok = false;
      result.error = "cannot read " + path.string();
      return result;
    }
    const std::string rel =
        fs::relative(path, options.root, ec).generic_string();
    scan_file(model, options.label + "/" + rel, text);
  }

  result.report.root = options.label;
  run_rules(model, result.report);

  if (!options.baseline_path.empty()) {
    std::string text;
    if (read_file(options.baseline_path, &text) &&
        parse_baseline(text, &result.accepted_keys)) {
      result.baseline_loaded = true;
    } else {
      result.ok = false;
      result.error = "cannot load baseline " + options.baseline_path;
      return result;
    }
  }
  for (const LintFinding& f : result.report.findings) {
    const std::string key = finding_key(f);
    if (!result.accepted_keys.contains(key)) result.new_keys.push_back(key);
  }
  return result;
}

std::string to_json(const LintResult& result) {
  const LintReport& report = result.report;
  std::ostringstream os;
  os << envelope_header("securelease-lint");
  os << "  \"root\": \"" << json_escape(report.root) << "\",\n";
  os << "  \"files_scanned\": " << report.files_scanned << ",\n";
  os << "  \"functions\": " << report.function_count << ",\n";

  os << "  \"shared_state\": [";
  for (std::size_t i = 0; i < report.shared_state.size(); ++i) {
    const SharedStateEntry& e = report.shared_state[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"symbol\": \"" << json_escape(e.decl.symbol) << "\", "
       << "\"kind\": \"" << e.decl.kind << "\", "
       << "\"type\": \"" << json_escape(e.decl.type) << "\", "
       << "\"file\": \"" << json_escape(e.decl.file) << "\", "
       << "\"line\": " << e.decl.line << ", "
       << "\"classification\": \"" << e.classification << "\", "
       << "\"detail\": \"" << json_escape(e.detail) << "\"}";
  }
  os << (report.shared_state.empty() ? "],\n" : "\n  ],\n");

  os << "  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const LintFinding& f = report.findings[i];
    const bool accepted = result.accepted_keys.contains(finding_key(f));
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\n";
    os << "      \"rule\": \"" << f.rule << "\",\n";
    os << "      \"severity\": \"" << severity_name(f.severity) << "\",\n";
    os << "      \"file\": \"" << json_escape(f.file) << "\",\n";
    os << "      \"line\": " << f.line << ",\n";
    os << "      \"function\": \"" << json_escape(f.function) << "\",\n";
    os << "      \"symbol\": \"" << json_escape(f.symbol) << "\",\n";
    os << "      \"message\": \"" << json_escape(f.message) << "\",\n";
    os << "      \"evidence\": " << json_string_array(f.evidence) << ",\n";
    os << "      \"baseline\": " << (accepted ? "true" : "false") << "\n";
    os << "    }";
  }
  os << (report.findings.empty() ? "],\n" : "\n  ],\n");

  std::size_t guarded = 0, gated = 0, unguarded = 0;
  for (const SharedStateEntry& e : report.shared_state) {
    if (e.classification == "guarded") ++guarded;
    if (e.classification == "gated") ++gated;
    if (e.classification == "unguarded") ++unguarded;
  }
  os << "  \"summary\": {\n";
  os << "    \"total\": " << report.findings.size() << ",\n";
  os << "    \"new\": " << result.new_keys.size() << ",\n";
  os << "    \"baseline_accepted\": "
     << (report.findings.size() - result.new_keys.size()) << ",\n";
  os << "    \"suppressed\": " << report.suppressed << ",\n";
  os << "    \"shared_state_guarded\": " << guarded << ",\n";
  os << "    \"shared_state_gated\": " << gated << ",\n";
  os << "    \"shared_state_unguarded\": " << unguarded << ",\n";
  os << "    \"clean\": " << (result.new_keys.empty() ? "true" : "false")
     << "\n";
  os << "  }\n";
  os << "}\n";
  return os.str();
}

std::string to_text(const LintResult& result) {
  const LintReport& report = result.report;
  std::ostringstream os;
  os << "detlint: " << report.files_scanned << " files, "
     << report.function_count << " functions under " << report.root << "/\n";

  os << "\nshared-state inventory (" << report.shared_state.size()
     << " mutable globals/statics):\n";
  for (const SharedStateEntry& e : report.shared_state) {
    os << "  [" << e.classification << "] " << e.decl.symbol << " ("
       << e.decl.kind << ", " << e.decl.type << ") at " << e.decl.file << ":"
       << e.decl.line << " — " << e.detail << "\n";
  }

  if (report.findings.empty()) {
    os << "\nno findings";
  } else {
    os << "\n" << report.findings.size() << " finding(s):\n";
    for (const LintFinding& f : report.findings) {
      const bool accepted = result.accepted_keys.contains(finding_key(f));
      os << "  " << f.file << ":" << f.line << ": [" << f.rule << "/"
         << severity_name(f.severity) << "]"
         << (accepted ? " (baseline)" : " (NEW)") << " " << f.message << "\n";
      if (!f.evidence.empty()) {
        os << "      via";
        for (const std::string& hop : f.evidence) os << " -> " << hop;
        os << "\n";
      }
    }
  }
  os << "\n"
     << (result.report.suppressed > 0
             ? std::to_string(result.report.suppressed) + " suppressed; "
             : std::string())
     << result.new_keys.size() << " new finding(s)"
     << (result.baseline_loaded ? " vs baseline" : "") << "\n";
  return os.str();
}

std::string baseline_json(const LintReport& report) {
  // One accepted entry per distinct key, sorted for stable diffs.
  std::set<std::string> keys;
  std::ostringstream os;
  os << envelope_header("securelease-lint-baseline");
  os << "  \"findings\": [],\n";
  os << "  \"accepted\": [";
  bool first = true;
  for (const LintFinding& f : report.findings) {
    if (!keys.insert(finding_key(f)).second) continue;
    const std::string& subject = f.symbol.empty() ? f.function : f.symbol;
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"rule\": \"" << f.rule << "\", \"file\": \""
       << json_escape(f.file) << "\", \"symbol\": \"" << json_escape(subject)
       << "\"}";
  }
  os << (first ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

std::string find_repo_root(const std::string& start) {
  std::error_code ec;
  fs::path dir = fs::absolute(start, ec);
  for (int depth = 0; depth < 32 && !dir.empty(); ++depth) {
    if (fs::exists(dir / "ROADMAP.md", ec) && fs::is_directory(dir / "src", ec)) {
      return dir.string();
    }
    const fs::path parent = dir.parent_path();
    if (parent == dir) break;
    dir = parent;
  }
  return std::string();
}

}  // namespace sl::analysis::detlint
