// Lightweight C++ tokenizer for the determinism & thread-readiness linter.
//
// This is deliberately not a compiler front end: detlint analyzes the
// repository's own sources, which follow one style, so a line-tracking
// token stream plus a scope heuristic (model.hpp) is enough to find the
// declaration-level facts the rules need. Comments are kept as tokens
// (suppression markers live in them) and preprocessor conditionals are
// tracked so declarations inside `#if SL_OBS_ENABLED` regions can be
// classified as compile-out-gated.
#pragma once

#include <string>
#include <vector>

namespace sl::analysis::detlint {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,     // string literal (including raw strings), text excludes quotes
  kChar,       // character literal
  kPunct,      // single punctuator, or one of the combined ones: :: ->
  kComment,    // // or /* */ comment, text excludes the markers
  kDirective,  // whole preprocessor line (continuations folded), incl. '#'
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 1;
  // Token lies inside a preprocessor conditional whose condition mentions
  // SL_OBS_ENABLED (the observability compile-out gate).
  bool obs_gated = false;
};

// Tokenizes `source`. Never throws; unrecognized bytes become single-char
// punct tokens so the scanner always makes progress.
std::vector<Token> lex(const std::string& source);

bool is_keyword(const std::string& word);

}  // namespace sl::analysis::detlint
