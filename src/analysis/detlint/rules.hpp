// Determinism & thread-readiness rules evaluated over a detlint Model.
//
// Determinism family (protects the DST guarantee: identical seeds replay
// bit-identically):
//   wall-clock           real-time clock APIs anywhere in src/
//   unseeded-random      rand()/random_device-style nondeterminism
//   unordered-iteration  range-for over an unordered container inside a
//                        function transitively reachable from a
//                        serialization/digest/exposition entry point
//                        (file-level call graph + the PR-1 reachability
//                        engine provide the transitive closure)
//   pointer-ordering     ordered/hashed containers keyed by pointer values
//   uninit-wire-member   uninitialized scalar members of wire/WAL structs
//                        (records that declare serialize/deserialize)
//
// Thread-readiness family (the shared-state worklist for the thread-per-
// shard backend, ROADMAP item 1):
//   unguarded-shared-state  a mutable global/static that is neither
//                           synchronized, internally synchronized, nor
//                           compiled out with SL_OBS_ENABLED
//
// Every mutable global/static is additionally reported (whatever its
// classification) in the shared-state inventory.
#pragma once

#include <string>
#include <vector>

#include "analysis/detlint/model.hpp"
#include "analysis/finding.hpp"

namespace sl::analysis::detlint {

inline constexpr const char* kRuleWallClock = "wall-clock";
inline constexpr const char* kRuleUnseededRandom = "unseeded-random";
inline constexpr const char* kRuleUnorderedIteration = "unordered-iteration";
inline constexpr const char* kRulePointerOrdering = "pointer-ordering";
inline constexpr const char* kRuleUninitWireMember = "uninit-wire-member";
inline constexpr const char* kRuleUnguardedSharedState = "unguarded-shared-state";

// All rule ids, in catalog order (docs/ANALYSIS.md).
std::vector<std::string> all_rules();

struct LintFinding {
  std::string rule;
  Severity severity = Severity::kWarning;
  std::string file;
  int line = 1;
  std::string function;  // enclosing function, "" at file scope
  std::string symbol;    // subject symbol (member, global, identifier)
  std::string message;
  // For unordered-iteration: serialization entry -> ... -> function.
  std::vector<std::string> evidence;
};

// One classified row of the thread-readiness inventory.
struct SharedStateEntry {
  SharedState decl;
  std::string classification;  // "guarded" | "gated" | "unguarded"
  std::string detail;          // why it got that classification
};

struct LintReport {
  std::string root;  // label findings' paths are relative to, e.g. "src"
  std::size_t files_scanned = 0;
  std::size_t function_count = 0;
  std::vector<SharedStateEntry> shared_state;
  std::vector<LintFinding> findings;  // sorted: rule, file, line, symbol
  std::size_t suppressed = 0;         // findings silenced by detlint:allow

  bool clean() const { return findings.empty(); }
};

// True when `name` looks like a serialization/digest/exposition entry point
// (the sources whose iteration order escapes into externally visible bytes).
bool is_serialization_entry(const std::string& name);

// Evaluates every rule over `model`, filling report.findings (sorted) and
// report.shared_state (sorted by file, line, symbol).
void run_rules(const Model& model, LintReport& report);

}  // namespace sl::analysis::detlint
