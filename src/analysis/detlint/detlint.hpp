// detlint driver: scans a source tree, evaluates the determinism and
// thread-readiness rules (rules.hpp), renders reports in the shared
// analysis envelope (analysis/envelope.hpp), and compares findings against
// a checked-in baseline.
//
// Baseline workflow: tools/detlint_baseline.json records the accepted
// findings as (rule, file, symbol) triples — no line numbers, so ordinary
// edits do not invalidate it. `securelease lint` exits 3 only when a
// finding NOT in the baseline appears; regenerating the file is
// `securelease lint --write-baseline tools/detlint_baseline.json`.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/detlint/rules.hpp"

namespace sl::analysis::detlint {

struct LintOptions {
  std::string root;           // directory scanned recursively
  std::string label = "src";  // path prefix findings report
  std::string baseline_path;  // empty: everything counts as new
};

struct LintResult {
  LintReport report;
  bool ok = true;  // scan and baseline I/O succeeded
  std::string error;
  bool baseline_loaded = false;
  std::set<std::string> accepted_keys;   // from the baseline file
  std::vector<std::string> new_keys;     // findings not in the baseline
};

// Stable identity of a finding across line drift: "rule|file|symbol"
// (falling back to the enclosing function when the symbol is empty).
std::string finding_key(const LintFinding& finding);

// Scans options.root and evaluates every rule. Never throws; I/O problems
// set result.ok = false with an explanation.
LintResult run_lint(const LintOptions& options);

// Reports. JSON uses the shared envelope (schema_version/tool/findings) with
// tool name "securelease-lint"; both orderings are deterministic.
std::string to_json(const LintResult& result);
std::string to_text(const LintResult& result);

// Serialized baseline accepting every finding of `report`.
std::string baseline_json(const LintReport& report);

// Walks up from `start` (default: the current directory) to the repository
// root, identified by ROADMAP.md next to a src/ directory. Empty when not
// found.
std::string find_repo_root(const std::string& start = ".");

}  // namespace sl::analysis::detlint
