// Declaration & scope model for detlint.
//
// Built from the token streams of every scanned file, the model records the
// facts the rules (rules.hpp) consume:
//
//  * function definitions with their body token spans — the nodes of the
//    file-level call graph;
//  * call sites (identifier followed by '(') inside bodies — its edges;
//  * record (struct/class) definitions with their data members and method
//    names — wire-struct detection and internal-synchronization inference;
//  * mutable namespace-scope variables, mutable static locals and mutable
//    static data members — the shared-state inventory;
//  * names declared with an unordered container type, and functions
//    returning one — the unordered-iteration rule's alphabet;
//  * range-for loops with the base identifier they iterate;
//  * suppression comments: `// detlint:allow(<rule>[, <rule>]) reason`
//    applies to findings on its own line and the following line.
//
// The scanner is a heuristic, not a parser: it tracks brace depth and a
// namespace/record/function context stack, which is accurate for this
// codebase's style and degrades to "missing facts", never crashes, on code
// it does not understand.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/detlint/lexer.hpp"

namespace sl::analysis::detlint {

struct Member {
  std::string type;  // joined type tokens, e.g. "std::uint64_t"
  std::string name;
  int line = 1;
  bool initialized = false;  // has "= ..." or "{...}" initializer
  bool is_static = false;
  bool is_const = false;
};

struct Record {
  std::string name;
  std::string file;
  int line = 1;
  std::vector<Member> members;
  std::vector<std::string> methods;  // declared/defined method names

  bool has_method(const std::string& method) const;
};

struct Function {
  std::string name;       // unqualified
  std::string qualified;  // as written, e.g. "Journal::replay"
  std::string file;
  int line = 1;
  std::size_t file_index = 0;
  // Token span of the body (indices into the owning file's token vector,
  // half-open, brackets the outer braces).
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  std::vector<std::string> calls;  // callee identifiers, in order
};

struct RangeFor {
  // All identifiers in the iterated expression (`for (auto& x : <expr>)`);
  // the rule flags the loop when any of them names an unordered container
  // or a function returning one.
  std::vector<std::string> idents;
  std::string function;  // enclosing function (unqualified), "" at file scope
  std::string file;
  int line = 1;
};

// One mutable global/static: the thread-readiness inventory unit.
struct SharedState {
  std::string symbol;  // qualified where scope is known, e.g. "Engine::hits"
  std::string type;    // joined type tokens
  std::string file;
  int line = 1;
  std::string kind;    // "global" | "static-local" | "static-member"
  bool obs_gated = false;  // declared under #if SL_OBS_ENABLED
};

// Banned-identifier use site (wall clock / randomness), resolved to its
// enclosing function by the scanner.
struct BannedUse {
  std::string identifier;
  std::string function;
  std::string file;
  int line = 1;
};

// Container keyed by a pointer type (map/set/unordered_map/unordered_set/
// less/hash with a T* first template argument).
struct PointerKeyUse {
  std::string container;  // e.g. "map"
  std::string key_type;   // joined tokens of the first template argument
  std::string function;
  std::string file;
  int line = 1;
};

struct SourceFile {
  std::string path;  // relative to the scan root
  std::vector<Token> tokens;
};

struct Model {
  std::vector<SourceFile> files;
  std::vector<Function> functions;
  std::vector<Record> records;
  std::vector<SharedState> shared_state;
  std::vector<RangeFor> range_fors;
  std::vector<BannedUse> clock_uses;
  std::vector<BannedUse> random_uses;
  std::vector<PointerKeyUse> pointer_keys;

  // Names (variables, members, parameters) declared with an unordered
  // container type anywhere in the corpus, and functions returning one.
  std::set<std::string> unordered_names;
  std::set<std::string> unordered_returning;

  // `using NAME = <type>;` aliases (namespace and record scope) and enum
  // names, for scalar/unordered type resolution in the rules.
  std::map<std::string, std::string> aliases;
  std::set<std::string> enum_names;

  // file -> line -> rule ids allowed on that line.
  std::map<std::string, std::map<int, std::set<std::string>>> suppressions;

  bool is_suppressed(const std::string& rule, const std::string& file,
                     int line) const;
  const Record* find_record(const std::string& name) const;
};

// Scans one file into the model. `path` should be root-relative; it is the
// path findings report.
void scan_file(Model& model, const std::string& path, const std::string& text);

}  // namespace sl::analysis::detlint
