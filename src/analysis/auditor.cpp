#include "analysis/auditor.hpp"

#include "analysis/checks.hpp"

namespace sl::analysis {

AuditReport audit_graph(const cfg::CallGraph& graph, cfg::NodeId entry,
                        const partition::PartitionResult& partition,
                        const std::string& app_name,
                        const AuditOptions& options) {
  const bool gated = options.lease_gated_keys.value_or(
      partition.scheme == partition::Scheme::kSecureLease);
  const AuditContext ctx(graph, entry, partition, gated);

  AuditReport report;
  report.app = app_name;
  report.scheme =
      options.scheme_label.value_or(partition::scheme_name(partition.scheme));
  report.entry = graph.node(entry).name;
  report.function_count = graph.node_count();
  report.migrated_count = partition.migrated.size();

  for (auto& f : run_check_skip(ctx)) report.findings.push_back(std::move(f));
  for (auto& f : run_return_forge(ctx)) report.findings.push_back(std::move(f));
  for (auto& f : run_interface_width(ctx, &report.ecall_surface)) {
    report.findings.push_back(std::move(f));
  }
  for (auto& f : run_sensitive_egress(ctx)) report.findings.push_back(std::move(f));
  sort_findings(report.findings);
  return report;
}

AuditReport audit_partition(const workloads::AppModel& model,
                            const partition::PartitionResult& partition,
                            const AuditOptions& options) {
  return audit_graph(model.graph, model.graph.id_of(model.entry), partition,
                     model.name, options);
}

}  // namespace sl::analysis
