// Shared JSON report envelope for the static-analysis tools.
//
// `securelease audit` (partition security, report.hpp) and `securelease
// lint` (determinism & thread-readiness, detlint/) emit the same outer
// document shape so downstream tooling parses both uniformly:
//
//   {
//     "schema_version": 1,
//     "tool": "<tool name>",
//     ... tool-specific fields ...
//     "findings": [ ... ],
//     "summary": { ... }
//   }
//
// parse_envelope() is the minimal structural reader the round-trip tests
// (and CI scripts) use: it extracts the version, the tool name, and the
// number of findings without depending on either tool's field layout.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace sl::analysis {

inline constexpr int kReportSchemaVersion = 1;

// JSON string escaping shared by both report writers.
std::string json_escape(const std::string& s);

// Opening of the envelope document: '{' plus the schema_version and tool
// fields, ready for the tool-specific body to follow.
std::string envelope_header(const std::string& tool);

struct EnvelopeInfo {
  int schema_version = 0;
  std::string tool;
  std::size_t finding_count = 0;
};

// Structural parse of an envelope document. Returns nullopt when the
// schema_version or tool field is missing or the findings array is absent
// or unbalanced. String contents are skipped correctly, so braces inside
// finding messages do not confuse the count.
std::optional<EnvelopeInfo> parse_envelope(const std::string& json);

}  // namespace sl::analysis
