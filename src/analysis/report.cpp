#include "analysis/report.hpp"

#include <map>
#include <sstream>
#include <unordered_map>

#include "analysis/envelope.hpp"

namespace sl::analysis {

namespace {

void json_string_array(std::ostringstream& os, const std::vector<std::string>& v) {
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ", ";
    os << '"' << json_escape(v[i]) << '"';
  }
  os << "]";
}

}  // namespace

std::string to_text(const AuditReport& report) {
  std::ostringstream os;
  os << "audit of " << report.app << " under " << report.scheme << " ("
     << report.migrated_count << "/" << report.function_count
     << " functions migrated, entry " << report.entry << ")\n";

  os << "ECALL surface: " << report.ecall_surface.size() << " entry point"
     << (report.ecall_surface.size() == 1 ? "" : "s") << "\n";
  for (const EcallEntry& e : report.ecall_surface) {
    os << "  " << e.function << "  ["
       << (e.guard ? "guard"
                   : (e.internally_guarded ? "internally guarded" : "UNGUARDED"))
       << "]  reaches " << e.reachable_enclave_functions
       << " enclave function" << (e.reachable_enclave_functions == 1 ? "" : "s");
    if (!e.untrusted_callers.empty()) {
      os << "  callers:";
      for (const std::string& c : e.untrusted_callers) os << " " << c;
    }
    os << "\n";
  }

  if (report.clean()) {
    os << "findings: none — partition is CFB-clean under the audited model\n";
    return os.str();
  }

  os << "findings: " << report.findings.size() << " ("
     << report.confirmed_count() << " confirmed, worst severity "
     << severity_name(report.worst_severity()) << ")\n";
  for (const Finding& f : report.findings) {
    os << "  [" << severity_name(f.severity) << "/" << status_name(f.status)
       << "] " << check_name(f.check) << " @ " << f.function << "\n"
       << "      " << f.message << "\n";
  }
  return os.str();
}

std::string to_json(const AuditReport& report) {
  std::ostringstream os;
  os << envelope_header("securelease-audit");
  os << "  \"app\": \"" << json_escape(report.app) << "\",\n";
  os << "  \"scheme\": \"" << json_escape(report.scheme) << "\",\n";
  os << "  \"entry\": \"" << json_escape(report.entry) << "\",\n";
  os << "  \"functions\": " << report.function_count << ",\n";
  os << "  \"migrated\": " << report.migrated_count << ",\n";

  os << "  \"ecall_surface\": [";
  for (std::size_t i = 0; i < report.ecall_surface.size(); ++i) {
    const EcallEntry& e = report.ecall_surface[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"function\": \"" << json_escape(e.function) << "\", \"guard\": "
       << (e.guard ? "true" : "false") << ", \"internally_guarded\": "
       << (e.internally_guarded ? "true" : "false")
       << ", \"reachable_enclave_functions\": " << e.reachable_enclave_functions
       << ", \"untrusted_callers\": ";
    json_string_array(os, e.untrusted_callers);
    os << "}";
  }
  os << (report.ecall_surface.empty() ? "" : "\n  ") << "],\n";

  os << "  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\n";
    os << "      \"check\": \"" << check_name(f.check) << "\",\n";
    os << "      \"severity\": \"" << severity_name(f.severity) << "\",\n";
    os << "      \"status\": \"" << status_name(f.status) << "\",\n";
    os << "      \"function\": \"" << json_escape(f.function) << "\",\n";
    os << "      \"message\": \"" << json_escape(f.message) << "\",\n";
    os << "      \"evidence_path\": ";
    json_string_array(os, f.evidence_path);
    os << "\n    }";
  }
  os << (report.findings.empty() ? "" : "\n  ") << "],\n";

  os << "  \"summary\": {\"total\": " << report.findings.size()
     << ", \"confirmed\": " << report.confirmed_count()
     << ", \"critical\": " << report.count(Severity::kCritical)
     << ", \"high\": " << report.count(Severity::kHigh)
     << ", \"medium\": " << report.count(Severity::kMedium)
     << ", \"warning\": " << report.count(Severity::kWarning)
     << ", \"info\": " << report.count(Severity::kInfo)
     << ", \"clean\": " << (report.clean() ? "true" : "false") << "}\n";
  os << "}\n";
  return os.str();
}

std::string to_dot_overlay(const AuditReport& report,
                           const cfg::CallGraph& graph,
                           const partition::PartitionResult& partition) {
  // Worst severity per flagged function.
  std::unordered_map<std::string, Severity> flagged;
  for (const Finding& f : report.findings) {
    const auto it = flagged.find(f.function);
    if (it == flagged.end() ||
        static_cast<int>(f.severity) > static_cast<int>(it->second)) {
      flagged[f.function] = f.severity;
    }
  }
  // Evidence-path edges, drawn in red.
  std::map<std::pair<std::string, std::string>, bool> hot_edges;
  for (const Finding& f : report.findings) {
    for (std::size_t i = 1; i < f.evidence_path.size(); ++i) {
      hot_edges[{f.evidence_path[i - 1], f.evidence_path[i]}] = true;
    }
  }

  const auto severity_fill = [](Severity s) {
    switch (s) {
      case Severity::kCritical: return "#e31a1c";
      case Severity::kHigh: return "#ff7f00";
      case Severity::kMedium: return "#fdbf6f";
      case Severity::kWarning: return "#ffff99";
      case Severity::kInfo: return "#f0f0f0";
    }
    return "#ffffff";
  };

  std::ostringstream os;
  os << "digraph audit {\n";
  os << "  label=\"audit: " << report.app << " / " << report.scheme << " — "
     << report.findings.size() << " finding(s), "
     << report.confirmed_count() << " confirmed\";\n";
  os << "  node [shape=ellipse, style=filled];\n";
  for (cfg::NodeId n = 0; n < graph.node_count(); ++n) {
    const cfg::FunctionInfo& info = graph.node(n);
    const bool migrated = partition.migrated.contains(n);
    std::string fill = migrated ? "#deebf7" : "#ffffff";
    std::string extra;
    const auto hit = flagged.find(info.name);
    if (hit != flagged.end()) {
      fill = severity_fill(hit->second);
      if (hit->second == Severity::kCritical) extra += ", fontcolor=white";
    }
    if (migrated) extra += ", shape=box, penwidth=2";
    os << "  \"" << info.name << "\" [fillcolor=\"" << fill << "\"" << extra
       << ", sl_migrated=\"" << (migrated ? 1 : 0) << "\", sl_am=\""
       << (info.in_authentication_module ? 1 : 0) << "\", sl_key=\""
       << (info.is_key_function ? 1 : 0) << "\", sl_sensitive=\""
       << (info.touches_sensitive_data ? 1 : 0) << "\", sl_io=\""
       << (info.does_io ? 1 : 0) << "\"];\n";
  }
  for (const cfg::Edge& e : graph.edges()) {
    const std::string from = graph.node(e.from).name;
    const std::string to = graph.node(e.to).name;
    const bool hot = hot_edges.contains({from, to});
    os << "  \"" << from << "\" -> \"" << to << "\" [label=\"" << e.call_count
       << "\"" << (hot ? ", color=red, penwidth=2" : "") << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace sl::analysis
