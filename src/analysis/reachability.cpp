#include "analysis/reachability.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace sl::analysis {

namespace {

// Breadth-first search with a per-node admission predicate. Returns the
// predecessor map; `to` (if any) short-circuits the search.
template <typename Admit, typename Expand>
std::unordered_map<cfg::NodeId, cfg::NodeId> bfs(const cfg::CallGraph& graph,
                                                 cfg::NodeId from,
                                                 Admit admit, Expand expand) {
  std::unordered_map<cfg::NodeId, cfg::NodeId> parent;
  if (!admit(from)) return parent;
  parent.emplace(from, from);
  std::deque<cfg::NodeId> queue{from};
  while (!queue.empty()) {
    const cfg::NodeId at = queue.front();
    queue.pop_front();
    if (!expand(at)) continue;
    for (const cfg::Edge& e : graph.out_edges(at)) {
      if (parent.contains(e.to) || !admit(e.to)) continue;
      parent.emplace(e.to, at);
      queue.push_back(e.to);
    }
  }
  return parent;
}

std::vector<cfg::NodeId> unwind(
    const std::unordered_map<cfg::NodeId, cfg::NodeId>& parent,
    cfg::NodeId from, cfg::NodeId to) {
  std::vector<cfg::NodeId> path;
  if (!parent.contains(to)) return path;
  for (cfg::NodeId at = to;; at = parent.at(at)) {
    path.push_back(at);
    if (at == from) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

std::vector<cfg::NodeId> find_path_avoiding(const cfg::CallGraph& graph,
                                            cfg::NodeId from, cfg::NodeId to,
                                            const NodeSet& avoid) {
  const auto admit = [&](cfg::NodeId n) {
    return n == from || n == to || !avoid.contains(n);
  };
  const auto expand = [&](cfg::NodeId n) {
    // An avoided endpoint may start the path but never continue it.
    return n == from ? !avoid.contains(from) || from == to : n != to;
  };
  // `from` in the avoid set cannot be traversed through; it can still BE
  // the source, but then no edge may leave it — handled by expand above.
  if (avoid.contains(from) && from != to) return {};
  return unwind(bfs(graph, from, admit, expand), from, to);
}

NodeSet reachable_avoiding(const cfg::CallGraph& graph, cfg::NodeId from,
                           const NodeSet& avoid) {
  const auto admit = [&](cfg::NodeId n) { return !avoid.contains(n); };
  const auto expand = [](cfg::NodeId) { return true; };
  NodeSet out;
  for (const auto& [node, ignored] : bfs(graph, from, admit, expand)) {
    (void)ignored;
    out.insert(node);
  }
  return out;
}

NodeSet reachable_within(const cfg::CallGraph& graph, cfg::NodeId from,
                         const NodeSet& within, const NodeSet& stop) {
  const auto admit = [&](cfg::NodeId n) { return within.contains(n); };
  const auto expand = [&](cfg::NodeId n) {
    return n == from || !stop.contains(n);
  };
  NodeSet out;
  for (const auto& [node, ignored] : bfs(graph, from, admit, expand)) {
    (void)ignored;
    out.insert(node);
  }
  return out;
}

std::vector<cfg::NodeId> find_path_within(const cfg::CallGraph& graph,
                                          cfg::NodeId from, cfg::NodeId to,
                                          const NodeSet& within,
                                          const NodeSet& stop) {
  const auto admit = [&](cfg::NodeId n) { return within.contains(n); };
  const auto expand = [&](cfg::NodeId n) {
    if (n == to && n != from) return false;
    return n == from || !stop.contains(n);
  };
  return unwind(bfs(graph, from, admit, expand), from, to);
}

}  // namespace sl::analysis
