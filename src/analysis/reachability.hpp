// Reachability primitives for the partition auditor.
//
// All queries run over the directed call graph; "avoiding" a node set means
// paths may not pass THROUGH those nodes (a path may still end on one). The
// attacker model behind these helpers: control flow at untrusted functions
// is fully bendable, control flow inside the enclave has integrity.
#pragma once

#include <unordered_set>
#include <vector>

#include "cfg/graph.hpp"

namespace sl::analysis {

using NodeSet = std::unordered_set<cfg::NodeId>;

// Shortest path (by hop count) from `from` to `to` that never passes
// through a node of `avoid` (endpoints exempt). Empty when unreachable.
std::vector<cfg::NodeId> find_path_avoiding(const cfg::CallGraph& graph,
                                            cfg::NodeId from, cfg::NodeId to,
                                            const NodeSet& avoid);

// Every node reachable from `from` without passing through `avoid` nodes
// (nodes of `avoid` are themselves never entered). Includes `from` unless
// `from` is avoided.
NodeSet reachable_avoiding(const cfg::CallGraph& graph, cfg::NodeId from,
                           const NodeSet& avoid);

// Reachability restricted to a node subset: traversal only enters nodes of
// `within`, and stops at (does not expand) nodes of `stop` — though stopped
// nodes ARE recorded as reached. Used for in-enclave reachability where
// guard nodes terminate unauthorized exploration.
NodeSet reachable_within(const cfg::CallGraph& graph, cfg::NodeId from,
                         const NodeSet& within, const NodeSet& stop);

// Shortest path from `from` to `to` where every intermediate hop must be in
// `within` and must not be in `stop` (endpoints exempt from `stop`; both
// endpoints must be in `within`). Empty when unreachable.
std::vector<cfg::NodeId> find_path_within(const cfg::CallGraph& graph,
                                          cfg::NodeId from, cfg::NodeId to,
                                          const NodeSet& within,
                                          const NodeSet& stop);

}  // namespace sl::analysis
