// Application partitioners (paper Sections 3 and 4.2).
//
// Four schemes produce a PartitionResult from an AppModel:
//  * SecureLeasePartitioner — the paper's contribution: K-means-style
//    clustering of the call graph, then greedy packing of the clusters that
//    contain developer-annotated key functions, smallest memory first,
//    subject to a memory threshold m_t and an overhead threshold r_t
//    (Section 4.2.1). The AM always migrates. Shared data structures stay
//    in untrusted memory.
//  * GlamdringPartitioner — the data-based baseline (Lind et al.):
//    information-flow closure over sensitive-data annotations; migrated
//    functions carry their data into the enclave.
//  * FlaasPartitioner — the code-based baseline (Kumar et al.): migrate
//    high-out-degree "orchestrator" functions.
//  * FullEnclavePartitioner — run the whole application inside SGX.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "cfg/cluster.hpp"
#include "workloads/app_model.hpp"

namespace sl::partition {

enum class Scheme : std::uint8_t { kVanilla, kFullSgx, kSecureLease, kGlamdring, kFlaas };

std::string scheme_name(Scheme scheme);

struct PartitionResult {
  Scheme scheme = Scheme::kVanilla;
  std::unordered_set<cfg::NodeId> migrated;
  // Whether migrated functions' shared data structures move into the EPC
  // (Glamdring / full-SGX) or stay untrusted (SecureLease, Section 4.2.1).
  bool data_in_enclave = false;

  // Enclave-resident bytes implied by the partition.
  std::uint64_t enclave_bytes(const workloads::AppModel& model) const;

  // Coverage metrics as reported in Table 5.
  std::uint64_t static_instructions(const workloads::AppModel& model) const;
  std::uint64_t dynamic_instructions(const workloads::AppModel& model) const;

  std::vector<std::string> migrated_names(const workloads::AppModel& model) const;
  bool contains(cfg::NodeId node) const { return migrated.contains(node); }
};

// --- SecureLease -----------------------------------------------------------

struct SecureLeaseOptions {
  std::uint64_t m_t = 92ull * 1024 * 1024;  // EPC-size memory threshold
  double r_t = 0.60;                        // acceptable overhead threshold
  // 0 = choose k by maximizing modularity over 2..max_k.
  std::uint32_t k = 0;
  std::uint32_t max_k = 12;
};

struct SecureLeasePartition {
  PartitionResult result;
  cfg::Clustering clustering;        // the clustering the packer consumed
  std::vector<std::uint32_t> packed; // cluster ids chosen for migration
};

SecureLeasePartition partition_securelease(const workloads::AppModel& model,
                                           const SecureLeaseOptions& options = {});

// --- Baselines ---------------------------------------------------------------

struct GlamdringOptions {
  // Propagate taint across call edges with at least this many calls;
  // 0 disables propagation (annotations already encode the dataflow
  // closure for the bundled workload models).
  std::uint64_t propagate_min_calls = 0;
};

PartitionResult partition_glamdring(const workloads::AppModel& model,
                                    const GlamdringOptions& options = {});

struct FlaasOptions {
  // Migrate the top fraction of functions by out-degree.
  double top_fraction = 0.2;
};

PartitionResult partition_flaas(const workloads::AppModel& model,
                                const FlaasOptions& options = {});

PartitionResult partition_full_enclave(const workloads::AppModel& model);

// Empty partition: nothing migrated (vanilla execution).
PartitionResult partition_vanilla(const workloads::AppModel& model);

}  // namespace sl::partition
