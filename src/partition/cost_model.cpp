#include "partition/cost_model.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "sgxsim/epc.hpp"

namespace sl::partition {

namespace {

std::uint64_t vanilla_cycles_of(const workloads::AppModel& model) {
  std::uint64_t total = 0;
  for (cfg::NodeId n : model.graph.all_nodes()) {
    const auto& info = model.graph.node(n);
    total += info.invocations * info.work_cycles;
  }
  return total;
}

// Per-function touch stream state for the epoch-interleaved EPC simulation.
struct TouchStream {
  std::uint64_t base_page = 0;
  std::uint64_t region_pages = 0;
  std::uint64_t touches_per_epoch = 0;
  std::uint64_t cursor = 0;  // sequential-access position
  bool random = false;
};

}  // namespace

double estimate_overhead(const workloads::AppModel& model,
                         const PartitionResult& partition,
                         const sgx::CostModel& costs) {
  const std::uint64_t vanilla = vanilla_cycles_of(model);
  if (vanilla == 0) return 0.0;

  std::uint64_t extra = 0;
  for (cfg::NodeId n : partition.migrated) {
    const auto& info = model.graph.node(n);
    extra += static_cast<std::uint64_t>(
        static_cast<double>(info.invocations * info.work_cycles) *
        costs.enclave_cycle_tax);
  }
  for (const cfg::Edge& e : model.graph.edges()) {
    const bool from_in = partition.contains(e.from);
    const bool to_in = partition.contains(e.to);
    if (!from_in && to_in) extra += e.call_count * costs.ecall_cycles;
    if (from_in && !to_in) extra += e.call_count * costs.ocall_cycles;
  }
  return static_cast<double>(extra) / static_cast<double>(vanilla);
}

RunStats simulate_run(const workloads::AppModel& model, const PartitionResult& partition,
                      const SimOptions& options) {
  RunStats stats;
  stats.workload = model.name;
  stats.scheme = partition.scheme;
  stats.vanilla_cycles = vanilla_cycles_of(model);
  stats.enclave_bytes = partition.enclave_bytes(model);
  stats.migrated_functions = partition.migrated.size();
  stats.static_coverage_instr = partition.static_instructions(model);
  stats.dynamic_coverage_instr = partition.dynamic_instructions(model);

  SimClock clock;

  // --- Work cycles (enclave tax on migrated functions). ---------------------
  for (cfg::NodeId n : model.graph.all_nodes()) {
    const auto& info = model.graph.node(n);
    const std::uint64_t work = info.invocations * info.work_cycles;
    if (partition.contains(n)) {
      clock.advance_cycles(static_cast<Cycles>(
          static_cast<double>(work) * (1.0 + options.costs.enclave_cycle_tax)));
    } else {
      clock.advance_cycles(work);
    }
  }

  // --- Boundary crossings. ----------------------------------------------------
  const std::uint64_t crossing_multiplier =
      partition.scheme == Scheme::kFlaas ? options.flaas_raw_call_multiplier : 1;
  for (const cfg::Edge& e : model.graph.edges()) {
    const bool from_in = partition.contains(e.from);
    const bool to_in = partition.contains(e.to);
    if (!from_in && to_in) stats.ecalls += e.call_count * crossing_multiplier;
    if (from_in && !to_in) stats.ocalls += e.call_count * crossing_multiplier;
  }
  // Migrated functions that perform syscalls must OCALL per invocation (the
  // OS is outside the TCB); SecureLease's packer never migrates them, the
  // baselines do.
  for (cfg::NodeId n : partition.migrated) {
    const auto& info = model.graph.node(n);
    if (info.does_io) stats.ocalls += info.invocations;
  }
  clock.advance_cycles(stats.ecalls * options.costs.ecall_cycles);
  clock.advance_cycles(stats.ocalls * options.costs.ocall_cycles);

  // --- EPC paging. ---------------------------------------------------------------
  if (!partition.migrated.empty()) {
    const std::uint64_t touch_multiplier =
        partition.scheme == Scheme::kFullSgx ? options.full_sgx_touch_multiplier : 1;
    // Auto-coarsen so the LRU simulation stays bounded.
    std::uint64_t planned_touches = 0;
    for (cfg::NodeId n : partition.migrated) {
      planned_touches += model.graph.node(n).page_touches * touch_multiplier;
    }
    std::uint32_t scale = std::max<std::uint32_t>(1, options.page_scale);
    while (planned_touches / scale > options.max_simulated_touches) scale *= 2;
    sgx::CostModel scaled = options.costs;
    scaled.page_size *= scale;
    scaled.epc_fault_cycles *= scale;
    scaled.page_crypt_cycles *= scale;

    sgx::EpcManager epc(scaled, clock);
    Rng rng(options.seed);

    std::vector<TouchStream> streams;
    std::uint64_t next_base = 0;
    for (cfg::NodeId n : partition.migrated) {
      const auto& info = model.graph.node(n);
      const std::uint64_t region_bytes =
          partition.data_in_enclave ? info.mem_bytes : info.enclave_state_bytes;
      const std::uint64_t region_pages =
          std::max<std::uint64_t>(1, region_bytes / scaled.page_size);

      TouchStream s;
      s.base_page = next_base;
      s.region_pages = region_pages;
      s.random = info.random_access;
      // Under the keep-data-untrusted policy the calibrated touch counts
      // target the big shared region; the small enclave state is instead
      // streamed once per epoch.
      std::uint64_t total_touches;
      if (partition.data_in_enclave) {
        total_touches = info.page_touches * touch_multiplier / scale;
      } else {
        total_touches = region_pages * options.epochs;
      }
      s.touches_per_epoch = std::max<std::uint64_t>(1, total_touches / options.epochs);
      next_base += region_pages + 1;  // +1 guard page keeps regions disjoint
      streams.push_back(s);
    }

    for (std::uint32_t epoch = 0; epoch < options.epochs; ++epoch) {
      for (TouchStream& s : streams) {
        for (std::uint64_t t = 0; t < s.touches_per_epoch; ++t) {
          std::uint64_t page;
          if (s.random) {
            page = s.base_page + rng.next_below(s.region_pages);
          } else {
            page = s.base_page + (s.cursor++ % s.region_pages);
          }
          epc.touch(/*enclave=*/1, page, 1);
        }
      }
    }

    stats.epc_faults = epc.stats().faults * scale;
    stats.epc_evictions = epc.stats().evictions * scale;
    stats.epc_loadbacks = epc.stats().loadbacks * scale;
  }

  stats.total_cycles = clock.cycles();
  return stats;
}

}  // namespace sl::partition
