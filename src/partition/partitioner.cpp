#include "partition/partitioner.hpp"

#include <algorithm>

#include "partition/cost_model.hpp"

namespace sl::partition {

std::string scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kVanilla: return "Vanilla";
    case Scheme::kFullSgx: return "FullSGX";
    case Scheme::kSecureLease: return "SecureLease";
    case Scheme::kGlamdring: return "Glamdring";
    case Scheme::kFlaas: return "F-LaaS";
  }
  return "?";
}

std::uint64_t PartitionResult::enclave_bytes(const workloads::AppModel& model) const {
  std::uint64_t total = 0;
  for (cfg::NodeId n : migrated) {
    const cfg::FunctionInfo& info = model.graph.node(n);
    total += data_in_enclave ? info.mem_bytes : info.enclave_state_bytes;
  }
  return total;
}

std::uint64_t PartitionResult::static_instructions(const workloads::AppModel& model) const {
  std::uint64_t total = 0;
  for (cfg::NodeId n : migrated) total += model.graph.node(n).code_instructions;
  return total;
}

std::uint64_t PartitionResult::dynamic_instructions(
    const workloads::AppModel& model) const {
  std::uint64_t total = 0;
  for (cfg::NodeId n : migrated) total += model.graph.node(n).dynamic_instructions();
  return total;
}

std::vector<std::string> PartitionResult::migrated_names(
    const workloads::AppModel& model) const {
  std::vector<std::string> names;
  names.reserve(migrated.size());
  for (cfg::NodeId n : migrated) names.push_back(model.graph.node(n).name);
  std::sort(names.begin(), names.end());
  return names;
}

// --- SecureLease -------------------------------------------------------------

namespace {

cfg::Clustering best_clustering(const cfg::CallGraph& graph,
                                const SecureLeaseOptions& options) {
  if (options.k != 0) {
    return cfg::cluster_call_graph(graph, {.k = options.k});
  }
  // Model selection: maximize modularity over a small k range. Ties go to
  // the smaller k (coarser clusters migrate less often by accident), but a
  // cluster must never span disconnected components — functions with no
  // call relationship share no submodule.
  cfg::Clustering best;
  double best_q = -2.0;
  const std::uint32_t lower = cfg::weak_component_count(graph);
  const std::uint32_t upper = std::max(
      lower, std::min<std::uint32_t>(options.max_k,
                                     static_cast<std::uint32_t>(graph.node_count())));
  for (std::uint32_t k = lower; k <= upper; ++k) {
    cfg::Clustering candidate = cfg::cluster_call_graph(graph, {.k = k});
    const double q = cfg::evaluate_clustering(graph, candidate).modularity;
    if (q > best_q + 1e-9) {
      best_q = q;
      best = std::move(candidate);
    }
  }
  if (best.assignment.empty()) best = cfg::cluster_call_graph(graph, {.k = 1});
  return best;
}

}  // namespace

SecureLeasePartition partition_securelease(const workloads::AppModel& model,
                                           const SecureLeaseOptions& options) {
  SecureLeasePartition out;
  out.result.scheme = Scheme::kSecureLease;
  out.result.data_in_enclave = false;

  // The authentication module always migrates.
  for (cfg::NodeId n : model.authentication_functions()) out.result.migrated.insert(n);

  // The clustering runs over the protected region only (the N nodes of
  // Section 4.2.1): the IP-bearing functions the developer wants defended.
  // Functions performing syscalls can never execute inside an enclave, so
  // they are excluded up front.
  std::vector<cfg::NodeId> region;
  for (cfg::NodeId n : model.graph.all_nodes()) {
    const auto& info = model.graph.node(n);
    if ((info.touches_sensitive_data || info.is_key_function) &&
        !info.does_io && !info.in_authentication_module) {
      region.push_back(n);
    }
  }
  if (region.empty()) return out;

  std::vector<cfg::NodeId> to_parent;
  const cfg::CallGraph subgraph = model.graph.induced_subgraph(region, to_parent);
  out.clustering = best_clustering(subgraph, options);
  const auto summaries = cfg::summarize_clusters(subgraph, out.clustering);

  // Candidate clusters: those containing developer-annotated key functions.
  std::vector<const cfg::ClusterSummary*> candidates;
  for (const auto& s : summaries) {
    if (s.contains_key_function) candidates.push_back(&s);
  }
  // Enclave-resident memory of a cluster under SecureLease's keep-data-
  // untrusted policy.
  const auto cluster_state_bytes = [&](const cfg::ClusterSummary& s) {
    std::uint64_t total = 0;
    for (cfg::NodeId n : s.members) {
      total += model.graph.node(to_parent[n]).enclave_state_bytes;
    }
    return total;
  };
  std::sort(candidates.begin(), candidates.end(),
            [&](const cfg::ClusterSummary* a, const cfg::ClusterSummary* b) {
              return cluster_state_bytes(*a) < cluster_state_bytes(*b);
            });

  std::uint64_t used = out.result.enclave_bytes(model);
  for (const cfg::ClusterSummary* cluster : candidates) {
    const std::uint64_t bytes = cluster_state_bytes(*cluster);
    if (used + bytes > options.m_t) continue;

    // Tentatively add the cluster, then check the overhead threshold r_t
    // with a cheap analytic estimate (no EPC simulation).
    PartitionResult tentative = out.result;
    for (cfg::NodeId n : cluster->members) tentative.migrated.insert(to_parent[n]);
    if (estimate_overhead(model, tentative) > options.r_t) continue;

    out.result.migrated = std::move(tentative.migrated);
    out.packed.push_back(cluster->cluster);
    used += bytes;
  }
  return out;
}

// --- Glamdring ----------------------------------------------------------------

PartitionResult partition_glamdring(const workloads::AppModel& model,
                                    const GlamdringOptions& options) {
  PartitionResult result;
  result.scheme = Scheme::kGlamdring;
  result.data_in_enclave = true;

  for (cfg::NodeId n : model.graph.all_nodes()) {
    if (model.graph.node(n).touches_sensitive_data) result.migrated.insert(n);
  }

  if (options.propagate_min_calls > 0) {
    // Fixpoint taint propagation: a function exchanging at least
    // `propagate_min_calls` calls with a tainted function becomes tainted
    // (a call that hot implies the sensitive data flows across it).
    bool changed = true;
    while (changed) {
      changed = false;
      for (const cfg::Edge& e : model.graph.edges()) {
        if (e.call_count < options.propagate_min_calls) continue;
        const bool from_in = result.migrated.contains(e.from);
        const bool to_in = result.migrated.contains(e.to);
        if (from_in != to_in) {
          result.migrated.insert(from_in ? e.to : e.from);
          changed = true;
        }
      }
    }
  }
  return result;
}

// --- F-LaaS -----------------------------------------------------------------

PartitionResult partition_flaas(const workloads::AppModel& model,
                                const FlaasOptions& options) {
  PartitionResult result;
  result.scheme = Scheme::kFlaas;
  result.data_in_enclave = false;

  // "Out-degree" per Kumar et al.: the number of calls a function makes —
  // orchestrators of complicated logic make many.
  const auto outgoing_calls = [&](cfg::NodeId n) {
    std::uint64_t total = 0;
    for (const cfg::Edge& e : model.graph.out_edges(n)) total += e.call_count;
    return total;
  };
  std::vector<cfg::NodeId> nodes = model.graph.all_nodes();
  std::sort(nodes.begin(), nodes.end(), [&](cfg::NodeId a, cfg::NodeId b) {
    return outgoing_calls(a) > outgoing_calls(b);
  });
  const std::size_t take = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(nodes.size()) *
                                  options.top_fraction));
  for (std::size_t i = 0; i < take && i < nodes.size(); ++i) {
    result.migrated.insert(nodes[i]);
  }
  // The license manager must be inside regardless.
  for (cfg::NodeId n : model.authentication_functions()) result.migrated.insert(n);
  return result;
}

PartitionResult partition_full_enclave(const workloads::AppModel& model) {
  PartitionResult result;
  result.scheme = Scheme::kFullSgx;
  result.data_in_enclave = true;
  for (cfg::NodeId n : model.graph.all_nodes()) result.migrated.insert(n);
  return result;
}

PartitionResult partition_vanilla(const workloads::AppModel& model) {
  (void)model;
  PartitionResult result;
  result.scheme = Scheme::kVanilla;
  return result;
}

}  // namespace sl::partition
