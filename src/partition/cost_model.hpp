// Execution cost simulation for partitioned applications.
//
// Given an AppModel and a PartitionResult, the simulator reproduces the
// cost structure the paper measures on real SGX hardware:
//  * work cycles — per-function invocations x work, with the in-enclave
//    execution tax applied to migrated functions;
//  * boundary crossings — every call edge that crosses the partition is an
//    ECALL (in) or OCALL (out), charged at the HotCalls-calibrated costs;
//  * EPC paging — migrated functions' resident regions are touched epoch by
//    epoch against an LRU-managed EPC of the configured size; faults,
//    evictions and load-backs are counted and charged.
// Everything runs on a virtual clock: results are deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "partition/partitioner.hpp"
#include "sgxsim/costs.hpp"

namespace sl::partition {

struct SimOptions {
  sgx::CostModel costs = sgx::default_cost_model();
  // Page-touch sequences are simulated at this granularity multiplier:
  // page_size and per-fault costs scale up by `page_scale`, touch counts
  // scale down, and reported counts scale back — total charged cycles are
  // preserved while the LRU simulation runs page_scale x faster. 1 = exact.
  std::uint32_t page_scale = 16;
  // Number of interleaving rounds the functions' touch streams are split
  // into (models time-sharing of the EPC between phases).
  std::uint32_t epochs = 32;
  std::uint64_t seed = 1234;
  // Full-application-in-SGX amplification: the calibrated page-touch
  // streams describe the hot partitioned regions; when the WHOLE binary
  // (code, stacks, allocator metadata, auxiliary structures) executes
  // inside the enclave every memory access pressures the EPC, which we
  // approximate by multiplying the touch streams. Calibrated so HashJoin
  // lands in the paper's ">300x" regime (Section 2.3.2).
  std::uint32_t full_sgx_touch_multiplier = 40;
  // The LRU simulation auto-coarsens its page granularity to keep the
  // number of simulated touches under this bound.
  std::uint64_t max_simulated_touches = 4'000'000;
  // The models' call-edge counts are batch-granular: SecureLease co-designs
  // the partition boundary with the application so crossings happen at
  // batched call sites. A partitioner that ignores crossing costs (the
  // F-LaaS out-degree scheme) cuts through raw call sites instead; its
  // boundary crossings are amplified by this factor (our models batch
  // roughly two orders of magnitude of raw calls per edge count).
  std::uint64_t flaas_raw_call_multiplier = 100;
};

struct RunStats {
  std::string workload;
  Scheme scheme = Scheme::kVanilla;

  std::uint64_t vanilla_cycles = 0;
  std::uint64_t total_cycles = 0;

  std::uint64_t ecalls = 0;
  std::uint64_t ocalls = 0;
  std::uint64_t epc_faults = 0;
  std::uint64_t epc_evictions = 0;
  std::uint64_t epc_loadbacks = 0;

  std::uint64_t enclave_bytes = 0;
  std::uint64_t migrated_functions = 0;
  std::uint64_t static_coverage_instr = 0;
  std::uint64_t dynamic_coverage_instr = 0;

  // Cycles attributable to license/lease activity (filled by the core
  // layer for the Figure 9 end-to-end runs; zero for partition-only runs).
  std::uint64_t lease_local_cycles = 0;
  std::uint64_t lease_renewal_cycles = 0;
  std::uint64_t remote_attestations = 0;
  std::uint64_t local_attestations = 0;

  double overhead() const {
    if (vanilla_cycles == 0) return 0.0;
    return static_cast<double>(total_cycles) / static_cast<double>(vanilla_cycles) - 1.0;
  }
  double slowdown() const { return 1.0 + overhead(); }
};

// Simulates one full run of `model` under `partition`.
RunStats simulate_run(const workloads::AppModel& model, const PartitionResult& partition,
                      const SimOptions& options = {});

// Cheap analytic overhead estimate (tax + boundary crossings; no EPC
// simulation). Used by the SecureLease packer's r_t check.
double estimate_overhead(const workloads::AppModel& model,
                         const PartitionResult& partition,
                         const sgx::CostModel& costs = sgx::default_cost_model());

}  // namespace sl::partition
