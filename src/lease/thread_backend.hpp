// Thread-per-shard execution backend (ROADMAP item 1, docs/THREADING.md).
//
// Each RemoteShard gets a dedicated OS thread (its *worker*) and a bounded
// lock-free MPSC submission ring. Execution is *phase-locked*: workers park
// between drains, so the calling thread may freely provision licenses, read
// ledgers or take digests between phases; drain_all() opens one epoch on
// every lane at once — each worker pops its ring in FIFO order, feeds the
// requests through RemoteShard::enqueue()/drain() exactly as the
// deterministic backend would, and buffers the completions — then the
// caller joins the epoch barrier and collects completions in ascending
// shard order.
//
// Because a shard worker executes the same call sequence on the same
// per-shard state as DeterministicScheduler (just on another core), every
// deterministic artifact — per-lease ledgers, state digests, virtual
// clocks, batch groups, journal contents — is bit-identical between the
// backends for the same phased workload. That equivalence is the spine of
// tests/lease/test_backend_differential.cpp and the digest gate in
// bench_remote_load. What the thread backend does NOT support: mid-run
// crash()/recover() events (the DST keeps those on the deterministic
// backend) and submissions concurrent with an open epoch.
//
// Thread-safety map:
//  * submit() is safe from many producer threads between epochs: it touches
//    only the lane's atomic occupancy counter, the MPSC ring and the
//    immutable client registry;
//  * all RemoteShard state is worker-owned during an epoch; the epoch
//    mutex/condvar handshake gives the caller acquire/release visibility of
//    everything the worker wrote (and vice versa);
//  * the obs registry and trace recorder are internally synchronized, so
//    concurrent per-shard instrumentation is safe (span *order* across
//    shards is scheduling-dependent — trace fingerprints are only
//    meaningful on the deterministic backend).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/scheduler.hpp"
#include "lease/mpsc_queue.hpp"
#include "lease/shard_router.hpp"
#include "obs/metrics.hpp"

namespace sl::lease {

class ThreadScheduler final : public core::Scheduler {
 public:
  // Rings are sized to the router's shard queue capacity, so the
  // backpressure threshold is exactly the deterministic backend's.
  explicit ThreadScheduler(ShardRouter& router);
  ~ThreadScheduler() override;

  core::Backend backend() const override { return core::Backend::kThreads; }

  void register_client(ShardRouter::CustomerId customer,
                       ShardRouter::ClientId client, double health,
                       double network) override;

  bool submit(ShardRouter::CustomerId customer, ShardRouter::ClientId client,
              const LicenseFile& license, std::uint64_t consumed,
              std::uint64_t ticket) override;

  std::vector<ShardRouter::Completion> drain_all() override;

  SlRemote::RenewResult renew_now(std::size_t shard, Slid slid,
                                  const LicenseFile& license, double health,
                                  double network, std::uint64_t consumed,
                                  std::uint64_t request_id = 0) override;

  double wall_seconds() const override { return wall_seconds_; }

  core::SchedulerStats scheduler_stats() const override;

 private:
  enum class MsgKind : std::uint8_t {
    kRenew = 0,     // router-level submission; SLID minted by the worker
    kRenewNow = 1,  // gateway-path batch-of-one with an explicit SLID
  };

  struct Msg {
    MsgKind kind = MsgKind::kRenew;
    std::uint64_t ticket = 0;
    ShardRouter::CustomerId customer = 0;
    ShardRouter::ClientId client = 0;
    Slid slid = 0;
    LicenseFile license;
    double health = 1.0;
    double network = 1.0;
    std::uint64_t consumed = 0;
    std::uint64_t request_id = 0;
  };

  // One shard's worker-side state. Everything below `m` is written by the
  // worker during an epoch and read by the caller only after the epoch
  // barrier (release on `completed`, acquire on the wait).
  struct Lane {
    explicit Lane(std::size_t ring_capacity) : ring(ring_capacity) {}

    MpscQueue<Msg> ring;
    // Logical occupancy for an exact capacity bound (the physical ring is
    // rounded up to a power of two and holds headroom for renew_now).
    std::atomic<std::uint64_t> inflight{0};

    std::mutex m;
    std::condition_variable wake;  // caller -> worker: epoch opened / stop
    std::condition_variable done;  // worker -> caller: epoch complete
    std::uint64_t epoch = 0;
    std::uint64_t completed = 0;
    bool stop = false;

    std::vector<ShardRouter::Completion> completions;
    SlRemote::RenewResult renew_result;

    // Worker-owned lazy SLID mint, first-use order (matches the
    // deterministic router's slid_for).
    std::map<std::pair<ShardRouter::CustomerId, ShardRouter::ClientId>, Slid>
        slids;

    // Last member: joins (via jthread) before the fields above are torn
    // down. Started by the ThreadScheduler constructor.
    std::jthread worker;
  };

  void worker_loop(std::size_t shard);
  void run_epoch(std::size_t shard, Lane& lane);
  void open_epoch(Lane& lane);
  void await_epoch(Lane& lane);

  struct ClientInfo {
    double health = 1.0;
    double network = 1.0;
  };

  std::size_t capacity_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  // Immutable while requests are in flight: registration happens before the
  // first submit (the Scheduler contract), so producer reads need no lock.
  std::map<std::pair<ShardRouter::CustomerId, ShardRouter::ClientId>,
           ClientInfo>
      clients_;
  std::atomic<std::uint64_t> ring_rejections_{0};
  std::atomic<std::uint64_t> down_rejections_{0};
  double wall_seconds_ = 0.0;  // caller-thread only
  // Per-shard handles onto the same registry series RemoteShard increments,
  // so registry totals match the deterministic backend's.
  std::vector<obs::Counter*> obs_backpressure_;
  std::vector<obs::Counter*> obs_down_;
};

}  // namespace sl::lease
