// Protected code loader flow (paper Section 2.3.1).
//
// The vendor ships the application with its key functions ENCRYPTED in the
// binary. At run time the enclave proves itself to a trusted key server
// (remote attestation), presents the user's license, and — only if both
// check out — receives the section key, which the hardware uses to decrypt
// the code inside the enclave. The paper's observation: this alone cannot
// implement a lease (decryption is one-time), which is why the decrypted
// code still embeds SL-Manager lease checks; this module provides the
// provisioning half of that story.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "lease/license.hpp"
#include "sgxsim/attestation.hpp"

namespace sl::lease {

struct PclStats {
  std::uint64_t provision_requests = 0;
  std::uint64_t keys_released = 0;
  std::uint64_t denials = 0;
};

// The vendor's key-provisioning service (runs alongside SL-Remote on
// trusted infrastructure).
class KeyProvisioningService {
 public:
  KeyProvisioningService(const LicenseAuthority& authority,
                         sgx::AttestationService& ias,
                         double ra_latency_seconds = 3.5);

  // Vendor side: registers the key protecting `section` of the application
  // whose enclave has `measurement`; releasing it requires a valid license
  // for `lease`.
  void register_section(const std::string& section, sgx::Measurement measurement,
                        LeaseId lease, std::uint64_t key);

  struct KeyResponse {
    bool ok = false;
    std::uint64_t key = 0;
  };
  // Client side: the enclave's quote + the user's license file. Charges the
  // remote-attestation latency to `clock`. This is a one-time activity per
  // enclave launch (Section 2.3.1).
  KeyResponse request_key(const std::string& section, const sgx::Quote& quote,
                          const LicenseFile& license, SimClock& clock);

  const PclStats& stats() const { return stats_; }

 private:
  struct SectionRecord {
    sgx::Measurement measurement{};
    LeaseId lease = 0;
    std::uint64_t key = 0;
  };

  const LicenseAuthority& authority_;
  sgx::AttestationService& ias_;
  double ra_latency_seconds_;
  std::unordered_map<std::string, SectionRecord> sections_;
  PclStats stats_;
};

// Convenience driver: runs the full load sequence for one enclave —
// request the key, provision it into the enclave, return whether the
// section is now executable.
bool load_protected_section(sgx::SgxRuntime& runtime, sgx::Platform& platform,
                            KeyProvisioningService& service,
                            sgx::EnclaveId enclave, const std::string& section,
                            const LicenseFile& license);

}  // namespace sl::lease
