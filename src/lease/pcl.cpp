#include "lease/pcl.hpp"

#include "common/log.hpp"

namespace sl::lease {

KeyProvisioningService::KeyProvisioningService(const LicenseAuthority& authority,
                                               sgx::AttestationService& ias,
                                               double ra_latency_seconds)
    : authority_(authority), ias_(ias), ra_latency_seconds_(ra_latency_seconds) {}

void KeyProvisioningService::register_section(const std::string& section,
                                              sgx::Measurement measurement,
                                              LeaseId lease, std::uint64_t key) {
  sections_[section] = SectionRecord{measurement, lease, key};
}

KeyProvisioningService::KeyResponse KeyProvisioningService::request_key(
    const std::string& section, const sgx::Quote& quote, const LicenseFile& license,
    SimClock& clock) {
  stats_.provision_requests++;
  KeyResponse response;

  auto it = sections_.find(section);
  if (it == sections_.end()) {
    stats_.denials++;
    return response;
  }
  // Step 1: prove the requester is the genuine enclave on a trusted
  // platform (the "complicated chain of events" of Section 2.3.1).
  if (!ias_.verify_quote(quote, it->second.measurement, clock, ra_latency_seconds_)) {
    stats_.denials++;
    log_error("PCL: remote attestation failed for section ", section);
    return response;
  }
  // Step 2: the user must hold a valid license for the section's lease.
  if (!authority_.validate(license) || license.lease_id != it->second.lease) {
    stats_.denials++;
    log_error("PCL: license rejected for section ", section);
    return response;
  }
  response.ok = true;
  response.key = it->second.key;
  stats_.keys_released++;
  return response;
}

bool load_protected_section(sgx::SgxRuntime& runtime, sgx::Platform& platform,
                            KeyProvisioningService& service,
                            sgx::EnclaveId enclave, const std::string& section,
                            const LicenseFile& license) {
  const Bytes challenge = to_bytes("pcl:" + section);
  const sgx::Quote quote = platform.create_quote(enclave, challenge);
  const auto response =
      service.request_key(section, quote, license, runtime.clock());
  if (!response.ok) return false;
  // The key travels encrypted and is extracted by hardware inside the
  // enclave; the simulator models the outcome: the section decrypts only
  // under the right key.
  return runtime.enclave(enclave).provision_key(section, response.key);
}

}  // namespace sl::lease
