#include "lease/lease_tree.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "crypto/sealed.hpp"
#include "crypto/sha256.hpp"

namespace sl::lease {

// --- LeaseRecord -------------------------------------------------------------

Gcl LeaseRecord::gcl() const {
  auto parsed = Gcl::deserialize(ByteView(data.data(), Gcl::kSerializedSize));
  ensure(parsed.has_value(), "LeaseRecord: corrupt GCL payload");
  return *parsed;
}

void LeaseRecord::set_gcl(const Gcl& gcl) {
  static_assert(Gcl::kSerializedSize <= kLeaseDataBytes,
                "LeaseRecord: GCL too large");
  gcl.serialize_to(data.data());
  recompute_hash();
}

void LeaseRecord::recompute_hash() {
  hash = crypto::sha256_64(ByteView(data.data(), data.size()));
}

bool LeaseRecord::hash_valid() const {
  return hash == crypto::sha256_64(ByteView(data.data(), data.size()));
}

void LeaseRecord::spin_lock() {
  std::uint32_t expected = 0;
  while (!lock.compare_exchange_weak(expected, 1, std::memory_order_acquire)) {
    expected = 0;
  }
}

void LeaseRecord::spin_unlock() { lock.store(0, std::memory_order_release); }

// --- UntrustedStore -----------------------------------------------------------

std::uint64_t UntrustedStore::put(Bytes ciphertext) {
  const std::uint64_t handle = next_handle_++;
  total_bytes_ += ciphertext.size();
  blobs_.emplace(handle, std::move(ciphertext));
  return handle;
}

void UntrustedStore::overwrite(std::uint64_t handle, Bytes ciphertext) {
  Bytes& slot = blobs_[handle];
  total_bytes_ -= slot.size();
  total_bytes_ += ciphertext.size();
  slot = std::move(ciphertext);
}

void UntrustedStore::update(std::uint64_t handle, ByteView ciphertext) {
  auto it = blobs_.find(handle);
  ensure(it != blobs_.end(), "UntrustedStore::update: unknown handle");
  total_bytes_ -= it->second.size();
  total_bytes_ += ciphertext.size();
  it->second.assign(ciphertext.begin(), ciphertext.end());
}

std::optional<Bytes> UntrustedStore::get(std::uint64_t handle) const {
  auto it = blobs_.find(handle);
  if (it == blobs_.end()) return std::nullopt;
  return it->second;
}

void UntrustedStore::erase(std::uint64_t handle) {
  auto it = blobs_.find(handle);
  if (it == blobs_.end()) return;
  total_bytes_ -= it->second.size();
  blobs_.erase(it);
}

std::vector<std::uint64_t> UntrustedStore::handles() const {
  std::vector<std::uint64_t> out;
  out.reserve(blobs_.size());
  for (const auto& [handle, blob] : blobs_) out.push_back(handle);
  std::sort(out.begin(), out.end());
  return out;
}

// --- LeaseTree -----------------------------------------------------------------

LeaseTree::LeaseTree(std::uint64_t keygen_seed, UntrustedStore& store,
                     TreeArenas* arenas)
    : keygen_(keygen_seed), store_(store), arenas_(arenas) {
  root_ = alloc_node();
  obs_commits_ = obs::get_counter("sl_lease_tree_commits_total",
                                  "Tree entries sealed to the untrusted store");
  obs_restores_ = obs::get_counter(
      "sl_lease_tree_restores_total",
      "Committed tree entries validated and faulted back in");
  obs_offloads_ = obs::get_counter(
      "sl_lease_tree_offloads_total",
      "Subtrees evicted by the resident-budget enforcer");
  obs_validation_failures_ = obs::get_counter(
      "sl_lease_tree_validation_failures_total",
      "Tree entries that failed decrypt-and-validate");
}

LeaseTree::~LeaseTree() {
  if (root_ != nullptr) {
    free_subtree(root_, 0);
    free_node(root_);
    root_ = nullptr;
  }
}

std::unique_ptr<TreeArenas> LeaseTree::make_arenas() {
  return std::make_unique<TreeArenas>(sizeof(Node), alignof(Node),
                                      sizeof(LeaseRecord),
                                      alignof(LeaseRecord));
}

std::size_t LeaseTree::index_at(LeaseId id, int level) {
  return (id >> (24 - 8 * level)) & 0xff;
}

LeaseTree::Node* LeaseTree::alloc_node() {
  if (arenas_ != nullptr) return arena_new<Node>(arenas_->nodes);
  return new Node();
}

void LeaseTree::free_node(Node* node) {
  if (node == nullptr) return;
  if (arenas_ != nullptr) {
    arenas_->nodes.deallocate(node);
  } else {
    delete node;
  }
}

LeaseRecord* LeaseTree::alloc_leaf() {
  if (arenas_ != nullptr) return arena_new<LeaseRecord>(arenas_->leaves);
  return new LeaseRecord();
}

void LeaseTree::free_leaf(LeaseRecord* leaf) {
  if (leaf == nullptr) return;
  if (arenas_ != nullptr) {
    arenas_->leaves.deallocate(leaf);
  } else {
    delete leaf;
  }
}

void LeaseTree::free_subtree(Node* node, int level) {
  for (Entry& entry : node->entries) {
    if (entry.child != nullptr) {
      free_subtree(entry.child, level + 1);
      free_node(entry.child);
      entry.child = nullptr;
    }
    free_leaf(entry.leaf);
    entry.leaf = nullptr;
  }
}

LeaseTree::Node* LeaseTree::descend(LeaseId id, bool create, int levels) {
  Node* node = root_;
  node->last_access = ++access_tick_;
  for (int level = 0; level < levels; ++level) {
    Entry& entry = node->entries[index_at(id, level)];
    if (entry.committed && !restore_entry(entry, level + 1)) return nullptr;
    if (entry.child == nullptr) {
      if (!create) return nullptr;
      entry.child = alloc_node();
      node->live_entries++;
    }
    node = entry.child;
    node->last_access = access_tick_;
  }
  return node;
}

void LeaseTree::insert(LeaseId id, const Gcl& gcl) {
  Node* parent = descend(id, /*create=*/true, kTreeLevels - 1);
  ensure(parent != nullptr, "LeaseTree::insert: descend failed");
  Entry& entry = parent->entries[index_at(id, kTreeLevels - 1)];
  if (entry.leaf == nullptr && entry.committed &&
      !restore_entry(entry, kTreeLevels)) {
    // Unrecoverable leaf (tampered while offloaded); replace it outright.
    entry.committed = false;
    entry.handle = 0;
  }
  if (entry.leaf == nullptr) {
    entry.leaf = alloc_leaf();
    parent->live_entries++;
    lease_count_++;
  }
  entry.leaf->set_gcl(gcl);
  if (cache_commits_) mark_dirty(id);
  stats_.inserts++;
  enforce_budget();
}

LeaseRecord* LeaseTree::find(LeaseId id) {
  stats_.finds++;
  Node* parent = descend(id, /*create=*/false, kTreeLevels - 1);
  if (parent == nullptr) return nullptr;
  Entry& entry = parent->entries[index_at(id, kTreeLevels - 1)];
  // Cache-mode fast path: a committed leaf may still be resident.
  if (entry.leaf == nullptr) {
    if (!entry.committed || !restore_entry(entry, kTreeLevels)) return nullptr;
  }
  stats_.hits++;
  // NOTE: the budget is deliberately NOT enforced here — the caller holds a
  // raw pointer into the leaf until it releases the lock, so eviction only
  // happens on insert boundaries.
  return entry.leaf;
}

bool LeaseTree::erase(LeaseId id) {
  Node* parent = descend(id, /*create=*/false, kTreeLevels - 1);
  if (parent == nullptr) return false;
  Entry& entry = parent->entries[index_at(id, kTreeLevels - 1)];
  // Cache mode: the entry may be committed AND resident; drop both halves.
  bool removed = false;
  if (entry.committed) {
    store_.erase(entry.handle);
    entry.committed = false;
    entry.handle = 0;
    entry.key = 0;
    removed = true;
  }
  if (entry.leaf != nullptr) {
    free_leaf(entry.leaf);
    entry.leaf = nullptr;
    lease_count_--;
    removed = true;
  }
  if (removed) {
    entry.dirty = false;
    parent->live_entries--;
  }
  return removed;
}

void LeaseTree::mark_dirty(LeaseId id) {
  Node* node = root_;
  for (int level = 0; level < kTreeLevels - 1; ++level) {
    node->dirty = true;
    Entry& entry = node->entries[index_at(id, level)];
    if (entry.child == nullptr) return;
    node = entry.child;
  }
  node->dirty = true;
  node->entries[index_at(id, kTreeLevels - 1)].dirty = true;
}

Bytes LeaseTree::serialize_leaf(const LeaseRecord& leaf) const {
  Bytes out;
  serialize_leaf_into(leaf, out);
  return out;
}

void LeaseTree::serialize_leaf_into(const LeaseRecord& leaf, Bytes& out) const {
  out.clear();
  out.reserve(8 + leaf.data.size());
  put_u64(out, leaf.hash);
  out.insert(out.end(), leaf.data.begin(), leaf.data.end());
}

Bytes LeaseTree::serialize_node(const Node& node) const {
  // Committed-node image: every non-empty entry must itself be committed,
  // so entries serialize as (index, key, handle) triples.
  Bytes out;
  std::uint32_t count = 0;
  for (const Entry& entry : node.entries) {
    if (!entry.empty()) count++;
  }
  put_u32(out, count);
  for (std::size_t i = 0; i < node.entries.size(); ++i) {
    const Entry& entry = node.entries[i];
    if (entry.empty()) continue;
    ensure(entry.committed, "serialize_node: child not committed");
    put_u32(out, static_cast<std::uint32_t>(i));
    put_u64(out, entry.key);
    put_u64(out, entry.handle);
  }
  return out;
}

bool LeaseTree::deserialize_node(ByteView data, Node& node) {
  if (data.size() < 4) return false;
  const std::uint32_t count = get_u32(data, 0);
  if (data.size() < 4 + static_cast<std::size_t>(count) * 20) return false;
  std::size_t off = 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t index = get_u32(data, off);
    if (index >= kTreeFanout) return false;
    Entry& entry = node.entries[index];
    entry.key = get_u64(data, off + 4);
    entry.handle = get_u64(data, off + 12);
    entry.committed = true;
    node.live_entries++;
    off += 20;
  }
  return true;
}

bool LeaseTree::restore_entry(Entry& entry, int level) {
  ensure(entry.committed, "restore_entry: entry not committed");
  const auto ciphertext = store_.get(entry.handle);
  if (!ciphertext.has_value()) {
    stats_.validation_failures++;
    obs::inc(obs_validation_failures_);
    return false;
  }
  const auto plaintext = crypto::validate(*ciphertext, entry.key);
  if (!plaintext.has_value()) {
    stats_.validation_failures++;
    obs::inc(obs_validation_failures_);
    return false;
  }

  if (level == kTreeLevels) {
    // Leaf: 8-byte hash + 300-byte data.
    if (plaintext->size() != 8 + kLeaseDataBytes) {
      stats_.validation_failures++;
      obs::inc(obs_validation_failures_);
      return false;
    }
    LeaseRecord* leaf = alloc_leaf();
    leaf->hash = get_u64(*plaintext, 0);
    std::copy(plaintext->begin() + 8, plaintext->end(), leaf->data.begin());
    if (!leaf->hash_valid()) {
      free_leaf(leaf);
      stats_.validation_failures++;
      obs::inc(obs_validation_failures_);
      return false;
    }
    entry.leaf = leaf;
    lease_count_++;
  } else {
    Node* node = alloc_node();
    if (!deserialize_node(*plaintext, *node)) {
      free_node(node);
      stats_.validation_failures++;
      obs::inc(obs_validation_failures_);
      return false;
    }
    entry.child = node;
  }
  store_.erase(entry.handle);
  entry.committed = false;
  entry.handle = 0;
  entry.key = 0;
  stats_.restores++;
  obs::inc(obs_restores_);
  return true;
}

void LeaseTree::commit_entry(Entry& entry, int level, bool evict) {
  if (entry.empty()) return;

  if (cache_commits_ && level == kTreeLevels && entry.leaf != nullptr) {
    if (entry.committed && !entry.dirty) {
      // Write-through cache hit: the store image is already current, so a
      // commit is free unless the caller wants the EPC copy gone.
      if (evict) {
        free_leaf(entry.leaf);
        entry.leaf = nullptr;
        lease_count_--;
      } else {
        stats_.clean_skips++;
      }
      return;
    }
    // Dirty (or never sealed): re-seal under a fresh key. The scratch
    // buffers and the update-in-place store slot make the steady-state
    // re-seal allocation-free.
    entry.leaf->spin_lock();
    serialize_leaf_into(*entry.leaf, leaf_scratch_);
    entry.leaf->spin_unlock();
    entry.key = crypto::protect_into(leaf_scratch_, keygen_, seal_scratch_);
    if (entry.committed) {
      store_.update(entry.handle, seal_scratch_);
    } else {
      entry.handle = store_.put(Bytes(seal_scratch_.begin(), seal_scratch_.end()));
      entry.committed = true;
    }
    entry.dirty = false;
    if (evict) {
      free_leaf(entry.leaf);
      entry.leaf = nullptr;
      lease_count_--;
    }
    stats_.commits++;
    obs::inc(obs_commits_);
    return;
  }

  if (entry.committed) return;

  Bytes plaintext;
  if (level == kTreeLevels) {
    ensure(entry.leaf != nullptr, "commit_entry: no leaf");
    // Section 5.5: lock the lease before sealing it.
    entry.leaf->spin_lock();
    plaintext = serialize_leaf(*entry.leaf);
    entry.leaf->spin_unlock();
    free_leaf(entry.leaf);
    entry.leaf = nullptr;
    lease_count_--;
  } else {
    ensure(entry.child != nullptr, "commit_entry: no child");
    // Children must be committed first so their keys live in this node;
    // the node itself is freed, so its children always evict.
    for (std::size_t i = 0; i < kTreeFanout; ++i) {
      commit_entry(entry.child->entries[i], level + 1, /*evict=*/true);
    }
    plaintext = serialize_node(*entry.child);
    free_node(entry.child);
    entry.child = nullptr;
  }

  // Algorithm 2: fresh key every commit => replayed old images never
  // validate against the new parent key.
  crypto::SealedPayload sealed = crypto::protect(plaintext, keygen_);
  entry.key = sealed.key;
  entry.handle = store_.put(std::move(sealed.ciphertext));
  entry.committed = true;
  entry.dirty = false;
  stats_.commits++;
  obs::inc(obs_commits_);
}

bool LeaseTree::commit_lease(LeaseId id) {
  Node* parent = descend(id, /*create=*/false, kTreeLevels - 1);
  if (parent == nullptr) return false;
  Entry& entry = parent->entries[index_at(id, kTreeLevels - 1)];
  if (entry.leaf == nullptr) return entry.committed;
  commit_entry(entry, kTreeLevels, /*evict=*/!cache_commits_);
  return true;
}

void LeaseTree::commit_dirty(Entry& entry, int level) {
  if (level == kTreeLevels) {
    if (entry.leaf != nullptr && (entry.dirty || !entry.committed)) {
      commit_entry(entry, level, /*evict=*/false);
    }
    return;
  }
  if (entry.child == nullptr || !entry.child->dirty) return;
  for (Entry& e : entry.child->entries) commit_dirty(e, level + 1);
  entry.child->dirty = false;
}

void LeaseTree::commit_all_cold() {
  if (cache_commits_) {
    // Incremental commit: walk only dirty paths (node dirty bits
    // short-circuit clean subtrees) and keep residents in the EPC.
    if (!root_->dirty) return;
    for (Entry& entry : root_->entries) commit_dirty(entry, 1);
    root_->dirty = false;
    return;
  }
  // Commit every subtree hanging off the root; the root stays resident as
  // the in-EPC root of trust.
  for (Entry& entry : root_->entries) {
    commit_entry(entry, 1);
  }
}

std::uint64_t LeaseTree::shutdown() {
  // Shutdown always offloads: the root image requires every child sealed,
  // so cache-mode residents are evicted here regardless of dirtiness.
  for (Entry& entry : root_->entries) {
    commit_entry(entry, 1, /*evict=*/true);
  }
  const Bytes image = serialize_node(*root_);
  crypto::SealedPayload sealed = crypto::protect(image, keygen_);
  root_handle_ = store_.put(std::move(sealed.ciphertext));
  free_node(root_);
  root_ = alloc_node();  // EPC copy gone
  lease_count_ = 0;
  return sealed.key;
}

bool LeaseTree::restore(std::uint64_t root_key, std::uint64_t root_handle) {
  const auto ciphertext = store_.get(root_handle);
  if (!ciphertext.has_value()) return false;
  const auto plaintext = crypto::validate(*ciphertext, root_key);
  if (!plaintext.has_value()) {
    stats_.validation_failures++;
    obs::inc(obs_validation_failures_);
    return false;
  }
  Node* node = alloc_node();
  if (!deserialize_node(*plaintext, *node)) {
    free_node(node);
    stats_.validation_failures++;
    obs::inc(obs_validation_failures_);
    return false;
  }
  free_subtree(root_, 0);
  free_node(root_);
  root_ = node;
  store_.erase(root_handle);
  root_handle_ = 0;
  lease_count_ = 0;  // leaves fault back in on demand
  stats_.restores++;
  obs::inc(obs_restores_);
  return true;
}

void LeaseTree::set_resident_budget(std::uint64_t bytes) {
  resident_budget_ = bytes;
  enforce_budget();
}

void LeaseTree::collect_leaf_parents(Node* node, int level,
                                     std::vector<Entry*>& out_entries,
                                     std::vector<std::uint64_t>& out_access) {
  // Gathers the level-2 entries pointing at resident level-3 subtrees (a
  // level-3 node plus its leaves commits as one unit).
  for (Entry& entry : node->entries) {
    if (entry.child == nullptr) continue;
    if (level == kTreeLevels - 2) {
      out_entries.push_back(&entry);
      out_access.push_back(entry.child->last_access);
    } else {
      collect_leaf_parents(entry.child, level + 1, out_entries, out_access);
    }
  }
}

void LeaseTree::enforce_budget() {
  if (resident_budget_ == 0) return;
  if (resident_bytes() <= resident_budget_) return;

  std::vector<Entry*> entries;
  std::vector<std::uint64_t> access;
  collect_leaf_parents(root_, 0, entries, access);

  // Evict least-recently-used level-3 subtrees first.
  std::vector<std::size_t> order(entries.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return access[a] < access[b]; });

  for (std::size_t idx : order) {
    if (resident_bytes() <= resident_budget_) break;
    // Never evict the subtree that was touched most recently: the caller
    // may be about to use it.
    if (access[idx] == access_tick_) continue;
    commit_entry(*entries[idx], kTreeLevels - 1);
    obs::inc(obs_offloads_);
  }
}

std::uint64_t LeaseTree::count_resident(const Node* node, int level) const {
  std::uint64_t bytes = kNodeBytes;
  for (const Entry& entry : node->entries) {
    if (entry.child != nullptr) bytes += count_resident(entry.child, level + 1);
    if (entry.leaf != nullptr) bytes += kLeaseBytes;
  }
  return bytes;
}

std::uint64_t LeaseTree::resident_bytes() const {
  return count_resident(root_, 0);
}

void LeaseTree::enumerate_into(const Node* node, int level, LeaseId prefix,
                               std::vector<LeaseId>& out) const {
  UntrustedStore& store = store_;  // committed subtrees are walked via their
                                   // serialized images without restoring
  for (std::size_t i = 0; i < kTreeFanout; ++i) {
    const Entry& entry = node->entries[i];
    if (entry.empty()) continue;
    const LeaseId id = prefix | static_cast<LeaseId>(i)
                                    << (24 - 8 * level);
    if (level == kTreeLevels - 1) {
      if (entry.leaf != nullptr || entry.committed) out.push_back(id);
      continue;
    }
    if (entry.child != nullptr) {
      enumerate_into(entry.child, level + 1, id, out);
    } else if (entry.committed) {
      // Decrypt the committed image transiently (keys are in hand) to walk
      // it; the EPC copy is not reinstated.
      const auto ciphertext = store.get(entry.handle);
      if (!ciphertext.has_value()) continue;
      const auto plaintext = crypto::validate(*ciphertext, entry.key);
      if (!plaintext.has_value()) continue;
      Node shadow;
      if (deserialize_node(*plaintext, shadow)) {
        enumerate_into(&shadow, level + 1, id, out);
      }
    }
  }
}

std::vector<LeaseId> LeaseTree::enumerate() const {
  std::vector<LeaseId> ids;
  enumerate_into(root_, 0, 0, ids);
  return ids;
}

}  // namespace sl::lease
