// Closed-loop load generator for the sharded SL-Remote.
//
// M clients, split across a set of tenants (customers) each owning one
// count-based license, drive the shard router in rounds: every client
// submits one renewal per round, piggybacking the grant it received in the
// previous round as its consumption report, then the router drains every
// shard. The loop is closed — a client has at most one request in flight —
// so the offered load is bounded by the client count and an `Overloaded`
// rejection feeds back as a retry in the next round instead of unbounded
// queue growth.
//
// All timing is virtual (the per-shard SimClock cost model), so results are
// deterministic for a fixed seed. Throughput is total processed renewals
// divided by the *furthest* shard clock: N shards model N cores, so a
// balanced routing across more shards shortens the critical path.
#pragma once

#include <cstdint>
#include <string>

#include "core/scheduler.hpp"

namespace sl::lease {

struct LoadgenConfig {
  // Execution backend: the deterministic simulator (virtual cycles, bit-
  // reproducible) or the thread-per-shard engine (real cores, wall clock;
  // same ledgers and digests for the same seed — docs/THREADING.md).
  core::Backend backend = core::Backend::kDeterministic;
  std::size_t shards = 1;
  std::size_t clients = 64;
  // Tenants, each owning one count-based license. Several clients share a
  // tenant (clients round-robin over tenants), so same-license renewals
  // arrive concurrently and the batcher has something to coalesce.
  std::size_t licenses = 16;
  std::uint64_t rounds = 50;
  std::uint64_t seed = 1;
  // Large pool: the generator measures server throughput, not pool drain.
  std::uint64_t license_total = 1'000'000'000;
  std::size_t queue_capacity = 128;
  bool batching = true;
  // Crash-consistent shards: sealed write-ahead journal + group commit +
  // checkpointing (docs/DURABILITY.md). Charges the storage cost model to
  // the shard clocks, so throughput reflects the durability overhead.
  bool journaling = false;
  // Replica-group size per shard (2f+1 incl. the leader; 0 = replication
  // off). Nonzero implies journaling: a renewal is acked only after the
  // leader sync plus f follower acks (docs/REPLICATION.md).
  std::uint32_t replicas = 0;
  // Fail over every shard's leader halfway through the run (requires
  // replicas > 0): elect the longest verified follower, bump the epoch and
  // keep serving. Measures failover cost under load.
  bool kill_leader = false;
  // Replication-wire quality (requires replicas > 0). Reliability < 1 or a
  // nonzero RTT moves frame shipping onto the lossy SimLink path: drops are
  // retried under the shard's RetransmitPolicy and every round trip charges
  // virtual time, so throughput reflects the retransmission overhead.
  double link_reliability = 1.0;
  double link_rtt_millis = 0.0;
};

struct LoadgenMetrics {
  LoadgenConfig config;
  std::uint64_t submitted = 0;   // accepted into a shard queue
  std::uint64_t overloaded = 0;  // rejected by backpressure
  std::uint64_t processed = 0;
  std::uint64_t granted = 0;
  std::uint64_t denied = 0;
  std::uint64_t batches = 0;     // tree commits across all shards
  std::uint64_t checkpoints = 0; // journal truncations (journaling runs)
  std::uint64_t failovers = 0;   // leader elections (--kill-leader runs)
  std::uint64_t quorum_stalls = 0;  // drains deferred below replica quorum
  std::uint64_t retransmits = 0;    // frames re-sent on the lossy wire
  double virtual_seconds = 0.0;  // furthest shard clock
  double throughput = 0.0;       // processed / virtual_seconds
  // Wall-clock numbers; nonzero only on the threads backend (the
  // deterministic simulator's only meaningful axis is virtual time).
  double wall_seconds = 0.0;     // real time inside drain epochs
  double wall_throughput = 0.0;  // processed / wall_seconds
  double p50_micros = 0.0;       // virtual renewal latency percentiles
  double p99_micros = 0.0;
  bool ledgers_balanced = false; // conservation across every shard
  std::uint64_t state_digest = 0;
  // From-scratch rehash oracle over the same shards; must equal
  // state_digest or the incremental tree served a stale cached leaf.
  std::uint64_t state_digest_full = 0;
};

// Runs the closed loop to completion. Deterministic for a fixed config.
LoadgenMetrics run_loadgen(const LoadgenConfig& config);

// One JSON object (no trailing newline) describing the run; the bench and
// the CLI embed it in BENCH_remote.json.
std::string loadgen_json(const LoadgenMetrics& metrics);

}  // namespace sl::lease
