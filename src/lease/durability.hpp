// Typed write-ahead-journal records for one SL-Remote shard.
//
// Every ledger mutation a RemoteShard applies is journaled as one of these
// records (sealed and hash-chained by storage::Journal) before the shard
// acknowledges it. Records log logical operations *with their outcomes*
// (e.g. the granted count of each renewal), so recovery replays ledger
// arithmetic exactly instead of re-running the Algorithm 1 heuristic — the
// recovered state is bit-identical to the committed state by construction,
// which is what the recovery oracle asserts.
//
// Record payloads are little-endian with explicit length prefixes and hard
// bounds; deserialize() never trusts a length it did not check (the wire
// fuzz suite drives this parser too). Doubles round-trip via their IEEE-754
// bit patterns — telemetry must replay exactly, not through a lossy
// fixed-point encoding.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "lease/license.hpp"
#include "lease/sl_remote.hpp"

namespace sl::lease {

enum class WalRecordType : std::uint8_t {
  // First record after every truncation: names the checkpoint generation to
  // load and the state digest recovery must start from.
  kGenesis = 0,
  kProvision = 1,    // license provisioned on this shard
  kRenewBatch = 2,   // one drained renewal group (the group commit unit)
  kRevoke = 3,       // pool zeroed
  kAdmission = 4,    // SLID minted / re-initialized (crash policy outcome)
  kEscrow = 5,       // graceful shutdown: root key escrow + unused credits
  // Appended (unsynced) at enqueue time: marks an accepted-but-uncommitted
  // request. Carries no state change; a recovery that finds intents with no
  // matching batch record applies the pessimistic policy — the request is
  // dropped and the client must retry. These form the journal's mangle-able
  // tail under the crash fault model.
  kIntent = 6,
};

// Type-byte flag marking the v2 (varint, multi-group) encoding of a record.
// v1 type bytes are 0..6, so a flagged byte is unambiguous; old journals
// carry only unflagged bytes and keep replaying (docs/WIRE.md).
inline constexpr std::uint8_t kWalBatchedFlag = 0x80;

const char* wal_record_type_name(WalRecordType type);

enum class WalAdmissionKind : std::uint8_t {
  kFirst = 0,           // fresh SLID minted after remote attestation
  kPeer = 1,            // router-level telemetry admission (register_peer)
  kCrashReinit = 2,     // Section 5.7: outstanding sub-GCLs forfeited
  kGracefulReinit = 3,  // Section 5.6: clean restart, no forfeiture
};

struct WalRenewEntry {
  Slid slid = 0;
  std::uint64_t request_id = 0;  // 0 = non-idempotent (router traffic)
  std::uint64_t consumed = 0;    // piggybacked consumption applied
  std::uint8_t status = 0;       // RenewStatus as committed (granted/denied)
  std::uint64_t granted = 0;
  double health = 1.0;           // telemetry as recorded on the local record
  double network = 1.0;

  bool operator==(const WalRenewEntry&) const = default;
};

// One coalesced license group inside a v2 batched renewal record. A v2
// kRenewBatch carries the whole drain — every group the batcher formed —
// in one frame, so the journal pays one seal + chain step per drain
// instead of one per group.
struct WalRenewGroup {
  LeaseId lease = 0;
  std::vector<WalRenewEntry> entries;

  bool operator==(const WalRenewGroup&) const = default;
};

struct WalRecord {
  WalRecordType type = WalRecordType::kGenesis;
  // Shard state digest after applying this record; replay verifies it.
  std::uint64_t post_digest = 0;

  // kGenesis
  std::uint64_t generation = 0;

  // kProvision (serialized LicenseFile) / kRenewBatch / kRevoke
  LeaseId lease = 0;
  Bytes license;
  std::vector<WalRenewEntry> entries;
  // v2 batched kRenewBatch: one group per coalesced license, whole drain in
  // one record. serialize() emits the v2 varint framing exactly when this is
  // non-empty; a v1 parse leaves it empty (lease/entries carry the group).
  std::vector<WalRenewGroup> groups;

  // kAdmission / kEscrow
  WalAdmissionKind admission = WalAdmissionKind::kFirst;
  Slid slid = 0;
  double health = 1.0;
  double network = 1.0;
  std::uint64_t root_key = 0;
  // kEscrow: unused counts credited back, sorted by lease id.
  std::vector<std::pair<LeaseId, std::uint64_t>> unused;

  // kIntent
  std::uint64_t ticket = 0;
  std::uint64_t request_id = 0;
  std::uint64_t consumed = 0;

  Bytes serialize() const;
  // Scratch-buffer variant for the hot path: clears `out` and serializes
  // into it, reusing its capacity (zero allocations in steady state).
  void serialize_into(Bytes& out) const;
  static std::optional<WalRecord> deserialize(ByteView data);
};

}  // namespace sl::lease
