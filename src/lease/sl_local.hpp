// SL-Local — the per-machine lease service running inside SGX
// (paper Sections 4.4, 5.2-5.6).
//
// SL-Local holds a snapshot of leases (the lease tree) obtained from
// SL-Remote and attests executions locally, avoiding the 3-4 s remote
// attestation on every check. Key behaviours reproduced here:
//  * init(): read SLID, remote-attest to SL-Remote, restore saved state
//    with the old-backup-key (Section 5.2.4 / 5.6);
//  * issue_lease(): local attestation with the requesting SL-Manager, lease
//    lookup in the tree (spin-locked), GCL decrement, token of execution —
//    optionally a batch of tokens per attestation (Section 7.3);
//  * adaptive renewal from SL-Remote when the local sub-GCL runs dry;
//  * graceful shutdown vs crash (tests drive both paths).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "lease/lease_tree.hpp"
#include "lease/sl_remote.hpp"
#include "lease/token.hpp"
#include "net/network.hpp"
#include "sgxsim/attestation.hpp"
#include "sgxsim/runtime.hpp"

namespace sl::lease {

struct SlLocalOptions {
  // Tokens granted per local attestation (1 = no batching; the paper's
  // tuned configuration grants 10).
  std::uint32_t tokens_per_attestation = 10;
  // Estimated node health reported to SL-Remote.
  double health = 0.95;
  std::uint64_t keygen_seed = 0x51ca1;
  // F-LaaS mode: every renewal requires a fresh remote attestation of this
  // latency (the baseline's license-as-a-service flow). 0 = SecureLease
  // behaviour (RA only at init).
  double renewal_ra_seconds = 0.0;
};

struct SlLocalStats {
  std::uint64_t lease_requests = 0;
  std::uint64_t tokens_issued = 0;
  std::uint64_t local_attestations = 0;
  std::uint64_t renewals = 0;
  std::uint64_t renewal_failures = 0;
  std::uint64_t denials = 0;
};

class RemoteGateway;

class SlLocal {
 public:
  // `runtime`/`platform` model the local machine; `remote` + `network` are
  // the server side of Figure 3 (an in-process DirectGateway is created
  // internally). SL-Local creates its own enclave.
  SlLocal(sgx::SgxRuntime& runtime, sgx::Platform& platform, SlRemote& remote,
          net::SimNetwork& network, net::NodeId node, UntrustedStore& store,
          SlLocalOptions options = {});

  // Gateway-injected variant: all server communication goes through
  // `gateway` (e.g. a WireGateway speaking the serialized protocol).
  // `link_reliability` is what SL-Local reports as its network quality.
  SlLocal(sgx::SgxRuntime& runtime, sgx::Platform& platform,
          RemoteGateway& gateway, double link_reliability, UntrustedStore& store,
          SlLocalOptions options = {});

  ~SlLocal();

  // The enclave identity SL-Remote must be provisioned to expect.
  static sgx::Measurement expected_measurement();

  // Initialization (Section 5.2.4). `saved_slid` comes from the plaintext
  // SLID file (0 on first boot). Returns false if the network or the
  // remote attestation failed.
  bool init(Slid saved_slid = 0);
  Slid slid() const { return slid_; }
  bool ready() const { return ready_; }

  // One license-check request from an SL-Manager (Section 5.4). `report`
  // is the manager's local-attestation report; `license` the user's file.
  // On success returns a token worth up to tokens_per_attestation runs.
  std::optional<ExecutionToken> issue_lease(const sgx::Report& manager_report,
                                            const sgx::Measurement& manager_identity,
                                            const LicenseFile& license);

  // Session key shared with managers after local attestation (the secure
  // local channel); managers use it to verify tokens.
  std::uint64_t session_key() const { return session_key_; }

  // Graceful shutdown: commits the tree, escrows the root key with
  // SL-Remote, reports unused counts (Section 5.6).
  void shutdown();

  // Simulated crash: all in-EPC state is lost without escrow (Section 5.7).
  void crash();

  LeaseTree& tree() { return *tree_; }
  const SlLocalStats& stats() const { return stats_; }
  sgx::SgxRuntime& runtime() { return runtime_; }

 private:
  SlLocal(sgx::SgxRuntime& runtime, sgx::Platform& platform,
          std::unique_ptr<RemoteGateway> owned_gateway, RemoteGateway* gateway,
          double link_reliability, UntrustedStore& store, SlLocalOptions options);

  bool renew_from_remote(const LicenseFile& license);

  sgx::SgxRuntime& runtime_;
  sgx::Platform& platform_;
  std::unique_ptr<RemoteGateway> owned_gateway_;  // set for the direct ctor
  RemoteGateway* gateway_ = nullptr;
  double link_reliability_ = 1.0;
  UntrustedStore& store_;
  SlLocalOptions options_;

  sgx::EnclaveId enclave_ = 0;
  std::unique_ptr<LeaseTree> tree_;
  Slid slid_ = 0;
  bool ready_ = false;
  // Idempotent renewals: request ids are scoped to one boot (a nonce drawn
  // at init from the virtual clock) so a post-crash incarnation can never
  // collide with its predecessor's ids; the server additionally clears its
  // idempotency record on re-admission.
  std::uint64_t boot_nonce_ = 0;
  std::uint64_t renew_counter_ = 0;
  std::uint64_t session_key_ = 0;
  std::uint64_t token_nonce_ = 0;
  // Per-lease local accounting: what remains of the granted sub-GCLs and
  // what has been consumed since the last report to SL-Remote.
  std::unordered_map<LeaseId, std::uint64_t> consumed_unreported_;
  SlLocalStats stats_;
};

}  // namespace sl::lease
