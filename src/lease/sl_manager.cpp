#include "lease/sl_manager.hpp"

#include "common/log.hpp"

namespace sl::lease {

SlManager::SlManager(sgx::SgxRuntime& runtime, sgx::Platform& platform, SlLocal& local,
                     std::string name, LicenseFile license)
    : runtime_(runtime),
      platform_(platform),
      local_(local),
      name_(std::move(name)),
      license_(std::move(license)) {
  sgx::Enclave& enclave =
      runtime_.create_enclave("sl-manager/" + name_, 1024 * 1024);
  enclave_ = enclave.id();
  enclave.add_trusted_function("sl_manager_authorize");
}

bool SlManager::authorize_execution() {
  if (cached_executions_ > 0) {
    cached_executions_--;
    stats_.executions_granted++;
    return true;
  }

  stats_.acquisitions++;
  // Local attestation: produce a report proving this manager enclave's
  // identity, then ask SL-Local for a token.
  Bytes report_data = to_bytes(name_);
  const sgx::Report report = platform_.create_report(enclave_, report_data);
  const sgx::Measurement identity = runtime_.enclave(enclave_).measurement();

  bool granted = false;
  runtime_.ecall(enclave_, "sl_manager_authorize", /*work=*/2'000, 4096, [&] {
    auto token = local_.issue_lease(report, identity, license_);
    if (!token.has_value()) return;
    if (!verify_token(local_.session_key(), *token, license_.lease_id)) {
      log_error("SL-Manager ", name_, ": token verification failed");
      return;
    }
    cached_executions_ = token->executions;
    granted = true;
  });

  if (granted && cached_executions_ > 0) {
    cached_executions_--;
    stats_.executions_granted++;
    return true;
  }
  stats_.executions_denied++;
  return false;
}

}  // namespace sl::lease
