// SL-Manager — the in-application authentication manager (paper Section 5.1).
//
// An SL-Manager instance lives in the secure region of a partitioned
// application (one per separately-leased add-on). It collects the user's
// license file, locally attests with SL-Local, requests tokens of
// execution, and gates the application's key functions on holding a valid
// token. Token batching means one attestation can authorize several runs.
#pragma once

#include <cstdint>
#include <optional>

#include "lease/sl_local.hpp"

namespace sl::lease {

struct SlManagerStats {
  std::uint64_t acquisitions = 0;      // calls into SL-Local
  std::uint64_t executions_granted = 0;
  std::uint64_t executions_denied = 0;
};

class SlManager {
 public:
  // Creates the manager's enclave presence inside `runtime`. `name`
  // identifies the add-on (distinct managers get distinct enclaves).
  SlManager(sgx::SgxRuntime& runtime, sgx::Platform& platform, SlLocal& local,
            std::string name, LicenseFile license);

  // Authorizes one execution of the protected region. Consumes a cached
  // token execution when available; otherwise performs a local attestation
  // and asks SL-Local for a fresh (batched) token.
  bool authorize_execution();

  // True while the manager holds at least one unconsumed token execution.
  std::uint32_t cached_executions() const { return cached_executions_; }

  const LicenseFile& license() const { return license_; }
  const SlManagerStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

 private:
  sgx::SgxRuntime& runtime_;
  sgx::Platform& platform_;
  SlLocal& local_;
  std::string name_;
  LicenseFile license_;
  sgx::EnclaveId enclave_ = 0;
  std::uint32_t cached_executions_ = 0;
  SlManagerStats stats_;
};

}  // namespace sl::lease
