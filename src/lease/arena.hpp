// Slab arena for lease-tree nodes.
//
// Each shard owns one SlabArena per node kind (interior Node, leaf
// LeaseRecord). A slab is a contiguous chunk of fixed-size cells; frees push
// onto a LIFO free list so the hot renewal path reuses cache-warm cells, and
// `reset()` rewinds the arena without returning slabs to the OS — the
// steady-state renewal loop performs zero heap allocations once the tree has
// reached its working-set size.
//
// Not thread-safe by design: the thread backend gives every shard worker its
// own arenas (no cross-shard sharing, verified in
// tests/lease/test_thread_primitives.cpp), which is what makes a mutex-free
// allocator sound here. Objects placed in an arena must be trivially
// destructible — deallocate() recycles storage without running destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace sl::lease {

struct ArenaStats {
  std::uint64_t slabs = 0;           // chunks obtained from the heap
  std::uint64_t cells_per_slab = 0;  // fixed at construction
  std::uint64_t allocated = 0;       // total allocate() calls
  std::uint64_t reused = 0;          // allocations served from the free list
  std::uint64_t live = 0;            // allocate() minus deallocate()
};

class SlabArena {
 public:
  SlabArena(std::size_t cell_size, std::size_t cell_align,
            std::size_t cells_per_slab = 64);
  ~SlabArena();

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  // Raw storage for one cell; grows by a slab when both the free list and
  // the bump region are exhausted.
  void* allocate();

  // Returns a cell to the free list. `ptr` must come from this arena.
  void deallocate(void* ptr);

  // Forget every live object and make all cells available again without
  // releasing slab memory. Only valid when the caller owns (and has
  // abandoned) everything allocated here — the per-shard tree teardown path.
  void reset();

  const ArenaStats& stats() const { return stats_; }
  std::size_t cell_size() const { return cell_size_; }

 private:
  void add_slab();

  struct FreeCell {
    FreeCell* next;
  };

  std::size_t cell_size_;
  std::size_t cell_align_;
  std::size_t cells_per_slab_;
  std::vector<void*> slabs_;
  std::size_t next_slab_ = 0;   // first slab not yet consumed by the bump
  std::byte* bump_ = nullptr;   // next unused cell in the current slab
  std::size_t bump_left_ = 0;   // cells remaining in the bump region
  FreeCell* free_list_ = nullptr;
  ArenaStats stats_;
};

// Typed convenience: placement-construct a T in `arena`.
template <typename T, typename... Args>
T* arena_new(SlabArena& arena, Args&&... args) {
  static_assert(std::is_trivially_destructible_v<T>,
                "SlabArena recycles storage without running destructors");
  return new (arena.allocate()) T(std::forward<Args>(args)...);
}

// The pair of arenas a LeaseTree draws from. Owned by the shard so the tree
// can be torn down and rebuilt (recovery) while the slabs stay warm.
struct TreeArenas {
  SlabArena nodes;
  SlabArena leaves;
  TreeArenas(std::size_t node_size, std::size_t node_align,
             std::size_t leaf_size, std::size_t leaf_align)
      : nodes(node_size, node_align), leaves(leaf_size, leaf_align) {}
  // Recycle all cells (tree teardown + rebuild, e.g. crash recovery).
  void reset() {
    nodes.reset();
    leaves.reset();
  }
};

}  // namespace sl::lease
