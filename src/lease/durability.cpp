#include "lease/durability.hpp"

#include <bit>

#include "common/wire_cursor.hpp"

namespace sl::lease {

namespace {

// Hard parser bounds: a length prefix past these is corruption, never data.
constexpr std::size_t kMaxLicenseBytes = 4096;
constexpr std::size_t kMaxBatchEntries = 65'536;
constexpr std::size_t kMaxEscrowEntries = 65'536;
constexpr std::size_t kRenewEntryBytes = 8 + 8 + 8 + 1 + 8 + 8 + 8;
constexpr std::size_t kEscrowEntryBytes = 4 + 8;

void put_double(WireWriter& writer, double value) {
  writer.u64(std::bit_cast<std::uint64_t>(value));
}

bool read_double(WireCursor& cursor, double& out) {
  std::uint64_t bits = 0;
  if (!cursor.read_u64(bits)) return false;
  out = std::bit_cast<double>(bits);
  return true;
}

// One renewal entry of a v2 batched record: varint scalars (small in
// practice), raw IEEE-754 bits for the telemetry doubles (replay must be
// exact, and a double's bit pattern does not varint-compress).
void put_entry_v2(WireWriter& writer, const WalRenewEntry& entry) {
  writer.varint(entry.slid);
  writer.varint(entry.request_id);
  writer.varint(entry.consumed);
  writer.u8(entry.status);
  writer.varint(entry.granted);
  put_double(writer, entry.health);
  put_double(writer, entry.network);
}

bool read_entry_v2(WireCursor& cursor, WalRenewEntry& entry) {
  return cursor.read_varint(entry.slid) &&
         cursor.read_varint(entry.request_id) &&
         cursor.read_varint(entry.consumed) && cursor.read_u8(entry.status) &&
         cursor.read_varint(entry.granted) &&
         read_double(cursor, entry.health) && read_double(cursor, entry.network);
}

}  // namespace

const char* wal_record_type_name(WalRecordType type) {
  switch (type) {
    case WalRecordType::kGenesis: return "genesis";
    case WalRecordType::kProvision: return "provision";
    case WalRecordType::kRenewBatch: return "renew-batch";
    case WalRecordType::kRevoke: return "revoke";
    case WalRecordType::kAdmission: return "admission";
    case WalRecordType::kEscrow: return "escrow";
    case WalRecordType::kIntent: return "intent";
  }
  return "?";
}

Bytes WalRecord::serialize() const {
  Bytes out;
  serialize_into(out);
  return out;
}

void WalRecord::serialize_into(Bytes& out) const {
  out.clear();
  WireWriter writer(out);
  // v2 batched framing is emitted exactly when groups are present; every
  // other record keeps its v1 byte layout so old tools and journals agree.
  const bool batched = type == WalRecordType::kRenewBatch && !groups.empty();
  writer.u8(batched ? (kWalBatchedFlag | static_cast<std::uint8_t>(type))
                    : static_cast<std::uint8_t>(type));
  writer.u64(post_digest);
  switch (type) {
    case WalRecordType::kGenesis:
      writer.u64(generation);
      break;
    case WalRecordType::kProvision:
      writer.u32(lease);
      writer.u32(static_cast<std::uint32_t>(license.size()));
      writer.bytes(license);
      break;
    case WalRecordType::kRenewBatch:
      if (batched) {
        writer.varint(groups.size());
        for (const WalRenewGroup& group : groups) {
          writer.varint(group.lease);
          writer.varint(group.entries.size());
          for (const WalRenewEntry& entry : group.entries) {
            put_entry_v2(writer, entry);
          }
        }
        break;
      }
      writer.u32(lease);
      writer.u32(static_cast<std::uint32_t>(entries.size()));
      for (const WalRenewEntry& entry : entries) {
        writer.u64(entry.slid);
        writer.u64(entry.request_id);
        writer.u64(entry.consumed);
        writer.u8(entry.status);
        writer.u64(entry.granted);
        put_double(writer, entry.health);
        put_double(writer, entry.network);
      }
      break;
    case WalRecordType::kRevoke:
      writer.u32(lease);
      break;
    case WalRecordType::kAdmission:
      writer.u8(static_cast<std::uint8_t>(admission));
      writer.u64(slid);
      put_double(writer, health);
      put_double(writer, network);
      break;
    case WalRecordType::kEscrow:
      writer.u64(slid);
      writer.u64(root_key);
      writer.u32(static_cast<std::uint32_t>(unused.size()));
      // detlint:allow(unordered-iteration) sorted vector field (see
      // durability.hpp); name-collides with the map in sl_local.cpp
      for (const auto& [unused_lease, count] : unused) {
        writer.u32(unused_lease);
        writer.u64(count);
      }
      break;
    case WalRecordType::kIntent:
      writer.u32(lease);
      writer.u64(ticket);
      writer.u64(slid);
      writer.u64(request_id);
      writer.u64(consumed);
      break;
  }
}

std::optional<WalRecord> WalRecord::deserialize(ByteView data) {
  WireCursor cursor(data);
  WalRecord record;
  std::uint8_t raw_type = 0;
  if (!cursor.read_u8(raw_type) || !cursor.read_u64(record.post_digest)) {
    return std::nullopt;
  }
  const bool batched = (raw_type & kWalBatchedFlag) != 0;
  const std::uint8_t base_type = raw_type & ~kWalBatchedFlag;
  if (base_type > static_cast<std::uint8_t>(WalRecordType::kIntent)) {
    return std::nullopt;
  }
  record.type = static_cast<WalRecordType>(base_type);
  // The flag exists only for the batched renewal encoding.
  if (batched && record.type != WalRecordType::kRenewBatch) return std::nullopt;

  switch (record.type) {
    case WalRecordType::kGenesis:
      if (!cursor.read_u64(record.generation)) return std::nullopt;
      break;
    case WalRecordType::kProvision: {
      std::uint32_t len = 0;
      if (!cursor.read_u32(record.lease) || !cursor.read_u32(len)) {
        return std::nullopt;
      }
      if (len > kMaxLicenseBytes) return std::nullopt;
      ByteView blob;
      if (!cursor.read_bytes(len, blob)) return std::nullopt;
      record.license.assign(blob.begin(), blob.end());
      break;
    }
    case WalRecordType::kRenewBatch: {
      if (batched) {
        // v2: [varint group_count]{[varint lease][varint count]{entry...}}.
        // Counts bound the *total* entries; a nested length that lies about
        // its group runs out of bytes and rejects with no partial state.
        std::uint64_t group_count = 0;
        if (!cursor.read_varint(group_count)) return std::nullopt;
        if (group_count == 0 || group_count > kMaxBatchEntries) {
          return std::nullopt;
        }
        std::size_t total_entries = 0;
        record.groups.reserve(static_cast<std::size_t>(group_count));
        for (std::uint64_t g = 0; g < group_count; ++g) {
          WalRenewGroup group;
          std::uint64_t lease = 0;
          std::uint64_t entry_count = 0;
          if (!cursor.read_varint(lease) || lease > 0xffffffffULL ||
              !cursor.read_varint(entry_count)) {
            return std::nullopt;
          }
          total_entries += static_cast<std::size_t>(entry_count);
          if (entry_count > kMaxBatchEntries ||
              total_entries > kMaxBatchEntries) {
            return std::nullopt;
          }
          group.lease = static_cast<LeaseId>(lease);
          group.entries.reserve(static_cast<std::size_t>(entry_count));
          for (std::uint64_t i = 0; i < entry_count; ++i) {
            WalRenewEntry entry;
            if (!read_entry_v2(cursor, entry)) return std::nullopt;
            group.entries.push_back(entry);
          }
          record.groups.push_back(std::move(group));
        }
        break;
      }
      std::uint32_t count = 0;
      if (!cursor.read_u32(record.lease) || !cursor.read_u32(count)) {
        return std::nullopt;
      }
      if (count > kMaxBatchEntries ||
          cursor.remaining() <
              static_cast<std::size_t>(count) * kRenewEntryBytes) {
        return std::nullopt;
      }
      record.entries.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        WalRenewEntry entry;
        if (!cursor.read_u64(entry.slid) || !cursor.read_u64(entry.request_id) ||
            !cursor.read_u64(entry.consumed) || !cursor.read_u8(entry.status) ||
            !cursor.read_u64(entry.granted) ||
            !read_double(cursor, entry.health) ||
            !read_double(cursor, entry.network)) {
          return std::nullopt;
        }
        record.entries.push_back(entry);
      }
      break;
    }
    case WalRecordType::kRevoke:
      if (!cursor.read_u32(record.lease)) return std::nullopt;
      break;
    case WalRecordType::kAdmission: {
      std::uint8_t kind = 0;
      if (!cursor.read_u8(kind) ||
          kind > static_cast<std::uint8_t>(WalAdmissionKind::kGracefulReinit)) {
        return std::nullopt;
      }
      record.admission = static_cast<WalAdmissionKind>(kind);
      if (!cursor.read_u64(record.slid) || !read_double(cursor, record.health) ||
          !read_double(cursor, record.network)) {
        return std::nullopt;
      }
      break;
    }
    case WalRecordType::kEscrow: {
      std::uint32_t count = 0;
      if (!cursor.read_u64(record.slid) || !cursor.read_u64(record.root_key) ||
          !cursor.read_u32(count)) {
        return std::nullopt;
      }
      if (count > kMaxEscrowEntries ||
          cursor.remaining() <
              static_cast<std::size_t>(count) * kEscrowEntryBytes) {
        return std::nullopt;
      }
      record.unused.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t unused_lease = 0;
        std::uint64_t amount = 0;
        if (!cursor.read_u32(unused_lease) || !cursor.read_u64(amount)) {
          return std::nullopt;
        }
        record.unused.emplace_back(unused_lease, amount);
      }
      break;
    }
    case WalRecordType::kIntent:
      if (!cursor.read_u32(record.lease) || !cursor.read_u64(record.ticket) ||
          !cursor.read_u64(record.slid) || !cursor.read_u64(record.request_id) ||
          !cursor.read_u64(record.consumed)) {
        return std::nullopt;
      }
      break;
  }
  if (!cursor.done()) return std::nullopt;  // trailing garbage
  return record;
}

}  // namespace sl::lease
