#include "lease/durability.hpp"

#include <bit>

namespace sl::lease {

namespace {

// Hard parser bounds: a length prefix past these is corruption, never data.
constexpr std::size_t kMaxLicenseBytes = 4096;
constexpr std::size_t kMaxBatchEntries = 65'536;
constexpr std::size_t kMaxEscrowEntries = 65'536;
constexpr std::size_t kRenewEntryBytes = 8 + 8 + 8 + 1 + 8 + 8 + 8;
constexpr std::size_t kEscrowEntryBytes = 4 + 8;

void put_double(Bytes& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

bool fits(ByteView data, std::size_t offset, std::size_t need) {
  return offset <= data.size() && data.size() - offset >= need;
}

}  // namespace

const char* wal_record_type_name(WalRecordType type) {
  switch (type) {
    case WalRecordType::kGenesis: return "genesis";
    case WalRecordType::kProvision: return "provision";
    case WalRecordType::kRenewBatch: return "renew-batch";
    case WalRecordType::kRevoke: return "revoke";
    case WalRecordType::kAdmission: return "admission";
    case WalRecordType::kEscrow: return "escrow";
    case WalRecordType::kIntent: return "intent";
  }
  return "?";
}

Bytes WalRecord::serialize() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(type));
  put_u64(out, post_digest);
  switch (type) {
    case WalRecordType::kGenesis:
      put_u64(out, generation);
      break;
    case WalRecordType::kProvision:
      put_u32(out, lease);
      put_u32(out, static_cast<std::uint32_t>(license.size()));
      out.insert(out.end(), license.begin(), license.end());
      break;
    case WalRecordType::kRenewBatch:
      put_u32(out, lease);
      put_u32(out, static_cast<std::uint32_t>(entries.size()));
      for (const WalRenewEntry& entry : entries) {
        put_u64(out, entry.slid);
        put_u64(out, entry.request_id);
        put_u64(out, entry.consumed);
        out.push_back(entry.status);
        put_u64(out, entry.granted);
        put_double(out, entry.health);
        put_double(out, entry.network);
      }
      break;
    case WalRecordType::kRevoke:
      put_u32(out, lease);
      break;
    case WalRecordType::kAdmission:
      out.push_back(static_cast<std::uint8_t>(admission));
      put_u64(out, slid);
      put_double(out, health);
      put_double(out, network);
      break;
    case WalRecordType::kEscrow:
      put_u64(out, slid);
      put_u64(out, root_key);
      put_u32(out, static_cast<std::uint32_t>(unused.size()));
      // detlint:allow(unordered-iteration) sorted vector field (see
      // durability.hpp); name-collides with the map in sl_local.cpp
      for (const auto& [unused_lease, count] : unused) {
        put_u32(out, unused_lease);
        put_u64(out, count);
      }
      break;
    case WalRecordType::kIntent:
      put_u32(out, lease);
      put_u64(out, ticket);
      put_u64(out, slid);
      put_u64(out, request_id);
      put_u64(out, consumed);
      break;
  }
  return out;
}

std::optional<WalRecord> WalRecord::deserialize(ByteView data) {
  if (!fits(data, 0, 1 + 8)) return std::nullopt;
  WalRecord record;
  const std::uint8_t raw_type = data[0];
  if (raw_type > static_cast<std::uint8_t>(WalRecordType::kIntent)) {
    return std::nullopt;
  }
  record.type = static_cast<WalRecordType>(raw_type);
  record.post_digest = get_u64(data, 1);
  std::size_t offset = 9;

  const auto read_u32 = [&](std::uint32_t& out) {
    if (!fits(data, offset, 4)) return false;
    out = get_u32(data, offset);
    offset += 4;
    return true;
  };
  const auto read_u64 = [&](std::uint64_t& out) {
    if (!fits(data, offset, 8)) return false;
    out = get_u64(data, offset);
    offset += 8;
    return true;
  };
  const auto read_u8 = [&](std::uint8_t& out) {
    if (!fits(data, offset, 1)) return false;
    out = data[offset];
    offset += 1;
    return true;
  };
  const auto read_double = [&](double& out) {
    std::uint64_t bits = 0;
    if (!read_u64(bits)) return false;
    out = std::bit_cast<double>(bits);
    return true;
  };

  switch (record.type) {
    case WalRecordType::kGenesis:
      if (!read_u64(record.generation)) return std::nullopt;
      break;
    case WalRecordType::kProvision: {
      std::uint32_t len = 0;
      if (!read_u32(record.lease) || !read_u32(len)) return std::nullopt;
      if (len > kMaxLicenseBytes || !fits(data, offset, len)) {
        return std::nullopt;
      }
      record.license.assign(data.begin() + static_cast<std::ptrdiff_t>(offset),
                            data.begin() +
                                static_cast<std::ptrdiff_t>(offset + len));
      offset += len;
      break;
    }
    case WalRecordType::kRenewBatch: {
      std::uint32_t count = 0;
      if (!read_u32(record.lease) || !read_u32(count)) return std::nullopt;
      if (count > kMaxBatchEntries ||
          !fits(data, offset, static_cast<std::size_t>(count) *
                                  kRenewEntryBytes)) {
        return std::nullopt;
      }
      record.entries.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        WalRenewEntry entry;
        if (!read_u64(entry.slid) || !read_u64(entry.request_id) ||
            !read_u64(entry.consumed) || !read_u8(entry.status) ||
            !read_u64(entry.granted) || !read_double(entry.health) ||
            !read_double(entry.network)) {
          return std::nullopt;
        }
        record.entries.push_back(entry);
      }
      break;
    }
    case WalRecordType::kRevoke:
      if (!read_u32(record.lease)) return std::nullopt;
      break;
    case WalRecordType::kAdmission: {
      std::uint8_t kind = 0;
      if (!read_u8(kind) ||
          kind > static_cast<std::uint8_t>(WalAdmissionKind::kGracefulReinit)) {
        return std::nullopt;
      }
      record.admission = static_cast<WalAdmissionKind>(kind);
      if (!read_u64(record.slid) || !read_double(record.health) ||
          !read_double(record.network)) {
        return std::nullopt;
      }
      break;
    }
    case WalRecordType::kEscrow: {
      std::uint32_t count = 0;
      if (!read_u64(record.slid) || !read_u64(record.root_key) ||
          !read_u32(count)) {
        return std::nullopt;
      }
      if (count > kMaxEscrowEntries ||
          !fits(data, offset, static_cast<std::size_t>(count) *
                                  kEscrowEntryBytes)) {
        return std::nullopt;
      }
      record.unused.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t unused_lease = 0;
        std::uint64_t amount = 0;
        if (!read_u32(unused_lease) || !read_u64(amount)) return std::nullopt;
        record.unused.emplace_back(unused_lease, amount);
      }
      break;
    }
    case WalRecordType::kIntent:
      if (!read_u32(record.lease) || !read_u64(record.ticket) ||
          !read_u64(record.slid) || !read_u64(record.request_id) ||
          !read_u64(record.consumed)) {
        return std::nullopt;
      }
      break;
  }
  if (offset != data.size()) return std::nullopt;  // trailing garbage
  return record;
}

}  // namespace sl::lease
