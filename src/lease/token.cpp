#include "lease/token.hpp"

namespace sl::lease {

Bytes ExecutionToken::mac_payload() const {
  Bytes payload;
  put_u32(payload, lease_id);
  put_u32(payload, executions);
  put_u64(payload, issued_at_ms);
  put_u64(payload, nonce);
  return payload;
}

namespace {
Bytes session_key_bytes(std::uint64_t session_key) {
  Bytes key;
  put_u64(key, session_key);
  return key;
}
}  // namespace

ExecutionToken issue_token(std::uint64_t session_key, LeaseId lease_id,
                           std::uint32_t executions, std::uint64_t issued_at_ms,
                           std::uint64_t nonce) {
  ExecutionToken token;
  token.lease_id = lease_id;
  token.executions = executions;
  token.issued_at_ms = issued_at_ms;
  token.nonce = nonce;
  token.mac = crypto::hmac_sha256(session_key_bytes(session_key), token.mac_payload());
  return token;
}

bool verify_token(std::uint64_t session_key, const ExecutionToken& token,
                  LeaseId expected_lease) {
  if (token.lease_id != expected_lease) return false;
  if (token.executions == 0) return false;
  return crypto::hmac_verify(session_key_bytes(session_key), token.mac_payload(),
                             token.mac);
}

}  // namespace sl::lease
