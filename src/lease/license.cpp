#include "lease/license.hpp"

#include "crypto/hmac.hpp"

namespace sl::lease {

Bytes LicenseFile::signed_payload() const {
  Bytes payload;
  put_u32(payload, lease_id);
  put_u32(payload, static_cast<std::uint32_t>(product.size()));
  const Bytes name = to_bytes(product);
  payload.insert(payload.end(), name.begin(), name.end());
  put_u32(payload, static_cast<std::uint32_t>(kind));
  put_u64(payload, total_count);
  put_u64(payload, static_cast<std::uint64_t>(interval_seconds * 1e3));
  return payload;
}

Bytes LicenseFile::serialize() const {
  Bytes out = signed_payload();
  out.insert(out.end(), signature.begin(), signature.end());
  return out;
}

std::optional<LicenseFile> LicenseFile::deserialize(ByteView data) {
  if (data.size() < 4 + 4) return std::nullopt;
  LicenseFile file;
  file.lease_id = get_u32(data, 0);
  const std::uint32_t name_len = get_u32(data, 4);
  const std::size_t fixed_tail = 4 + 8 + 8 + crypto::kSha256DigestSize;
  // Widen name_len before summing: a crafted length near 2^32 would wrap the
  // 32-bit sum, defeat the bound check, and drive assign() out of bounds.
  const std::size_t name_size = name_len;
  if (data.size() < 8 + name_size + fixed_tail) return std::nullopt;
  file.product.assign(reinterpret_cast<const char*>(data.data()) + 8, name_size);
  std::size_t off = 8 + name_size;
  const std::uint32_t kind = get_u32(data, off);
  if (kind > static_cast<std::uint32_t>(LeaseKind::kCountBased)) return std::nullopt;
  file.kind = static_cast<LeaseKind>(kind);
  file.total_count = get_u64(data, off + 4);
  file.interval_seconds = static_cast<double>(get_u64(data, off + 12)) / 1e3;
  off += 20;
  std::copy(data.begin() + static_cast<std::ptrdiff_t>(off),
            data.begin() + static_cast<std::ptrdiff_t>(off + crypto::kSha256DigestSize),
            file.signature.begin());
  return file;
}

LicenseAuthority::LicenseAuthority(std::uint64_t vendor_secret) {
  put_u64(vendor_key_, vendor_secret);
}

LicenseFile LicenseAuthority::issue(LeaseId lease_id, std::string product,
                                    LeaseKind kind, std::uint64_t total_count,
                                    double interval_seconds) const {
  LicenseFile file;
  file.lease_id = lease_id;
  file.product = std::move(product);
  file.kind = kind;
  file.total_count = total_count;
  file.interval_seconds = interval_seconds;
  file.signature = crypto::hmac_sha256(vendor_key_, file.signed_payload());
  return file;
}

bool LicenseAuthority::validate(const LicenseFile& license) const {
  return crypto::hmac_verify(vendor_key_, license.signed_payload(), license.signature);
}

}  // namespace sl::lease
