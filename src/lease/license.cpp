#include "lease/license.hpp"

#include "common/wire_cursor.hpp"
#include "crypto/hmac.hpp"

namespace sl::lease {

Bytes LicenseFile::signed_payload() const {
  Bytes payload;
  signed_payload_into(payload);
  return payload;
}

void LicenseFile::signed_payload_into(Bytes& payload) const {
  payload.clear();
  WireWriter writer(payload);
  writer.u32(lease_id);
  writer.u32(static_cast<std::uint32_t>(product.size()));
  writer.bytes(ByteView(reinterpret_cast<const std::uint8_t*>(product.data()),
                        product.size()));
  writer.u32(static_cast<std::uint32_t>(kind));
  writer.u64(total_count);
  writer.u64(static_cast<std::uint64_t>(interval_seconds * 1e3));
}

Bytes LicenseFile::serialize() const {
  Bytes out = signed_payload();
  out.insert(out.end(), signature.begin(), signature.end());
  return out;
}

std::optional<LicenseFile> LicenseFile::deserialize(ByteView data) {
  // The cursor widens the name length before proving the bytes present, so
  // a crafted length near 2^32 cannot wrap a 32-bit sum and defeat the
  // bound check. NOTE: trailing bytes after the signature are deliberately
  // tolerated — license files travel inside containers that may pad them,
  // and the historical accept-set is pinned by the wire fuzz suite.
  WireCursor cursor(data);
  LicenseFile file;
  std::uint32_t name_len = 0;
  if (!cursor.read_u32(file.lease_id) || !cursor.read_u32(name_len)) {
    return std::nullopt;
  }
  ByteView name;
  if (!cursor.read_bytes(name_len, name)) return std::nullopt;
  std::uint32_t kind = 0;
  std::uint64_t interval_millis = 0;
  ByteView signature;
  if (!cursor.read_u32(kind) || !cursor.read_u64(file.total_count) ||
      !cursor.read_u64(interval_millis) ||
      !cursor.read_bytes(crypto::kSha256DigestSize, signature)) {
    return std::nullopt;
  }
  if (kind > static_cast<std::uint32_t>(LeaseKind::kCountBased)) {
    return std::nullopt;
  }
  file.product.assign(reinterpret_cast<const char*>(name.data()), name.size());
  file.kind = static_cast<LeaseKind>(kind);
  file.interval_seconds = static_cast<double>(interval_millis) / 1e3;
  std::copy(signature.begin(), signature.end(), file.signature.begin());
  return file;
}

LicenseAuthority::LicenseAuthority(std::uint64_t vendor_secret) {
  put_u64(vendor_key_, vendor_secret);
}

LicenseFile LicenseAuthority::issue(LeaseId lease_id, std::string product,
                                    LeaseKind kind, std::uint64_t total_count,
                                    double interval_seconds) const {
  LicenseFile file;
  file.lease_id = lease_id;
  file.product = std::move(product);
  file.kind = kind;
  file.total_count = total_count;
  file.interval_seconds = interval_seconds;
  file.signature = crypto::hmac_sha256(vendor_key_, file.signed_payload());
  return file;
}

bool LicenseAuthority::validate(const LicenseFile& license) const {
  return crypto::hmac_verify(vendor_key_, license.signed_payload(), license.signature);
}

bool LicenseAuthority::validate_with_scratch(const LicenseFile& license,
                                             Bytes& scratch) const {
  license.signed_payload_into(scratch);
  return crypto::hmac_verify(vendor_key_, scratch, license.signature);
}

}  // namespace sl::lease
