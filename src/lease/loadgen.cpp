#include "lease/loadgen.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "core/scheduler.hpp"
#include "lease/shard_router.hpp"
#include "lease/sl_local.hpp"
#include "lease/thread_backend.hpp"
#include "obs/metrics.hpp"
#include "sgxsim/attestation.hpp"

namespace sl::lease {

namespace {

#if !SL_OBS_ENABLED
// Exact-sort percentile, used only when the metrics layer is compiled out.
double percentile(std::vector<Cycles>& latencies, double p) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  const std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(latencies.size() - 1) + 0.5);
  return cycles_to_micros(latencies[std::min(index, latencies.size() - 1)]);
}
#endif

}  // namespace

LoadgenMetrics run_loadgen(const LoadgenConfig& config) {
#if SL_OBS_ENABLED
  // The registry is the single source of truth for the run's numbers
  // (docs/OBSERVABILITY.md): snapshot before, delta after. The shared
  // process-wide registry may already hold history from earlier runs in the
  // same binary; the delta isolates exactly this run.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const std::uint64_t base_enqueued =
      registry.counter_sum("sl_lease_renewals_enqueued_total");
  const std::uint64_t base_overloads =
      registry.counter_sum("sl_lease_backpressure_drops_total");
  const std::uint64_t base_processed =
      registry.counter_sum("sl_lease_renewals_processed_total");
  const std::uint64_t base_granted =
      registry.counter_sum("sl_lease_renewals_granted_total");
  const std::uint64_t base_denied =
      registry.counter_sum("sl_lease_renewals_denied_total");
  const std::uint64_t base_batches =
      registry.counter_sum("sl_lease_batch_commits_total");
  const std::uint64_t base_checkpoints =
      registry.counter_sum("sl_lease_checkpoints_total");
  const obs::HistogramSnapshot base_latency =
      registry.histogram_sum("sl_lease_renew_latency_cycles");
#endif
  sgx::AttestationService ias;
  const LicenseAuthority vendor(splitmix64_key(1, config.seed) | 1);

  ShardConfig shard_config;
  shard_config.queue_capacity = config.queue_capacity;
  shard_config.batching = config.batching;
  shard_config.durability.journaling = config.journaling || config.replicas > 0;
  shard_config.durability.replicas = config.replicas;
  if (config.replicas > 0 &&
      (config.link_reliability < 1.0 || config.link_rtt_millis > 0.0)) {
    shard_config.durability.replica_link.reliability = config.link_reliability;
    shard_config.durability.replica_link.rtt_millis = config.link_rtt_millis;
    if (config.link_rtt_millis > 0.0) {
      // Scale the retransmission schedule to the wire: the defaults assume
      // the simulator's multi-millisecond WAN profile and would charge a
      // sub-millisecond datacenter link a 20ms backoff per lost frame,
      // drowning the throughput measurement in one fault-model constant.
      replication::RetransmitPolicy& policy =
          shard_config.durability.retransmit;
      policy.ack_timeout_millis = 3.0 * config.link_rtt_millis;
      policy.backoff_base_millis = 2.0 * config.link_rtt_millis;
      policy.backoff_max_millis = 40.0 * config.link_rtt_millis;
    }
  }
  ShardRouter router(vendor, ias, SlLocal::expected_measurement(),
                     std::max<std::size_t>(1, config.shards), shard_config);

  // Constructed directly (not via core::make_scheduler): sl_lease cannot
  // link sl_core, and both backends live in headers reachable from here.
  std::unique_ptr<core::Scheduler> scheduler;
  if (config.backend == core::Backend::kThreads) {
    scheduler = std::make_unique<ThreadScheduler>(router);
  } else {
    scheduler = std::make_unique<core::DeterministicScheduler>(router);
  }

  // One tenant per license; clients round-robin over tenants so the shard
  // owning a license sees several concurrent requesters for it.
  const std::size_t tenants = std::max<std::size_t>(1, config.licenses);
  std::vector<LicenseFile> licenses;
  licenses.reserve(tenants);
  for (std::size_t t = 0; t < tenants; ++t) {
    licenses.push_back(vendor.issue(
        static_cast<LeaseId>(1000 + t), "loadgen/" + std::to_string(t),
        LeaseKind::kCountBased, config.license_total));
    router.provision(/*customer=*/t + 1, licenses.back());
  }

  Rng rng(config.seed);
  struct Client {
    std::size_t tenant = 0;
    double health = 1.0;
    double network = 1.0;
    std::uint64_t pending_consume = 0;  // previous grant, reported next round
  };
  std::vector<Client> clients(std::max<std::size_t>(1, config.clients));
  for (std::size_t c = 0; c < clients.size(); ++c) {
    clients[c].tenant = c % tenants;
    clients[c].health = 0.85 + 0.15 * rng.next_double();
    clients[c].network = 0.7 + 0.3 * rng.next_double();
    scheduler->register_client(clients[c].tenant + 1, c, clients[c].health,
                               clients[c].network);
  }

  LoadgenMetrics metrics;
  metrics.config = config;
#if !SL_OBS_ENABLED
  std::vector<Cycles> latencies;
  latencies.reserve(clients.size() * config.rounds);
#endif

  for (std::uint64_t round = 0; round < config.rounds; ++round) {
    if (config.kill_leader && config.replicas > 0 &&
        round == config.rounds / 2) {
      // Halfway point: depose every shard's leader and promote the longest
      // verified follower. The loop keeps running against the new leaders,
      // so the cost (and correctness) of failover lands inside the run.
      for (std::size_t s = 0; s < router.shard_count(); ++s) {
        RemoteShard& shard = router.shard(s);
        if (!shard.up() || !shard.replication_enabled()) continue;
        if (!shard.replica_group()->election_quorum_available()) continue;
        const FailoverReport report = shard.fail_over();
        if (report.ok) metrics.failovers++;
      }
    }
    for (std::size_t c = 0; c < clients.size(); ++c) {
      Client& client = clients[c];
      const std::uint64_t ticket = round * clients.size() + c;
      if (scheduler->submit(client.tenant + 1, c, licenses[client.tenant],
                            client.pending_consume, ticket)) {
        client.pending_consume = 0;  // the report rode along
      }
      // Backpressure rejections retry next round, keeping the report.
    }
    for (const ShardRouter::Completion& done : scheduler->drain_all()) {
#if !SL_OBS_ENABLED
      latencies.push_back(done.outcome.latency);
#endif
      Client& client = clients[done.outcome.ticket % clients.size()];
      if (done.outcome.status == RenewStatus::kGranted) {
        client.pending_consume = done.outcome.granted;
      }
    }
  }

#if SL_OBS_ENABLED
  // Every count below comes from the registry (as a delta over this run),
  // so BENCH_remote.json and `securelease stats` can never disagree.
  metrics.submitted =
      registry.counter_sum("sl_lease_renewals_enqueued_total") - base_enqueued;
  metrics.overloaded =
      registry.counter_sum("sl_lease_backpressure_drops_total") -
      base_overloads;
  metrics.processed =
      registry.counter_sum("sl_lease_renewals_processed_total") -
      base_processed;
  metrics.granted =
      registry.counter_sum("sl_lease_renewals_granted_total") - base_granted;
  metrics.denied =
      registry.counter_sum("sl_lease_renewals_denied_total") - base_denied;
  metrics.batches =
      registry.counter_sum("sl_lease_batch_commits_total") - base_batches;
  metrics.checkpoints =
      registry.counter_sum("sl_lease_checkpoints_total") - base_checkpoints;
  const obs::HistogramSnapshot latency =
      registry.histogram_sum("sl_lease_renew_latency_cycles")
          .delta(base_latency);
  metrics.p50_micros = cycles_to_micros(
      static_cast<Cycles>(latency.quantile(0.50)));
  metrics.p99_micros = cycles_to_micros(
      static_cast<Cycles>(latency.quantile(0.99)));
#else
  // The thread backend rejects at its submission rings before a shard sees
  // the request, so scheduler-level rejections are added on top of the
  // shard-level ones (exactly one of the two is nonzero per backend).
  const core::SchedulerStats sched_stats = scheduler->scheduler_stats();
  const ShardStats shard_stats = router.aggregate_shard_stats();
  metrics.submitted = shard_stats.enqueued;
  metrics.overloaded = shard_stats.overloads + sched_stats.ring_rejections;
  metrics.processed = shard_stats.processed;
  metrics.granted = shard_stats.granted;
  metrics.denied = shard_stats.denied;
  metrics.batches = shard_stats.batches;
  metrics.checkpoints = shard_stats.checkpoints;
  metrics.p50_micros = percentile(latencies, 0.50);
  metrics.p99_micros = percentile(latencies, 0.99);
#endif
  metrics.quorum_stalls = router.aggregate_shard_stats().quorum_stalls;
  for (std::size_t s = 0; s < router.shard_count(); ++s) {
    if (const auto* group = router.shard(s).replica_group()) {
      metrics.retransmits += group->stats().retransmits;
    }
  }
  metrics.virtual_seconds = router.virtual_seconds();
  metrics.throughput = metrics.virtual_seconds > 0.0
                           ? static_cast<double>(metrics.processed) /
                                 metrics.virtual_seconds
                           : 0.0;
  metrics.wall_seconds = scheduler->wall_seconds();
  metrics.wall_throughput =
      metrics.wall_seconds > 0.0
          ? static_cast<double>(metrics.processed) / metrics.wall_seconds
          : 0.0;
  metrics.ledgers_balanced = true;
  for (const auto& [lease, ledger] : router.ledgers()) {
    if (!ledger.balanced()) metrics.ledgers_balanced = false;
  }
  metrics.state_digest = router.state_digest();
  metrics.state_digest_full = router.state_digest_full();
  return metrics;
}

std::string loadgen_json(const LoadgenMetrics& m) {
  char buffer[2048];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\n"
      "      \"backend\": \"%s\",\n"
      "      \"shards\": %zu,\n"
      "      \"clients\": %zu,\n"
      "      \"licenses\": %zu,\n"
      "      \"rounds\": %llu,\n"
      "      \"seed\": %llu,\n"
      "      \"batching\": %s,\n"
      "      \"journaling\": %s,\n"
      "      \"replicas\": %u,\n"
      "      \"kill_leader\": %s,\n"
      "      \"link_reliability\": %.4f,\n"
      "      \"link_rtt_millis\": %.3f,\n"
      "      \"submitted\": %llu,\n"
      "      \"overloaded\": %llu,\n"
      "      \"processed\": %llu,\n"
      "      \"granted\": %llu,\n"
      "      \"denied\": %llu,\n"
      "      \"batches\": %llu,\n"
      "      \"checkpoints\": %llu,\n"
      "      \"failovers\": %llu,\n"
      "      \"quorum_stalls\": %llu,\n"
      "      \"retransmits\": %llu,\n"
      "      \"virtual_seconds\": %.6f,\n"
      "      \"throughput_renewals_per_vsec\": %.1f,\n"
      "      \"wall_seconds\": %.6f,\n"
      "      \"throughput_renewals_per_wsec\": %.1f,\n"
      "      \"p50_micros\": %.1f,\n"
      "      \"p99_micros\": %.1f,\n"
      "      \"ledgers_balanced\": %s,\n"
      "      \"state_digest\": \"%016llx\",\n"
      "      \"state_digest_full\": \"%016llx\"\n"
      "    }",
      core::backend_name(m.config.backend), m.config.shards,
      m.config.clients, m.config.licenses,
      static_cast<unsigned long long>(m.config.rounds),
      static_cast<unsigned long long>(m.config.seed),
      m.config.batching ? "true" : "false",
      m.config.journaling || m.config.replicas > 0 ? "true" : "false",
      m.config.replicas, m.config.kill_leader ? "true" : "false",
      m.config.link_reliability, m.config.link_rtt_millis,
      static_cast<unsigned long long>(m.submitted),
      static_cast<unsigned long long>(m.overloaded),
      static_cast<unsigned long long>(m.processed),
      static_cast<unsigned long long>(m.granted),
      static_cast<unsigned long long>(m.denied),
      static_cast<unsigned long long>(m.batches),
      static_cast<unsigned long long>(m.checkpoints),
      static_cast<unsigned long long>(m.failovers),
      static_cast<unsigned long long>(m.quorum_stalls),
      static_cast<unsigned long long>(m.retransmits), m.virtual_seconds,
      m.throughput, m.wall_seconds, m.wall_throughput, m.p50_micros,
      m.p99_micros,
      m.ledgers_balanced ? "true" : "false",
      static_cast<unsigned long long>(m.state_digest),
      static_cast<unsigned long long>(m.state_digest_full));
  return buffer;
}

}  // namespace sl::lease
