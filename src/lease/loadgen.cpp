#include "lease/loadgen.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "lease/shard_router.hpp"
#include "lease/sl_local.hpp"
#include "sgxsim/attestation.hpp"

namespace sl::lease {

namespace {

double percentile(std::vector<Cycles>& latencies, double p) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  const std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(latencies.size() - 1) + 0.5);
  return cycles_to_micros(latencies[std::min(index, latencies.size() - 1)]);
}

}  // namespace

LoadgenMetrics run_loadgen(const LoadgenConfig& config) {
  sgx::AttestationService ias;
  const LicenseAuthority vendor(splitmix64_key(1, config.seed) | 1);

  ShardConfig shard_config;
  shard_config.queue_capacity = config.queue_capacity;
  shard_config.batching = config.batching;
  shard_config.durability.journaling = config.journaling;
  ShardRouter router(vendor, ias, SlLocal::expected_measurement(),
                     std::max<std::size_t>(1, config.shards), shard_config);

  // One tenant per license; clients round-robin over tenants so the shard
  // owning a license sees several concurrent requesters for it.
  const std::size_t tenants = std::max<std::size_t>(1, config.licenses);
  std::vector<LicenseFile> licenses;
  licenses.reserve(tenants);
  for (std::size_t t = 0; t < tenants; ++t) {
    licenses.push_back(vendor.issue(
        static_cast<LeaseId>(1000 + t), "loadgen/" + std::to_string(t),
        LeaseKind::kCountBased, config.license_total));
    router.provision(/*customer=*/t + 1, licenses.back());
  }

  Rng rng(config.seed);
  struct Client {
    std::size_t tenant = 0;
    double health = 1.0;
    double network = 1.0;
    std::uint64_t pending_consume = 0;  // previous grant, reported next round
  };
  std::vector<Client> clients(std::max<std::size_t>(1, config.clients));
  for (std::size_t c = 0; c < clients.size(); ++c) {
    clients[c].tenant = c % tenants;
    clients[c].health = 0.85 + 0.15 * rng.next_double();
    clients[c].network = 0.7 + 0.3 * rng.next_double();
    router.register_client(clients[c].tenant + 1, c, clients[c].health,
                           clients[c].network);
  }

  LoadgenMetrics metrics;
  metrics.config = config;
  std::vector<Cycles> latencies;
  latencies.reserve(clients.size() * config.rounds);

  for (std::uint64_t round = 0; round < config.rounds; ++round) {
    for (std::size_t c = 0; c < clients.size(); ++c) {
      Client& client = clients[c];
      const std::uint64_t ticket = round * clients.size() + c;
      if (router.submit(client.tenant + 1, c, licenses[client.tenant],
                        client.pending_consume, ticket)) {
        metrics.submitted++;
        client.pending_consume = 0;  // the report rode along
      } else {
        // Backpressure: retry next round, keeping the consumption report.
        metrics.overloaded++;
      }
    }
    for (const ShardRouter::Completion& done : router.drain_all()) {
      metrics.processed++;
      latencies.push_back(done.outcome.latency);
      Client& client = clients[done.outcome.ticket % clients.size()];
      if (done.outcome.status == RenewStatus::kGranted) {
        metrics.granted++;
        client.pending_consume = done.outcome.granted;
      } else {
        metrics.denied++;
      }
    }
  }

  const ShardStats shard_stats = router.aggregate_shard_stats();
  metrics.batches = shard_stats.batches;
  metrics.checkpoints = shard_stats.checkpoints;
  metrics.virtual_seconds = router.virtual_seconds();
  metrics.throughput = metrics.virtual_seconds > 0.0
                           ? static_cast<double>(metrics.processed) /
                                 metrics.virtual_seconds
                           : 0.0;
  metrics.p50_micros = percentile(latencies, 0.50);
  metrics.p99_micros = percentile(latencies, 0.99);
  metrics.ledgers_balanced = true;
  for (const auto& [lease, ledger] : router.ledgers()) {
    if (!ledger.balanced()) metrics.ledgers_balanced = false;
  }
  metrics.state_digest = router.state_digest();
  return metrics;
}

std::string loadgen_json(const LoadgenMetrics& m) {
  char buffer[1024];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\n"
      "      \"shards\": %zu,\n"
      "      \"clients\": %zu,\n"
      "      \"licenses\": %zu,\n"
      "      \"rounds\": %llu,\n"
      "      \"seed\": %llu,\n"
      "      \"batching\": %s,\n"
      "      \"journaling\": %s,\n"
      "      \"submitted\": %llu,\n"
      "      \"overloaded\": %llu,\n"
      "      \"processed\": %llu,\n"
      "      \"granted\": %llu,\n"
      "      \"denied\": %llu,\n"
      "      \"batches\": %llu,\n"
      "      \"checkpoints\": %llu,\n"
      "      \"virtual_seconds\": %.6f,\n"
      "      \"throughput_renewals_per_vsec\": %.1f,\n"
      "      \"p50_micros\": %.1f,\n"
      "      \"p99_micros\": %.1f,\n"
      "      \"ledgers_balanced\": %s,\n"
      "      \"state_digest\": \"%016llx\"\n"
      "    }",
      m.config.shards, m.config.clients, m.config.licenses,
      static_cast<unsigned long long>(m.config.rounds),
      static_cast<unsigned long long>(m.config.seed),
      m.config.batching ? "true" : "false",
      m.config.journaling ? "true" : "false",
      static_cast<unsigned long long>(m.submitted),
      static_cast<unsigned long long>(m.overloaded),
      static_cast<unsigned long long>(m.processed),
      static_cast<unsigned long long>(m.granted),
      static_cast<unsigned long long>(m.denied),
      static_cast<unsigned long long>(m.batches),
      static_cast<unsigned long long>(m.checkpoints), m.virtual_seconds,
      m.throughput, m.p50_micros, m.p99_micros,
      m.ledgers_balanced ? "true" : "false",
      static_cast<unsigned long long>(m.state_digest));
  return buffer;
}

}  // namespace sl::lease
