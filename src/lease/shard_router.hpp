// Shard router — the front door of the multi-tenant SL-Remote service.
//
// Licenses are routed to one of N RemoteShards by a stable hash of
// (customer, license): a lease's pool, outstanding map and durable record
// live on exactly one shard, so per-lease conservation and the Algorithm 1
// concurrent-requesters view are untouched by sharding (nodes sharing a
// multi-party license belong to the same customer and therefore hash to the
// same shard). Routing requires lease ids to be unique across customers —
// the vendor authority already issues them that way.
//
// Two client surfaces:
//  * the router-level API (register_client/submit/drain_all) used by the
//    closed-loop load generator and the differential tests — telemetry-only
//    registration, explicit backpressure, batched drains;
//  * ShardGateway, a RemoteGateway implementation that lets an unmodified
//    SL-Local stack run against the sharded server inside the simulation
//    engine: remote attestation happens once against the customer's home
//    shard, and admission is replicated to other shards internally (no
//    client-visible latency), so a 1-shard deployment behaves exactly like
//    the paper's serial SL-Remote.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "lease/gateway.hpp"
#include "lease/remote_shard.hpp"

namespace sl::core {
class Scheduler;  // core/scheduler.hpp; break the include cycle
}

namespace sl::lease {

class ShardRouter {
 public:
  using CustomerId = std::uint64_t;
  using ClientId = std::uint64_t;

  ShardRouter(const LicenseAuthority& authority, sgx::AttestationService& ias,
              sgx::Measurement expected_sl_local, std::size_t shard_count,
              ShardConfig config = {});

  // Stable routing hash; identical across runs, platforms and shard objects.
  static std::size_t shard_of(CustomerId customer, LeaseId lease,
                              std::size_t shard_count);
  std::size_t shard_of(CustomerId customer, LeaseId lease) const;
  // Lifecycle (init/escrow) shard for a customer's nodes.
  std::size_t home_shard(CustomerId customer) const;

  std::size_t shard_count() const { return shards_.size(); }
  RemoteShard& shard(std::size_t index) { return *shards_[index]; }
  const RemoteShard& shard(std::size_t index) const { return *shards_[index]; }

  void provision(CustomerId customer, const LicenseFile& license);
  void revoke(CustomerId customer, LeaseId lease);

  // Telemetry-only registration for router-level clients (the load
  // generator and tests); per-shard SLIDs are minted lazily on first use.
  void register_client(CustomerId customer, ClientId client, double health,
                       double network);

  // Routes and enqueues one renewal. Returns false when the owning shard's
  // queue is full (the Overloaded wire response); nothing is queued then and
  // the piggybacked consumption report is NOT applied.
  bool submit(CustomerId customer, ClientId client, const LicenseFile& license,
              std::uint64_t consumed, std::uint64_t ticket);

  struct Completion {
    std::size_t shard = 0;
    RenewOutcome outcome;
  };
  // Drains every shard (ascending index; deterministic) and returns the
  // flattened completions.
  std::vector<Completion> drain_all();

  // Synchronous single renewal on one shard (the gateway path): enqueue +
  // immediate drain, i.e. a batch of one. `request_id` (nonzero) is the
  // client's idempotency id, deduplicated by the shard across retries and
  // crash recovery.
  SlRemote::RenewResult renew_now(std::size_t shard, Slid slid,
                                  const LicenseFile& license, double health,
                                  double network, std::uint64_t consumed,
                                  std::uint64_t request_id = 0);

  std::optional<LeaseLedger> ledger(CustomerId customer, LeaseId lease) const;
  // Every provisioned lease across all shards, ascending (each lease lives
  // on exactly one shard, so the merge has no duplicates).
  std::vector<std::pair<LeaseId, LeaseLedger>> ledgers() const;

  SlRemoteStats aggregate_stats() const;
  ShardStats aggregate_shard_stats() const;
  // Furthest shard clock — the virtual wall time of the parallel service.
  double virtual_seconds() const;
  // Chained per-shard state digests (ascending shard index). The _full
  // variant chains each shard's from-scratch rehash oracle instead of the
  // incremental tree — bench gates compare the two to catch a stale cached
  // leaf leaking into the fast path.
  std::uint64_t state_digest();
  std::uint64_t state_digest_full() const;

 private:
  struct ClientState {
    double health = 1.0;
    double network = 1.0;
    std::unordered_map<std::size_t, Slid> slids;  // shard -> SLID
  };

  Slid slid_for(CustomerId customer, ClientId client, std::size_t shard);

  std::vector<std::unique_ptr<RemoteShard>> shards_;
  // Ordered map: deterministic iteration for digests and diagnostics.
  std::map<std::pair<CustomerId, ClientId>, ClientState> clients_;
};

// RemoteGateway adapter: one SL-Local's view of the sharded service.
//
// Remote attestation runs once, against the customer's home shard, charging
// the client clock as the serial server would. Registration on other shards
// is internal replication (admission control re-verifies the cached quote
// but charges a private clock), so client-visible timing with shard_count=1
// is bit-for-bit the DirectGateway behavior. Crash/restart semantics hold
// per shard: a non-graceful re-init is propagated to every shard holding
// state for the node, forfeiting its outstanding sub-GCLs there
// (Section 5.7); graceful shutdown splits the unused-count report by owning
// shard and escrows the root key with the home shard.
class ShardGateway : public RemoteGateway {
 public:
  ShardGateway(ShardRouter& router, ShardRouter::CustomerId customer,
               net::SimNetwork& network, net::NodeId node, SimClock& clock);

  // Routes this gateway's renewals through `scheduler` instead of calling
  // the router directly — with a ThreadScheduler attached, each renewal
  // executes on the owning shard's worker thread (a targeted epoch). Null
  // restores the direct path. The scheduler must wrap the same router.
  void attach_scheduler(core::Scheduler* scheduler) {
    scheduler_ = scheduler;
  }

  std::optional<SlRemote::InitResult> init(const sgx::Quote& quote,
                                           Slid claimed_slid) override;
  std::optional<SlRemote::RenewResult> renew(Slid slid, const LicenseFile& license,
                                             double health, double network,
                                             std::uint64_t consumed,
                                             std::uint64_t request_id = 0) override;
  bool graceful_shutdown(
      Slid slid, std::uint64_t root_key,
      const std::unordered_map<LeaseId, std::uint64_t>& unused) override;
  bool attest(const sgx::Quote& quote) override;

 private:
  // Lazy admission: mints this node's SLID on `shard` by re-verifying the
  // cached init quote (internal, no client-visible latency). Returns 0 when
  // the node never completed an init.
  Slid shard_slid(std::size_t shard);

  ShardRouter& router_;
  core::Scheduler* scheduler_ = nullptr;  // optional execution backend
  ShardRouter::CustomerId customer_;
  net::SimNetwork& network_;
  net::NodeId node_;
  SimClock& clock_;          // client clock: RA latency + link round trips
  SimClock replica_clock_;   // internal replication; never client-visible
  std::optional<sgx::Quote> admission_quote_;
  std::unordered_map<std::size_t, Slid> slids_;  // shard -> SLID
};

}  // namespace sl::lease
