// Generalized count-based lease (GCL) — paper Section 4.3.
//
// One abstraction models every license type a lease manager supports:
// the lease carries a counter that is decremented when some condition is
// fulfilled; at zero the lease has expired. Perpetual, wall-time,
// execution-time and count-based leases all reduce to a counter plus a
// little extra state (the time of the last measurement).
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace sl::lease {

enum class LeaseKind : std::uint8_t {
  kPerpetual = 0,      // counter is vacuous; 1 = activated, 0 = revoked
  kTimeBased = 1,      // counter = remaining wall-clock intervals
  kExecutionTime = 2,  // counter = remaining execution-time intervals
  kCountBased = 3,     // counter = remaining executions
};

const char* lease_kind_name(LeaseKind kind);

class Gcl {
 public:
  Gcl() = default;

  // `count`: executions for kCountBased, intervals for the time kinds,
  // ignored (forced to 1) for kPerpetual. `interval_seconds` is the
  // discretization step for the time-based kinds (paper example: 1 day).
  Gcl(LeaseKind kind, std::uint64_t count, double interval_seconds = 86'400.0);

  LeaseKind kind() const { return kind_; }
  std::uint64_t count() const { return count_; }
  bool expired() const { return count_ == 0; }

  // Advances lease time to `now_seconds` (absolute). Time-based leases
  // burn one count per elapsed interval — including intervals that passed
  // while the system was off (Section 4.3). Execution-time leases burn
  // only when `executing` is true.
  void advance_time(double now_seconds, bool executing = false);

  // Consumes up to `n` executions; returns how many were granted (always
  // n or 0 for perpetual/time kinds: they gate on expiry, not count).
  std::uint64_t try_consume(std::uint64_t n);

  // Revocation = counter := 0 (Section 4.3).
  void revoke() { count_ = 0; }

  // Removes and returns every remaining count. Graceful-shutdown path
  // (Section 5.6): the counts are reported back to SL-Remote's pool, so
  // the escrowed tree image must not retain a spendable copy.
  std::uint64_t take_all() {
    const std::uint64_t taken = count_;
    count_ = 0;
    return taken;
  }

  // Restores `n` counts (used by SL-Remote when re-absorbing an unused
  // sub-GCL on graceful shutdown).
  void credit(std::uint64_t n) { count_ += n; }

  // Fixed-size (24-byte) serialization embedded in the lease payload.
  Bytes serialize() const;
  // Writes kSerializedSize bytes at `out` — the per-renewal record update
  // serializes into the record's own buffer without allocating.
  void serialize_to(std::uint8_t* out) const;
  static std::optional<Gcl> deserialize(ByteView data);
  static constexpr std::size_t kSerializedSize = 24;

  bool operator==(const Gcl&) const = default;

 private:
  LeaseKind kind_ = LeaseKind::kCountBased;
  std::uint64_t count_ = 0;
  double interval_seconds_ = 86'400.0;
  double last_measurement_seconds_ = 0.0;  // GCL extra state (Section 4.3)
};

}  // namespace sl::lease
