// Wire protocol between SL-Local and SL-Remote (Figure 3's secure channel).
//
// Every protocol step is a serialized request/response over the RPC channel
// of src/net: init (carrying the quote), lease renewal (carrying the license
// file and node telemetry), consumption reports, and graceful shutdown
// (escrowing the root key and unused counts). The server adapter exposes an
// SlRemote instance behind an RpcServer; the client stub gives SL-Local-side
// code a typed interface. Payloads are length-prefixed little-endian fields
// (see each message's serialize()); malformed payloads are rejected, never
// trusted.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "lease/sl_remote.hpp"
#include "net/channel.hpp"

namespace sl::lease::wire {

// --- Messages -----------------------------------------------------------------

struct InitRequest {
  Slid claimed_slid = 0;
  sgx::Quote quote;

  Bytes serialize() const;
  static std::optional<InitRequest> deserialize(ByteView data);
};

struct InitResponse {
  bool ok = false;
  Slid slid = 0;
  std::uint64_t old_backup_key = 0;
  bool restore_allowed = false;

  Bytes serialize() const;
  static std::optional<InitResponse> deserialize(ByteView data);
};

struct RenewRequest {
  Slid slid = 0;
  LicenseFile license;
  double health = 1.0;
  double network = 1.0;
  // Consumption observed since the last report (piggybacked).
  std::uint64_t consumed = 0;
  // Client-chosen idempotency id (0 = none). Appended to the frame; absent
  // on old-format frames, which decode with request_id = 0.
  std::uint64_t request_id = 0;

  Bytes serialize() const;
  static std::optional<RenewRequest> deserialize(ByteView data);
};

struct RenewResponse {
  bool ok = false;
  std::uint64_t granted = 0;
  // Backpressure from a sharded deployment: the owning shard's bounded
  // queue was full and the request was never processed — retry later.
  // The serial server adapter always answers false.
  bool overloaded = false;

  Bytes serialize() const;
  static std::optional<RenewResponse> deserialize(ByteView data);
};

struct ShutdownRequest {
  Slid slid = 0;
  std::uint64_t root_key = 0;
  std::unordered_map<LeaseId, std::uint64_t> unused;

  Bytes serialize() const;
  static std::optional<ShutdownRequest> deserialize(ByteView data);
};

// --- Server adapter --------------------------------------------------------------

// Registers the protocol methods ("sl.init", "sl.renew", "sl.shutdown") on
// an RpcServer, dispatching into `remote`. The RA latency for init is
// charged via the clock reference the caller supplies per request — the
// adapter uses the server-side clock passed at construction.
class SlRemoteService {
 public:
  SlRemoteService(SlRemote& remote, net::RpcServer& server, SimClock& clock);

 private:
  SlRemote& remote_;
  SimClock& clock_;
};

// --- Client stub --------------------------------------------------------------------

class SlRemoteClient {
 public:
  explicit SlRemoteClient(net::RpcClient& rpc);

  std::optional<InitResponse> init(const InitRequest& request);
  std::optional<RenewResponse> renew(const RenewRequest& request);
  bool shutdown(const ShutdownRequest& request);
  // Stand-alone remote attestation ("sl.attest").
  bool attest(const sgx::Quote& quote);

 private:
  net::RpcClient& rpc_;
};

// Quote/report (de)serialization shared by the messages.
Bytes serialize_quote(const sgx::Quote& quote);
std::optional<sgx::Quote> deserialize_quote(ByteView data, std::size_t& offset);

}  // namespace sl::lease::wire
