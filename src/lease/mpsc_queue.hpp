// Bounded lock-free multi-producer/single-consumer queue.
//
// The hand-off structure between renewal producers (the load generator's
// client threads, the scheduler's submit path) and a shard's worker thread
// in the thread-per-shard backend (docs/THREADING.md). Design follows the
// classic bounded MPMC ring of per-cell sequence numbers (Vyukov): each cell
// carries an atomic sequence that encodes whether it is free for the
// producer of ticket `pos` or holds the value for the consumer of ticket
// `pos`, so producers claim cells with one CAS and neither side ever takes a
// lock. Restricted here to one consumer, which lets the pop side use plain
// loads on `tail_`.
//
// Ordering guarantees the differential tests rely on:
//  * per-producer FIFO: one thread's pushes are CAS-ordered on `head_`, so
//    they occupy ascending cells and pop in submission order;
//  * bounded: `try_push` fails (backpressure, never blocks) when `capacity`
//    items are in flight — the thread backend sizes the ring to the shard's
//    queue capacity so ring rejects model the Overloaded wire response;
//  * no loss or duplication: a cell's sequence admits exactly one producer
//    claim and one consumer claim per lap (test_thread_primitives.cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/error.hpp"

namespace sl::lease {

template <typename T>
class MpscQueue {
 public:
  // Capacity is rounded up to a power of two (masking beats modulo on the
  // hot path); at least 2.
  explicit MpscQueue(std::size_t capacity) {
    require(capacity >= 1, "MpscQueue: capacity must be >= 1");
    std::size_t rounded = 2;
    while (rounded < capacity) rounded <<= 1;
    mask_ = rounded - 1;
    cells_ = std::make_unique<Cell[]>(rounded);
    for (std::size_t i = 0; i < rounded; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // Multi-producer push; false when the ring is full. Never blocks.
  bool try_push(T&& item) {
    Cell* cell = nullptr;
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        // Cell is free for ticket `pos`: claim it.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        // The consumer has not recycled this cell yet: ring is full.
        return false;
      } else {
        // Another producer claimed `pos`; reload and retry.
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(item);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  // Single-consumer pop; false when empty (or when the next cell's producer
  // has claimed but not yet published — the consumer simply retries later).
  bool try_pop(T& out) {
    const std::uint64_t pos = tail_;  // single consumer: no atomicity needed
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1) <
        0) {
      return false;
    }
    out = std::move(cell.value);
    cell.value = T{};  // drop payload references eagerly
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    tail_ = pos + 1;
    return true;
  }

  // Producer-side estimate; exact when no push/pop is in flight.
  std::size_t approx_size() const {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_;
    return head >= tail ? static_cast<std::size_t>(head - tail) : 0;
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  // Producers and the consumer touch disjoint cache lines.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::uint64_t tail_ = 0;
};

}  // namespace sl::lease
