#include "lease/sl_local.hpp"

#include "common/log.hpp"
#include "common/rng.hpp"
#include "lease/gateway.hpp"

namespace sl::lease {

namespace {
constexpr const char* kEnclaveName = "sl-local-enclave-v1";
constexpr std::size_t kEnclaveHeapBytes = 8ull * 1024 * 1024;
// Transport attempts per logical renewal (each attempt is itself a
// round_trip with the link's own retry/backoff policy underneath).
constexpr int kRenewAttempts = 2;
}  // namespace

sgx::Measurement SlLocal::expected_measurement() {
  return sgx::measure(kEnclaveName);
}

SlLocal::SlLocal(sgx::SgxRuntime& runtime, sgx::Platform& platform,
                 std::unique_ptr<RemoteGateway> owned_gateway,
                 RemoteGateway* gateway, double link_reliability,
                 UntrustedStore& store, SlLocalOptions options)
    : runtime_(runtime),
      platform_(platform),
      owned_gateway_(std::move(owned_gateway)),
      gateway_(owned_gateway_ != nullptr ? owned_gateway_.get() : gateway),
      link_reliability_(link_reliability),
      store_(store),
      options_(options) {
  ensure(gateway_ != nullptr, "SlLocal: no gateway");
  sgx::Enclave& enclave = runtime_.create_enclave(kEnclaveName, kEnclaveHeapBytes);
  enclave_ = enclave.id();
  enclave.add_trusted_function("sl_local_init");
  enclave.add_trusted_function("sl_local_issue_lease");
  enclave.add_trusted_function("sl_local_shutdown");
  tree_ = std::make_unique<LeaseTree>(options_.keygen_seed, store_);
  // Session key for the manager-facing secure channel, derived inside the
  // enclave at startup.
  crypto::KeyGenerator keygen(options_.keygen_seed ^ 0x5e55104);
  session_key_ = keygen.next_key64();
}

SlLocal::SlLocal(sgx::SgxRuntime& runtime, sgx::Platform& platform, SlRemote& remote,
                 net::SimNetwork& network, net::NodeId node, UntrustedStore& store,
                 SlLocalOptions options)
    : SlLocal(runtime, platform,
              std::make_unique<DirectGateway>(remote, network, node,
                                              runtime.clock()),
              nullptr, network.link(node).reliability, store, options) {}

SlLocal::SlLocal(sgx::SgxRuntime& runtime, sgx::Platform& platform,
                 RemoteGateway& gateway, double link_reliability,
                 UntrustedStore& store, SlLocalOptions options)
    : SlLocal(runtime, platform, nullptr, &gateway, link_reliability, store,
              options) {}

SlLocal::~SlLocal() = default;

bool SlLocal::init(Slid saved_slid) {
  Bytes report_data;
  put_u64(report_data, saved_slid);
  const sgx::Quote quote = platform_.create_quote(enclave_, report_data);
  const auto result = gateway_->init(quote, saved_slid);
  if (!result.has_value()) {
    log_error("SL-Local: network down during init");
    return false;
  }
  if (!result->ok) return false;
  slid_ = result->slid;

  if (result->restore_allowed && result->old_backup_key != 0 &&
      tree_->root_handle() != 0) {
    // ECALL: restore the saved lease tree under the old-backup-key.
    bool restored = false;
    runtime_.ecall(enclave_, "sl_local_init", /*work=*/50'000, kNodeBytes, [&] {
      restored = tree_->restore(result->old_backup_key, tree_->root_handle());
    });
    if (!restored) {
      log_error("SL-Local: saved state failed validation; starting empty");
      tree_ = std::make_unique<LeaseTree>(options_.keygen_seed + 1, store_);
    }
  }
  boot_nonce_ =
      splitmix64_key(runtime_.clock().cycles() ^ slid_, options_.keygen_seed) | 1;
  renew_counter_ = 0;
  ready_ = true;
  log_info("SL-Local: ready, SLID=", slid_);
  return true;
}

bool SlLocal::renew_from_remote(const LicenseFile& license) {
  if (options_.renewal_ra_seconds > 0.0) {
    // F-LaaS baseline: the license service remote-attests the client on
    // every renewal.
    Bytes report_data;
    put_u64(report_data, slid_);
    const sgx::Quote quote = platform_.create_quote(enclave_, report_data);
    if (!gateway_->attest(quote)) {
      stats_.renewal_failures++;
      return false;
    }
  }
  // Report consumption observed since the last renewal so SL-Remote's
  // outstanding-exposure view stays accurate (piggybacked on the request).
  std::uint64_t consumed = 0;
  auto consumed_it = consumed_unreported_.find(license.lease_id);
  if (consumed_it != consumed_unreported_.end()) {
    consumed = consumed_it->second;
  }
  // One id per logical renewal: a transport-level retry reuses it, so a
  // request whose response was lost is answered from the server's
  // idempotency table instead of burning the pool twice.
  const std::uint64_t request_id = boot_nonce_ + ++renew_counter_;
  std::optional<SlRemote::RenewResult> result;
  for (int attempt = 0; attempt < kRenewAttempts; ++attempt) {
    result = gateway_->renew(slid_, license, options_.health,
                             link_reliability_, consumed, request_id);
    if (result.has_value()) break;  // reached the server (granted or denied)
  }
  if (!result.has_value() || !result->ok) {
    stats_.renewal_failures++;
    return false;
  }
  if (consumed_it != consumed_unreported_.end()) consumed_it->second = 0;
  stats_.renewals++;

  // Install (or top up) the lease in the tree.
  LeaseRecord* record = tree_->find(license.lease_id);
  if (record == nullptr) {
    tree_->insert(license.lease_id, Gcl(license.kind, result->granted,
                                        license.interval_seconds));
  } else {
    record->spin_lock();
    Gcl gcl = record->gcl();
    gcl.credit(result->granted);
    record->set_gcl(gcl);
    record->spin_unlock();
  }
  return true;
}

std::optional<ExecutionToken> SlLocal::issue_lease(
    const sgx::Report& manager_report, const sgx::Measurement& manager_identity,
    const LicenseFile& license) {
  ensure(ready_, "SlLocal::issue_lease: not initialized");
  stats_.lease_requests++;

  // Section 5.4: SL-Manager and SL-Local validate each other via local
  // attestation before any lease is issued.
  stats_.local_attestations++;
  if (!platform_.verify_report(manager_report, manager_identity)) {
    stats_.denials++;
    return std::nullopt;
  }

  std::optional<ExecutionToken> token;
  runtime_.ecall(enclave_, "sl_local_issue_lease", /*work=*/5'000, kLeaseBytes, [&] {
    LeaseRecord* record = tree_->find(license.lease_id);
    const std::uint32_t want = options_.tokens_per_attestation;

    auto try_issue = [&](LeaseRecord* rec) -> bool {
      if (rec == nullptr) return false;
      rec->spin_lock();
      Gcl gcl = rec->gcl();
      gcl.advance_time(runtime_.clock().seconds(), /*executing=*/true);
      const std::uint64_t granted = gcl.try_consume(want);
      if (granted > 0) rec->set_gcl(gcl);
      rec->spin_unlock();
      if (granted == 0) return false;
      consumed_unreported_[license.lease_id] += granted;
      token = issue_token(session_key_, license.lease_id,
                          static_cast<std::uint32_t>(granted),
                          static_cast<std::uint64_t>(runtime_.clock().millis()),
                          token_nonce_++);
      return true;
    };

    if (!try_issue(record)) {
      // Local sub-GCL missing or exhausted: fetch more from SL-Remote
      // (Figure 3, step 3) and retry once.
      runtime_.ocall(/*untrusted_work=*/1'000);  // network I/O leaves the enclave
      if (renew_from_remote(license)) {
        try_issue(tree_->find(license.lease_id));
      }
    }
  });

  if (token.has_value()) {
    stats_.tokens_issued += token->executions;
  } else {
    stats_.denials++;
  }
  return token;
}

void SlLocal::shutdown() {
  if (!ready_) return;
  std::unordered_map<LeaseId, std::uint64_t> unused;
  std::uint64_t root_key = 0;
  // No separate consumption report is needed: the unused counts below are
  // read from the tree (which already excludes locally-consumed tokens),
  // and SL-Remote treats the rest of the outstanding exposure as consumed.
  runtime_.ecall(enclave_, "sl_local_shutdown", /*work=*/100'000, kNodeBytes, [&] {
    for (const auto& [lease, consumed] : consumed_unreported_) {
      LeaseRecord* record = tree_->find(lease);
      if (record == nullptr) continue;
      // The reported counts flow back into SL-Remote's pool, so the tree
      // must not escrow a spendable copy: a restore would otherwise hold
      // counts the server already re-credited (double-spend).
      Gcl gcl = record->gcl();
      unused[lease] = gcl.take_all();
      record->set_gcl(gcl);
    }
    root_key = tree_->shutdown();
  });
  if (!gateway_->graceful_shutdown(slid_, root_key, unused)) {
    log_error("SL-Local: could not reach SL-Remote during shutdown; "
              "next init will be treated as a crash");
    ready_ = false;
    return;
  }
  consumed_unreported_.clear();
  ready_ = false;
  log_info("SL-Local: graceful shutdown, root key escrowed");
}

void SlLocal::crash() {
  // No commit, no escrow: the EPC contents evaporate.
  tree_ = std::make_unique<LeaseTree>(options_.keygen_seed + 17, store_);
  consumed_unreported_.clear();
  ready_ = false;
}

}  // namespace sl::lease
