// SL-Local's view of SL-Remote.
//
// SL-Local talks to the server through this narrow interface so the same
// service logic runs over either transport:
//  * DirectGateway — in-process dispatch onto an SlRemote instance, with
//    network latency/reliability charged per call (the default used by the
//    benchmarks; deterministic and fast);
//  * WireGateway — full serialization through the wire protocol and the
//    RPC channel of src/net (what a deployment would do).
#pragma once

#include <memory>
#include <optional>

#include "lease/sl_remote.hpp"
#include "lease/wire.hpp"
#include "net/network.hpp"

namespace sl::lease {

class RemoteGateway {
 public:
  virtual ~RemoteGateway() = default;

  // Transport failures surface as nullopt/false; protocol-level denials
  // come back inside the result.
  virtual std::optional<SlRemote::InitResult> init(const sgx::Quote& quote,
                                                   Slid claimed_slid) = 0;
  // `request_id` (nonzero) makes the renewal idempotent on servers that
  // keep an idempotency table (the sharded durable deployment); a retry
  // with the same id returns the recorded outcome instead of double-
  // burning the pool. 0 opts out (the serial server ignores it).
  virtual std::optional<SlRemote::RenewResult> renew(Slid slid,
                                                     const LicenseFile& license,
                                                     double health, double network,
                                                     std::uint64_t consumed,
                                                     std::uint64_t request_id = 0) = 0;
  virtual bool graceful_shutdown(
      Slid slid, std::uint64_t root_key,
      const std::unordered_map<LeaseId, std::uint64_t>& unused) = 0;
  // Stand-alone remote attestation (the F-LaaS per-renewal flow).
  virtual bool attest(const sgx::Quote& quote) = 0;
};

// In-process dispatch with per-call link simulation.
class DirectGateway : public RemoteGateway {
 public:
  DirectGateway(SlRemote& remote, net::SimNetwork& network, net::NodeId node,
                SimClock& clock);

  std::optional<SlRemote::InitResult> init(const sgx::Quote& quote,
                                           Slid claimed_slid) override;
  std::optional<SlRemote::RenewResult> renew(Slid slid, const LicenseFile& license,
                                             double health, double network,
                                             std::uint64_t consumed,
                                             std::uint64_t request_id = 0) override;
  bool graceful_shutdown(
      Slid slid, std::uint64_t root_key,
      const std::unordered_map<LeaseId, std::uint64_t>& unused) override;
  bool attest(const sgx::Quote& quote) override;

  double link_reliability() const { return network_.link(node_).reliability; }

 private:
  SlRemote& remote_;
  net::SimNetwork& network_;
  net::NodeId node_;
  SimClock& clock_;
};

// Serialized transport over the RPC channel.
class WireGateway : public RemoteGateway {
 public:
  // `rpc` must be bound to a server hosting a wire::SlRemoteService.
  explicit WireGateway(net::RpcClient& rpc);

  std::optional<SlRemote::InitResult> init(const sgx::Quote& quote,
                                           Slid claimed_slid) override;
  std::optional<SlRemote::RenewResult> renew(Slid slid, const LicenseFile& license,
                                             double health, double network,
                                             std::uint64_t consumed,
                                             std::uint64_t request_id = 0) override;
  bool graceful_shutdown(
      Slid slid, std::uint64_t root_key,
      const std::unordered_map<LeaseId, std::uint64_t>& unused) override;
  bool attest(const sgx::Quote& quote) override;

 private:
  wire::SlRemoteClient client_;
};

}  // namespace sl::lease
