// SL-Remote — the trusted license server (paper Sections 4.4, 5.1).
//
// Responsibilities:
//  * validates licenses issued by the vendor authority;
//  * registers SL-Local instances: remote-attests them (via the IAS-role
//    attestation service), assigns SLIDs, and escrows old-backup-keys;
//  * serves RenewLease requests with the Algorithm 1 heuristic;
//  * enforces the pessimistic crash policy of Section 5.7: an SL-Local
//    that re-initializes without a matching graceful-shutdown record
//    forfeits every outstanding sub-GCL.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lease/license.hpp"
#include "lease/renewal.hpp"
#include "sgxsim/attestation.hpp"

namespace sl::lease {

using Slid = std::uint64_t;

struct SlRemoteStats {
  std::uint64_t remote_attestations = 0;
  std::uint64_t registrations = 0;
  std::uint64_t renewals = 0;
  std::uint64_t renewals_denied = 0;
  std::uint64_t forfeited_gcls = 0;   // lost to the pessimistic crash policy
  std::uint64_t reclaimed_gcls = 0;   // returned on graceful shutdown
};

// Per-lease double-entry view of the GCL pool (Sections 5.5, 5.7). Every
// provisioned count is, at any instant, in exactly one bucket; the
// simulation oracles assert balanced() after every event.
struct LeaseLedger {
  std::uint64_t provisioned = 0;  // TG at provision time
  std::uint64_t pool = 0;         // undistributed (includes re-credits)
  std::uint64_t outstanding = 0;  // sub-GCLs held by live SL-Locals
  std::uint64_t consumed = 0;     // reported consumed or settled at shutdown
  std::uint64_t forfeited = 0;    // pessimistic crash policy (Section 5.7)
  std::uint64_t revoked = 0;      // zeroed by an explicit revocation

  std::uint64_t accounted() const {
    return pool + outstanding + consumed + forfeited + revoked;
  }
  bool balanced() const { return accounted() == provisioned; }

  bool operator==(const LeaseLedger&) const = default;
};

class SlRemote {
 public:
  SlRemote(const LicenseAuthority& authority, sgx::AttestationService& ias,
           sgx::Measurement expected_sl_local, double ra_latency_seconds = 3.5);

  // --- License provisioning (vendor side) ---------------------------------
  // Makes `license` renewable with TG = license.total_count.
  void provision(const LicenseFile& license);
  std::optional<std::uint64_t> remaining_pool(LeaseId lease) const;
  // Revocation: zero the pool; subsequent renewals are denied.
  void revoke(LeaseId lease);

  // --- SL-Local lifecycle ----------------------------------------------------
  struct InitResult {
    bool ok = false;
    Slid slid = 0;
    std::uint64_t old_backup_key = 0;  // OBK; 0 on first init or after crash
    bool restore_allowed = false;      // false => crash was assumed
  };
  // `quote` proves the caller is a genuine SL-Local enclave. `claimed_slid`
  // is 0 for a first init. `clock` is charged the RA latency.
  InitResult init_sl_local(const sgx::Quote& quote, Slid claimed_slid,
                           SimClock& clock);

  // Stand-alone remote attestation (no lifecycle side effects); the F-LaaS
  // baseline performs one of these per renewal.
  bool attest_only(const sgx::Quote& quote, SimClock& clock);

  // Graceful shutdown: escrows the root key; unused sub-GCL counts are
  // reported back per lease and re-credited to the pools.
  void graceful_shutdown(Slid slid, std::uint64_t root_key,
                         const std::unordered_map<LeaseId, std::uint64_t>& unused);

  // --- Renewal ------------------------------------------------------------------
  struct RenewResult {
    bool ok = false;
    std::uint64_t granted = 0;
  };
  // Validates the license, then runs Algorithm 1 over the nodes currently
  // holding this lease. `health`/`network` are SL-Remote's current estimate
  // for the requesting node.
  RenewResult renew(Slid slid, const LicenseFile& license, double health,
                    double network);

  // Marks `count` sub-GCLs as consumed on the node (SL-Local reports usage
  // with its next renewal; consumption shrinks the outstanding exposure).
  void report_consumed(Slid slid, LeaseId lease, std::uint64_t count);

  // Simulation hook: registers a peer node that already holds `outstanding`
  // sub-GCLs of `lease`, so Algorithm 1 sees C concurrent requesters (the
  // multi-party shared-license setting of Section 5.3). Returns its SLID.
  Slid seed_peer(LeaseId lease, std::uint64_t outstanding, double health,
                 double network);

  // Registers a node without remote attestation and mints its SLID. Used by
  // the shard router for clients admitted at the routing layer (the load
  // generator and the differential tests), where RA already happened against
  // the customer's home shard.
  Slid register_peer(double health, double network);

  RenewalParams& params() { return params_; }
  const SlRemoteStats& stats() const { return stats_; }
  // Zeroes the counters. Recovery replay re-drives the mutation paths, so a
  // recovering shard resets them afterwards and re-adds the carried totals.
  void reset_stats() { stats_ = SlRemoteStats{}; }

  // --- Recovery appliers (write-ahead-journal replay) ----------------------
  // Replay applies journaled *outcomes* directly: same ledger arithmetic as
  // the live paths, but no attestation, no Algorithm 1 re-run, and explicit
  // SLIDs (the journal is the allocator of record). See durability.hpp.

  // Re-registers `slid` exactly as journaled and advances the SLID allocator
  // past it.
  void apply_register(Slid slid, double health, double network);
  // Re-init without a graceful record: Section 5.7 forfeiture, then alive.
  void apply_crash_reinit(Slid slid);
  // Re-init with a graceful record: alive again, escrow cleared.
  void apply_graceful_reinit(Slid slid);
  // One journaled renewal outcome: consumption report, telemetry update and
  // (when granted > 0) the pool -> outstanding transfer.
  void apply_renewal(Slid slid, LeaseId lease, std::uint64_t consumed,
                     std::uint64_t granted, double health, double network);

  // --- Checkpoint snapshot ---------------------------------------------------
  // Deterministic serialization of pools, local records and the SLID
  // allocator (sorted iteration; stats are observability-only and excluded).
  Bytes serialize_state() const;
  // Replaces the full state from serialize_state() output; false on a
  // malformed snapshot (state is unspecified then — callers fail recovery).
  bool restore_state(ByteView data);

  // --- Oracle accessors -----------------------------------------------------
  // Conservation ledger for one lease; nullopt when never provisioned.
  std::optional<LeaseLedger> ledger(LeaseId lease) const;
  // Every lease id ever provisioned, ascending (deterministic iteration for
  // traces and oracles regardless of hash-map order). The _into variant
  // reuses the caller's capacity for per-drain digest paths.
  std::vector<LeaseId> provisioned_leases() const;
  void provisioned_leases_into(std::vector<LeaseId>& out) const;

 private:
  struct LeasePool {
    LicenseFile license;
    std::uint64_t remaining = 0;
    // outstanding sub-GCLs per SLID.
    std::unordered_map<Slid, std::uint64_t> outstanding;
    // Ledger buckets (remaining is the "pool" bucket).
    std::uint64_t provisioned = 0;
    std::uint64_t consumed = 0;
    std::uint64_t forfeited = 0;
    std::uint64_t revoked = 0;
  };
  struct LocalRecord {
    bool alive = false;
    bool graceful = false;
    std::uint64_t escrowed_root_key = 0;
    double health = 1.0;
    double network = 1.0;
  };

  void forfeit_outstanding(Slid slid);

  const LicenseAuthority& authority_;
  sgx::AttestationService& ias_;
  sgx::Measurement expected_sl_local_;
  double ra_latency_seconds_;
  RenewalParams params_;

  std::unordered_map<LeaseId, LeasePool> pools_;
  std::unordered_map<Slid, LocalRecord> locals_;
  Slid next_slid_ = 1;
  SlRemoteStats stats_;
  // renew() scratch: the Algorithm 1 requester view and the license MAC
  // payload reuse these buffers so the steady-state renewal path does not
  // touch the heap.
  std::vector<NodeState> renew_nodes_;
  std::vector<Slid> renew_slids_;
  Bytes license_payload_;
};

}  // namespace sl::lease
