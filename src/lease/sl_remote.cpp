#include "lease/sl_remote.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"

namespace sl::lease {

SlRemote::SlRemote(const LicenseAuthority& authority, sgx::AttestationService& ias,
                   sgx::Measurement expected_sl_local, double ra_latency_seconds)
    : authority_(authority),
      ias_(ias),
      expected_sl_local_(expected_sl_local),
      ra_latency_seconds_(ra_latency_seconds) {}

void SlRemote::provision(const LicenseFile& license) {
  require(authority_.validate(license), "provision: invalid license signature");
  LeasePool pool;
  pool.license = license;
  pool.remaining = license.total_count;
  pool.provisioned = license.total_count;
  pools_[license.lease_id] = std::move(pool);
}

std::optional<std::uint64_t> SlRemote::remaining_pool(LeaseId lease) const {
  auto it = pools_.find(lease);
  if (it == pools_.end()) return std::nullopt;
  return it->second.remaining;
}

void SlRemote::revoke(LeaseId lease) {
  auto it = pools_.find(lease);
  if (it == pools_.end()) return;
  // The pool and every outstanding sub-GCL move to the revoked bucket;
  // already-distributed counts cannot be clawed back from client caches,
  // but the ledger records them as written off.
  it->second.revoked += it->second.remaining;
  for (const auto& [slid, count] : it->second.outstanding) {
    it->second.revoked += count;
  }
  it->second.remaining = 0;
  it->second.outstanding.clear();
  log_info("SL-Remote: revoked lease ", lease);
}

SlRemote::InitResult SlRemote::init_sl_local(const sgx::Quote& quote,
                                             Slid claimed_slid, SimClock& clock) {
  InitResult result;
  stats_.remote_attestations++;
  if (!ias_.verify_quote(quote, expected_sl_local_, clock, ra_latency_seconds_)) {
    log_error("SL-Remote: remote attestation failed");
    return result;
  }

  if (claimed_slid == 0 || !locals_.contains(claimed_slid)) {
    // First initialization: mint an SLID.
    result.slid = next_slid_++;
    locals_[result.slid] = LocalRecord{.alive = true};
    result.ok = true;
    stats_.registrations++;
    return result;
  }

  LocalRecord& record = locals_[claimed_slid];
  result.slid = claimed_slid;
  result.ok = true;
  if (record.graceful) {
    // Clean restart: hand back the escrowed root key so the lease tree can
    // be restored (Section 5.6).
    result.old_backup_key = record.escrowed_root_key;
    result.restore_allowed = true;
  } else {
    // The previous instance crashed (or is being replayed): pessimistic
    // policy — every outstanding sub-GCL on that SLID is deemed consumed
    // (Section 5.7).
    forfeit_outstanding(claimed_slid);
  }
  record.alive = true;
  record.graceful = false;
  record.escrowed_root_key = 0;
  return result;
}

bool SlRemote::attest_only(const sgx::Quote& quote, SimClock& clock) {
  stats_.remote_attestations++;
  return ias_.verify_quote(quote, expected_sl_local_, clock, ra_latency_seconds_);
}

void SlRemote::forfeit_outstanding(Slid slid) {
  for (auto& [lease, pool] : pools_) {
    auto it = pool.outstanding.find(slid);
    if (it != pool.outstanding.end()) {
      stats_.forfeited_gcls += it->second;
      pool.forfeited += it->second;
      pool.outstanding.erase(it);
    }
  }
}

void SlRemote::graceful_shutdown(
    Slid slid, std::uint64_t root_key,
    const std::unordered_map<LeaseId, std::uint64_t>& unused) {
  auto it = locals_.find(slid);
  require(it != locals_.end(), "graceful_shutdown: unknown SLID");
  it->second.alive = false;
  it->second.graceful = true;
  it->second.escrowed_root_key = root_key;

  // Unused sub-GCL counts flow back into the pools; the rest of the
  // outstanding exposure is treated as consumed.
  for (const auto& [lease, count] : unused) {
    auto pool = pools_.find(lease);
    if (pool == pools_.end()) continue;
    auto out = pool->second.outstanding.find(slid);
    if (out == pool->second.outstanding.end()) continue;
    const std::uint64_t credited = std::min(count, out->second);
    pool->second.remaining += credited;
    stats_.reclaimed_gcls += credited;
    out->second -= credited;
  }
  for (auto& [lease, pool] : pools_) {
    auto out = pool.outstanding.find(slid);
    if (out == pool.outstanding.end()) continue;
    // Whatever was not reported unused settles as consumed.
    pool.consumed += out->second;
    pool.outstanding.erase(out);
  }
}

SlRemote::RenewResult SlRemote::renew(Slid slid, const LicenseFile& license,
                                      double health, double network) {
  RenewResult result;
  auto local = locals_.find(slid);
  if (local == locals_.end() || !local->second.alive) {
    stats_.renewals_denied++;
    return result;
  }
  if (!authority_.validate(license)) {
    // Invalid license information: no further executions for this file
    // (Section 4.4, step 3) — a likely breach attempt.
    stats_.renewals_denied++;
    log_error("SL-Remote: invalid license for lease ", license.lease_id);
    return result;
  }
  auto pool_it = pools_.find(license.lease_id);
  if (pool_it == pools_.end() || pool_it->second.remaining == 0) {
    stats_.renewals_denied++;
    return result;
  }
  LeasePool& pool = pool_it->second;
  local->second.health = health;
  local->second.network = network;

  // Build the concurrent-requesters view for Algorithm 1: every node that
  // currently holds (or is asking for) this lease.
  std::vector<NodeState> nodes;
  std::size_t requester_index = 0;
  std::vector<Slid> slids;
  for (const auto& [other_slid, outstanding] : pool.outstanding) {
    slids.push_back(other_slid);
  }
  if (!pool.outstanding.contains(slid)) slids.push_back(slid);
  for (std::size_t i = 0; i < slids.size(); ++i) {
    const LocalRecord& rec = locals_[slids[i]];
    NodeState state;
    state.alpha = 1.0;  // equal weights; alphas normalize to 1/C in Alg. 1
    state.health = rec.health;
    state.network = rec.network;
    auto out = pool.outstanding.find(slids[i]);
    state.outstanding = out == pool.outstanding.end() ? 0 : out->second;
    if (slids[i] == slid) requester_index = i;
    nodes.push_back(state);
  }

  const RenewalDecision decision =
      renew_lease(pool.remaining, nodes, requester_index, params_);
  if (decision.granted == 0) {
    stats_.renewals_denied++;
    return result;
  }
  pool.remaining -= decision.granted;
  pool.outstanding[slid] += decision.granted;
  stats_.renewals++;
  result.ok = true;
  result.granted = decision.granted;
  return result;
}

Slid SlRemote::seed_peer(LeaseId lease, std::uint64_t outstanding, double health,
                         double network) {
  auto pool = pools_.find(lease);
  require(pool != pools_.end(), "seed_peer: unknown lease");
  const Slid slid = next_slid_++;
  locals_[slid] = LocalRecord{.alive = true, .health = health, .network = network};
  const std::uint64_t granted = std::min(outstanding, pool->second.remaining);
  pool->second.remaining -= granted;
  pool->second.outstanding[slid] = granted;
  return slid;
}

Slid SlRemote::register_peer(double health, double network) {
  const Slid slid = next_slid_++;
  locals_[slid] = LocalRecord{.alive = true, .health = health, .network = network};
  stats_.registrations++;
  return slid;
}

void SlRemote::report_consumed(Slid slid, LeaseId lease, std::uint64_t count) {
  auto pool = pools_.find(lease);
  if (pool == pools_.end()) return;
  auto out = pool->second.outstanding.find(slid);
  if (out == pool->second.outstanding.end()) return;
  const std::uint64_t settled = std::min(out->second, count);
  out->second -= settled;
  pool->second.consumed += settled;
}

std::optional<LeaseLedger> SlRemote::ledger(LeaseId lease) const {
  auto it = pools_.find(lease);
  if (it == pools_.end()) return std::nullopt;
  const LeasePool& pool = it->second;
  LeaseLedger ledger;
  ledger.provisioned = pool.provisioned;
  ledger.pool = pool.remaining;
  for (const auto& [slid, count] : pool.outstanding) ledger.outstanding += count;
  ledger.consumed = pool.consumed;
  ledger.forfeited = pool.forfeited;
  ledger.revoked = pool.revoked;
  return ledger;
}

std::vector<LeaseId> SlRemote::provisioned_leases() const {
  std::vector<LeaseId> leases;
  leases.reserve(pools_.size());
  for (const auto& [lease, pool] : pools_) leases.push_back(lease);
  std::sort(leases.begin(), leases.end());
  return leases;
}

}  // namespace sl::lease
