#include "lease/sl_remote.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"
#include "common/log.hpp"

namespace sl::lease {

SlRemote::SlRemote(const LicenseAuthority& authority, sgx::AttestationService& ias,
                   sgx::Measurement expected_sl_local, double ra_latency_seconds)
    : authority_(authority),
      ias_(ias),
      expected_sl_local_(expected_sl_local),
      ra_latency_seconds_(ra_latency_seconds) {}

void SlRemote::provision(const LicenseFile& license) {
  require(authority_.validate(license), "provision: invalid license signature");
  LeasePool pool;
  pool.license = license;
  pool.remaining = license.total_count;
  pool.provisioned = license.total_count;
  pools_[license.lease_id] = std::move(pool);
}

std::optional<std::uint64_t> SlRemote::remaining_pool(LeaseId lease) const {
  auto it = pools_.find(lease);
  if (it == pools_.end()) return std::nullopt;
  return it->second.remaining;
}

void SlRemote::revoke(LeaseId lease) {
  auto it = pools_.find(lease);
  if (it == pools_.end()) return;
  // The pool and every outstanding sub-GCL move to the revoked bucket;
  // already-distributed counts cannot be clawed back from client caches,
  // but the ledger records them as written off.
  it->second.revoked += it->second.remaining;
  for (const auto& [slid, count] : it->second.outstanding) {
    it->second.revoked += count;
  }
  it->second.remaining = 0;
  it->second.outstanding.clear();
  log_info("SL-Remote: revoked lease ", lease);
}

SlRemote::InitResult SlRemote::init_sl_local(const sgx::Quote& quote,
                                             Slid claimed_slid, SimClock& clock) {
  InitResult result;
  stats_.remote_attestations++;
  if (!ias_.verify_quote(quote, expected_sl_local_, clock, ra_latency_seconds_)) {
    log_error("SL-Remote: remote attestation failed");
    return result;
  }

  if (claimed_slid == 0 || !locals_.contains(claimed_slid)) {
    // First initialization: mint an SLID.
    result.slid = next_slid_++;
    locals_[result.slid] = LocalRecord{.alive = true};
    result.ok = true;
    stats_.registrations++;
    return result;
  }

  LocalRecord& record = locals_[claimed_slid];
  result.slid = claimed_slid;
  result.ok = true;
  if (record.graceful) {
    // Clean restart: hand back the escrowed root key so the lease tree can
    // be restored (Section 5.6).
    result.old_backup_key = record.escrowed_root_key;
    result.restore_allowed = true;
  } else {
    // The previous instance crashed (or is being replayed): pessimistic
    // policy — every outstanding sub-GCL on that SLID is deemed consumed
    // (Section 5.7).
    forfeit_outstanding(claimed_slid);
  }
  record.alive = true;
  record.graceful = false;
  record.escrowed_root_key = 0;
  return result;
}

bool SlRemote::attest_only(const sgx::Quote& quote, SimClock& clock) {
  stats_.remote_attestations++;
  return ias_.verify_quote(quote, expected_sl_local_, clock, ra_latency_seconds_);
}

void SlRemote::forfeit_outstanding(Slid slid) {
  for (auto& [lease, pool] : pools_) {
    auto it = pool.outstanding.find(slid);
    if (it != pool.outstanding.end()) {
      stats_.forfeited_gcls += it->second;
      pool.forfeited += it->second;
      pool.outstanding.erase(it);
    }
  }
}

void SlRemote::graceful_shutdown(
    Slid slid, std::uint64_t root_key,
    const std::unordered_map<LeaseId, std::uint64_t>& unused) {
  auto it = locals_.find(slid);
  require(it != locals_.end(), "graceful_shutdown: unknown SLID");
  it->second.alive = false;
  it->second.graceful = true;
  it->second.escrowed_root_key = root_key;

  // Unused sub-GCL counts flow back into the pools; the rest of the
  // outstanding exposure is treated as consumed.
  for (const auto& [lease, count] : unused) {
    auto pool = pools_.find(lease);
    if (pool == pools_.end()) continue;
    auto out = pool->second.outstanding.find(slid);
    if (out == pool->second.outstanding.end()) continue;
    const std::uint64_t credited = std::min(count, out->second);
    pool->second.remaining += credited;
    stats_.reclaimed_gcls += credited;
    out->second -= credited;
  }
  for (auto& [lease, pool] : pools_) {
    auto out = pool.outstanding.find(slid);
    if (out == pool.outstanding.end()) continue;
    // Whatever was not reported unused settles as consumed.
    pool.consumed += out->second;
    pool.outstanding.erase(out);
  }
}

SlRemote::RenewResult SlRemote::renew(Slid slid, const LicenseFile& license,
                                      double health, double network) {
  RenewResult result;
  auto local = locals_.find(slid);
  if (local == locals_.end() || !local->second.alive) {
    stats_.renewals_denied++;
    return result;
  }
  if (!authority_.validate_with_scratch(license, license_payload_)) {
    // Invalid license information: no further executions for this file
    // (Section 4.4, step 3) — a likely breach attempt.
    stats_.renewals_denied++;
    log_error("SL-Remote: invalid license for lease ", license.lease_id);
    return result;
  }
  auto pool_it = pools_.find(license.lease_id);
  if (pool_it == pools_.end() || pool_it->second.remaining == 0) {
    stats_.renewals_denied++;
    return result;
  }
  LeasePool& pool = pool_it->second;
  local->second.health = health;
  local->second.network = network;

  // Build the concurrent-requesters view for Algorithm 1: every node that
  // currently holds (or is asking for) this lease. The scratch vectors keep
  // their capacity across calls.
  std::vector<NodeState>& nodes = renew_nodes_;
  nodes.clear();
  std::size_t requester_index = 0;
  std::vector<Slid>& slids = renew_slids_;
  slids.clear();
  for (const auto& [other_slid, outstanding] : pool.outstanding) {
    slids.push_back(other_slid);
  }
  if (!pool.outstanding.contains(slid)) slids.push_back(slid);
  for (std::size_t i = 0; i < slids.size(); ++i) {
    const LocalRecord& rec = locals_[slids[i]];
    NodeState state;
    state.alpha = 1.0;  // equal weights; alphas normalize to 1/C in Alg. 1
    state.health = rec.health;
    state.network = rec.network;
    auto out = pool.outstanding.find(slids[i]);
    state.outstanding = out == pool.outstanding.end() ? 0 : out->second;
    if (slids[i] == slid) requester_index = i;
    nodes.push_back(state);
  }

  const RenewalDecision decision =
      renew_lease(pool.remaining, nodes, requester_index, params_);
  if (decision.granted == 0) {
    stats_.renewals_denied++;
    return result;
  }
  pool.remaining -= decision.granted;
  pool.outstanding[slid] += decision.granted;
  stats_.renewals++;
  result.ok = true;
  result.granted = decision.granted;
  return result;
}

Slid SlRemote::seed_peer(LeaseId lease, std::uint64_t outstanding, double health,
                         double network) {
  auto pool = pools_.find(lease);
  require(pool != pools_.end(), "seed_peer: unknown lease");
  const Slid slid = next_slid_++;
  locals_[slid] = LocalRecord{.alive = true, .health = health, .network = network};
  const std::uint64_t granted = std::min(outstanding, pool->second.remaining);
  pool->second.remaining -= granted;
  pool->second.outstanding[slid] = granted;
  return slid;
}

Slid SlRemote::register_peer(double health, double network) {
  const Slid slid = next_slid_++;
  locals_[slid] = LocalRecord{.alive = true, .health = health, .network = network};
  stats_.registrations++;
  return slid;
}

void SlRemote::report_consumed(Slid slid, LeaseId lease, std::uint64_t count) {
  auto pool = pools_.find(lease);
  if (pool == pools_.end()) return;
  auto out = pool->second.outstanding.find(slid);
  if (out == pool->second.outstanding.end()) return;
  const std::uint64_t settled = std::min(out->second, count);
  out->second -= settled;
  pool->second.consumed += settled;
}

void SlRemote::apply_register(Slid slid, double health, double network) {
  locals_[slid] = LocalRecord{.alive = true, .health = health, .network = network};
  if (slid >= next_slid_) next_slid_ = slid + 1;
  stats_.registrations++;
}

void SlRemote::apply_crash_reinit(Slid slid) {
  forfeit_outstanding(slid);
  LocalRecord& record = locals_[slid];
  record.alive = true;
  record.graceful = false;
  record.escrowed_root_key = 0;
  if (slid >= next_slid_) next_slid_ = slid + 1;
}

void SlRemote::apply_graceful_reinit(Slid slid) {
  LocalRecord& record = locals_[slid];
  record.alive = true;
  record.graceful = false;
  record.escrowed_root_key = 0;
  if (slid >= next_slid_) next_slid_ = slid + 1;
}

void SlRemote::apply_renewal(Slid slid, LeaseId lease, std::uint64_t consumed,
                             std::uint64_t granted, double health,
                             double network) {
  if (consumed > 0) report_consumed(slid, lease, consumed);
  auto local = locals_.find(slid);
  if (local != locals_.end()) {
    local->second.health = health;
    local->second.network = network;
  }
  if (granted == 0) return;
  auto pool = pools_.find(lease);
  ensure(pool != pools_.end() && pool->second.remaining >= granted,
         "apply_renewal: journaled grant exceeds recovered pool");
  pool->second.remaining -= granted;
  pool->second.outstanding[slid] += granted;
  stats_.renewals++;
}

Bytes SlRemote::serialize_state() const {
  Bytes out;
  put_u64(out, next_slid_);

  const std::vector<LeaseId> leases = provisioned_leases();
  put_u32(out, static_cast<std::uint32_t>(leases.size()));
  for (const LeaseId lease : leases) {
    const LeasePool& pool = pools_.at(lease);
    put_u32(out, lease);
    const Bytes license = pool.license.serialize();
    put_u32(out, static_cast<std::uint32_t>(license.size()));
    out.insert(out.end(), license.begin(), license.end());
    put_u64(out, pool.remaining);
    put_u64(out, pool.provisioned);
    put_u64(out, pool.consumed);
    put_u64(out, pool.forfeited);
    put_u64(out, pool.revoked);
    std::vector<std::pair<Slid, std::uint64_t>> outstanding(
        pool.outstanding.begin(), pool.outstanding.end());
    std::sort(outstanding.begin(), outstanding.end());
    put_u32(out, static_cast<std::uint32_t>(outstanding.size()));
    // detlint:allow(unordered-iteration) sorted vector copy, not the map
    for (const auto& [slid, count] : outstanding) {
      put_u64(out, slid);
      put_u64(out, count);
    }
  }

  std::vector<Slid> slids;
  slids.reserve(locals_.size());
  // detlint:allow(unordered-iteration) keys are collected then sorted below
  for (const auto& [slid, record] : locals_) slids.push_back(slid);
  std::sort(slids.begin(), slids.end());
  put_u32(out, static_cast<std::uint32_t>(slids.size()));
  // detlint:allow(unordered-iteration) sorted vector; name-collides with
  // the unordered shard map in shard_router.hpp
  for (const Slid slid : slids) {
    const LocalRecord& record = locals_.at(slid);
    put_u64(out, slid);
    out.push_back(record.alive ? 1 : 0);
    out.push_back(record.graceful ? 1 : 0);
    put_u64(out, record.escrowed_root_key);
    put_u64(out, std::bit_cast<std::uint64_t>(record.health));
    put_u64(out, std::bit_cast<std::uint64_t>(record.network));
  }
  return out;
}

bool SlRemote::restore_state(ByteView data) {
  const auto fits = [&](std::size_t offset, std::size_t need) {
    return offset <= data.size() && data.size() - offset >= need;
  };
  pools_.clear();
  locals_.clear();
  std::size_t offset = 0;
  if (!fits(offset, 12)) return false;
  next_slid_ = get_u64(data, offset);
  offset += 8;
  const std::uint32_t pool_count = get_u32(data, offset);
  offset += 4;
  for (std::uint32_t i = 0; i < pool_count; ++i) {
    if (!fits(offset, 8)) return false;
    const LeaseId lease = get_u32(data, offset);
    const std::uint32_t license_len = get_u32(data, offset + 4);
    offset += 8;
    if (license_len > 4096 || !fits(offset, license_len)) return false;
    auto license = LicenseFile::deserialize(
        ByteView(data.data() + offset, license_len));
    if (!license.has_value()) return false;
    offset += license_len;
    if (!fits(offset, 5 * 8 + 4)) return false;
    LeasePool pool;
    pool.license = std::move(*license);
    pool.remaining = get_u64(data, offset);
    pool.provisioned = get_u64(data, offset + 8);
    pool.consumed = get_u64(data, offset + 16);
    pool.forfeited = get_u64(data, offset + 24);
    pool.revoked = get_u64(data, offset + 32);
    offset += 40;
    const std::uint32_t out_count = get_u32(data, offset);
    offset += 4;
    if (!fits(offset, static_cast<std::size_t>(out_count) * 16)) return false;
    for (std::uint32_t j = 0; j < out_count; ++j) {
      pool.outstanding[get_u64(data, offset)] = get_u64(data, offset + 8);
      offset += 16;
    }
    pools_[lease] = std::move(pool);
  }
  if (!fits(offset, 4)) return false;
  const std::uint32_t local_count = get_u32(data, offset);
  offset += 4;
  if (!fits(offset, static_cast<std::size_t>(local_count) * 34)) return false;
  for (std::uint32_t i = 0; i < local_count; ++i) {
    const Slid slid = get_u64(data, offset);
    LocalRecord record;
    record.alive = data[offset + 8] != 0;
    record.graceful = data[offset + 9] != 0;
    record.escrowed_root_key = get_u64(data, offset + 10);
    record.health = std::bit_cast<double>(get_u64(data, offset + 18));
    record.network = std::bit_cast<double>(get_u64(data, offset + 26));
    offset += 34;
    locals_[slid] = record;
  }
  return offset == data.size();
}

std::optional<LeaseLedger> SlRemote::ledger(LeaseId lease) const {
  auto it = pools_.find(lease);
  if (it == pools_.end()) return std::nullopt;
  const LeasePool& pool = it->second;
  LeaseLedger ledger;
  ledger.provisioned = pool.provisioned;
  ledger.pool = pool.remaining;
  // detlint:allow(unordered-iteration) order-independent sum
  for (const auto& [slid, count] : pool.outstanding) ledger.outstanding += count;
  ledger.consumed = pool.consumed;
  ledger.forfeited = pool.forfeited;
  ledger.revoked = pool.revoked;
  return ledger;
}

std::vector<LeaseId> SlRemote::provisioned_leases() const {
  std::vector<LeaseId> leases;
  provisioned_leases_into(leases);
  return leases;
}

void SlRemote::provisioned_leases_into(std::vector<LeaseId>& out) const {
  out.clear();
  out.reserve(pools_.size());
  // detlint:allow(unordered-iteration) keys are collected then sorted below
  for (const auto& [lease, pool] : pools_) out.push_back(lease);
  std::sort(out.begin(), out.end());
}

}  // namespace sl::lease
