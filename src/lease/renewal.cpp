#include "lease/renewal.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sl::lease {

double expected_loss(const std::vector<NodeState>& nodes) {
  double loss = 0.0;
  for (const NodeState& node : nodes) {
    loss += static_cast<double>(node.outstanding) * (1.0 - node.health);
  }
  return loss;
}

RenewalDecision renew_lease(std::uint64_t total_gcl,
                            const std::vector<NodeState>& nodes,
                            std::size_t requester, const RenewalParams& params) {
  require(requester < nodes.size(), "renew_lease: bad requester index");
  require(params.D >= 1.0, "renew_lease: D must be >= 1");

  RenewalDecision decision;
  if (total_gcl == 0) return decision;

  const NodeState& me = nodes[requester];
  const double C = static_cast<double>(nodes.size());
  const double TG = static_cast<double>(total_gcl);

  // Line 3: this node's fair share of the pool.
  const double G_i = me.alpha * TG / std::max(1.0, C);
  // Line 4: default scale-down policy.
  double g_i = G_i / params.D;
  // Line 5: crash penalty.
  g_i *= me.health;
  // Lines 6-8: network bonus for healthy nodes, capped at the fair share.
  if (me.health > params.T_H) {
    const double n = std::max(me.network, 1e-3);  // a dead link cannot divide by 0
    g_i = std::min(G_i, g_i / n);
  }

  // Lines 9-17: bound the expected loss by tau via the per-license scale
  // factor beta. ExpLoss is evaluated as if this grant were outstanding.
  const double tau = params.tau_fraction * TG;
  double beta = params.beta;
  double loss = expected_loss(nodes) + g_i * (1.0 - me.health);
  if (loss > tau) {
    // Scale g_i down until the projected loss is within tau. Each round
    // shrinks beta by the fractional excess (Line 12) and re-applies it.
    int rounds = 0;
    while (loss > tau && g_i >= 1.0 && rounds < 64) {
      beta = beta * ((loss - tau) / loss);
      if (beta <= 0.0) beta = 1e-6;
      g_i = beta * g_i;
      loss = expected_loss(nodes) + g_i * (1.0 - me.health);
      rounds++;
    }
    if (loss > tau) g_i = 0.0;  // cannot grant without breaching the cap
  } else {
    // Line 16: scale up into the unused loss headroom.
    beta = (tau - loss) / tau;
    g_i = std::min(G_i, g_i * (1.0 + beta));
  }

  decision.granted =
      std::min<std::uint64_t>(total_gcl, static_cast<std::uint64_t>(std::floor(g_i)));
  decision.beta_used = beta;

  // ExpLoss is linear in outstanding, so projecting this grant onto the
  // requester is a scalar adjustment — no copy of the node view (this sits
  // on the zero-alloc renewal hot path).
  decision.expected_loss =
      expected_loss(nodes) +
      static_cast<double>(decision.granted) * (1.0 - me.health);
  return decision;
}

}  // namespace sl::lease
