#include "lease/gcl.hpp"

#include <cmath>
#include <cstring>

#include "common/error.hpp"

namespace sl::lease {

const char* lease_kind_name(LeaseKind kind) {
  switch (kind) {
    case LeaseKind::kPerpetual: return "perpetual";
    case LeaseKind::kTimeBased: return "time-based";
    case LeaseKind::kExecutionTime: return "execution-time";
    case LeaseKind::kCountBased: return "count-based";
  }
  return "?";
}

Gcl::Gcl(LeaseKind kind, std::uint64_t count, double interval_seconds)
    : kind_(kind),
      count_(kind == LeaseKind::kPerpetual ? 1 : count),
      interval_seconds_(interval_seconds) {
  require(interval_seconds > 0.0, "Gcl: interval must be positive");
}

void Gcl::advance_time(double now_seconds, bool executing) {
  if (now_seconds <= last_measurement_seconds_) return;
  const double elapsed = now_seconds - last_measurement_seconds_;

  switch (kind_) {
    case LeaseKind::kPerpetual:
    case LeaseKind::kCountBased:
      break;  // counters unaffected by time
    case LeaseKind::kTimeBased: {
      const auto intervals = static_cast<std::uint64_t>(elapsed / interval_seconds_);
      count_ -= std::min(count_, intervals);
      // Keep the fractional remainder by moving the watermark in whole
      // intervals only.
      last_measurement_seconds_ +=
          static_cast<double>(intervals) * interval_seconds_;
      return;
    }
    case LeaseKind::kExecutionTime: {
      if (executing) {
        const auto intervals = static_cast<std::uint64_t>(elapsed / interval_seconds_);
        count_ -= std::min(count_, intervals);
      }
      break;
    }
  }
  last_measurement_seconds_ = now_seconds;
}

std::uint64_t Gcl::try_consume(std::uint64_t n) {
  if (expired()) return 0;
  switch (kind_) {
    case LeaseKind::kPerpetual:
    case LeaseKind::kTimeBased:
    case LeaseKind::kExecutionTime:
      // These gate on expiry only; executions are unlimited while valid.
      return n;
    case LeaseKind::kCountBased: {
      // All-or-nothing: a partial grant would leave the caller with fewer
      // tokens than it asked to batch.
      if (count_ < n) return 0;
      count_ -= n;
      return n;
    }
  }
  return 0;
}

Bytes Gcl::serialize() const {
  Bytes out(kSerializedSize);
  serialize_to(out.data());
  return out;
}

void Gcl::serialize_to(std::uint8_t* out) const {
  const auto w32 = [&](std::size_t off, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  const auto w64 = [&](std::size_t off, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  w32(0, static_cast<std::uint32_t>(kind_));
  w64(4, count_);
  // Interval and watermark quantized to milliseconds.
  w32(12, static_cast<std::uint32_t>(interval_seconds_ * 1e3));
  w64(16, static_cast<std::uint64_t>(last_measurement_seconds_ * 1e3));
}

std::optional<Gcl> Gcl::deserialize(ByteView data) {
  if (data.size() < kSerializedSize) return std::nullopt;
  const std::uint32_t kind = get_u32(data, 0);
  if (kind > static_cast<std::uint32_t>(LeaseKind::kCountBased)) return std::nullopt;
  Gcl gcl;
  gcl.kind_ = static_cast<LeaseKind>(kind);
  gcl.count_ = get_u64(data, 4);
  gcl.interval_seconds_ = static_cast<double>(get_u32(data, 12)) / 1e3;
  if (gcl.interval_seconds_ <= 0.0) gcl.interval_seconds_ = 86'400.0;
  gcl.last_measurement_seconds_ = static_cast<double>(get_u64(data, 16)) / 1e3;
  return gcl;
}

}  // namespace sl::lease
