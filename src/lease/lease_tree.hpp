// The lease tree (paper Sections 5.2, 5.5, 5.6).
//
// Leases live in a 4-level page-table-like radix tree inside the enclave:
// every node is one 4 KB page of 256 entries (16 B each: a 64-bit key and a
// 64-bit pointer), and the 32-bit lease id is consumed 8 bits per level.
// Leaves are 312-byte lease records (32-bit lock, 64-bit hash, 300 B data
// holding the GCL). Cold subtrees are "committed": hashed, encrypted under
// a fresh random key stored in the parent entry (Algorithms 2/3), and
// evicted to untrusted memory — giving ACIF guarantees with the root as
// the in-EPC root of trust. At shutdown the root itself commits and its key
// escrows to SL-Remote.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "crypto/keygen.hpp"
#include "lease/arena.hpp"
#include "lease/gcl.hpp"
#include "lease/license.hpp"
#include "obs/metrics.hpp"

namespace sl::lease {

inline constexpr std::size_t kTreeFanout = 256;   // 8 bits per level
inline constexpr int kTreeLevels = 4;             // 32-bit ids
inline constexpr std::size_t kNodeBytes = 4096;   // one page per node
inline constexpr std::size_t kLeaseDataBytes = 300;
inline constexpr std::size_t kLeaseBytes = 312;   // 4 lock + 8 hash + 300 data

// The 312-byte leaf record. The spin lock serializes concurrent attestation
// requests for the same lease (sgx_spin_lock in the paper).
struct LeaseRecord {
  std::atomic<std::uint32_t> lock{0};
  std::uint64_t hash = 0;  // 64-bit integrity hash over data
  std::array<std::uint8_t, kLeaseDataBytes> data{};

  // The GCL lives at the front of `data`; the rest is license metadata.
  Gcl gcl() const;
  void set_gcl(const Gcl& gcl);
  void recompute_hash();
  bool hash_valid() const;

  void spin_lock();
  void spin_unlock();
};

// Untrusted backing store for committed nodes/leases: ciphertexts indexed
// by an opaque handle. Exposes tampering hooks so tests can mount replay
// attacks (Section 5.7).
class UntrustedStore {
 public:
  std::uint64_t put(Bytes ciphertext);
  void overwrite(std::uint64_t handle, Bytes ciphertext);
  // Replaces the blob behind a live handle, reusing its capacity — the
  // incremental commit path rewrites the same slot every re-seal.
  void update(std::uint64_t handle, ByteView ciphertext);
  std::optional<Bytes> get(std::uint64_t handle) const;
  void erase(std::uint64_t handle);
  std::size_t size() const { return blobs_.size(); }
  std::uint64_t bytes() const { return total_bytes_; }
  // Live handles in ascending order (deterministic pick for tampering
  // hooks, independent of hash-map iteration order).
  std::vector<std::uint64_t> handles() const;

 private:
  std::unordered_map<std::uint64_t, Bytes> blobs_;
  std::uint64_t next_handle_ = 1;
  std::uint64_t total_bytes_ = 0;  // sum of blob sizes, kept current by mutators
};

struct LeaseTreeStats {
  std::uint64_t finds = 0;
  std::uint64_t hits = 0;
  std::uint64_t inserts = 0;
  std::uint64_t commits = 0;       // leases/nodes sealed + offloaded
  std::uint64_t clean_skips = 0;   // cache-mode commits skipped: image current
  std::uint64_t restores = 0;      // decrypt + validate on demand
  std::uint64_t validation_failures = 0;
};

class LeaseTree {
 public:
  // `keygen_seed` seeds RandomKeyGen() (Algorithm 2); `store` is the
  // untrusted region that receives committed payloads. When `arenas` is
  // non-null, interior nodes and lease records are placed in its slabs
  // instead of the heap — the steady-state renewal path then allocates
  // nothing. The arenas must outlive the tree and must not be shared with
  // another tree on a different thread (SlabArena is not thread-safe).
  LeaseTree(std::uint64_t keygen_seed, UntrustedStore& store,
            TreeArenas* arenas = nullptr);
  ~LeaseTree();

  // Arenas correctly sized for this tree's node kinds (Node is private, so
  // callers cannot compute the cell sizes themselves).
  static std::unique_ptr<TreeArenas> make_arenas();

  LeaseTree(const LeaseTree&) = delete;
  LeaseTree& operator=(const LeaseTree&) = delete;

  // Inserts (or replaces) the lease for `id`.
  void insert(LeaseId id, const Gcl& gcl);

  // Finds the lease record, transparently restoring a committed subtree.
  // Returns nullptr when absent or when a restore fails validation.
  LeaseRecord* find(LeaseId id);

  // Removes the lease; returns true when present.
  bool erase(LeaseId id);

  // Commits one lease (Section 5.5): locks it, seals data||hash under a
  // fresh key stored in the parent entry, moves the ciphertext to the
  // untrusted store and frees the EPC copy.
  bool commit_lease(LeaseId id);

  // Commits every cold lease + interior node except the root; used to keep
  // the EPC footprint flat (Table 6). In cache mode this becomes an
  // incremental pass: only dirty paths re-seal and residents stay in the
  // EPC (clean subtrees are skipped via the per-node dirty bit).
  void commit_all_cold();

  // Write-through commit cache (incremental hashing): committed leaves stay
  // resident in the EPC and re-seal only when dirty; committing a clean
  // cached leaf is a no-op. Off by default (legacy evict-on-commit).
  void set_cache_commits(bool on) { cache_commits_ = on; }
  bool cache_commits() const { return cache_commits_; }

  // Marks the path to `id` dirty. insert() does this implicitly; callers
  // that mutate a record obtained from find() must call it themselves so
  // the next incremental commit re-seals the leaf.
  void mark_dirty(LeaseId id);

  // Budget-driven eviction: when set (> 0), the tree keeps its resident
  // footprint at or below `bytes` by committing the least-recently-used
  // level-3 subtrees after inserts/restores. 0 disables the policy.
  void set_resident_budget(std::uint64_t bytes);
  std::uint64_t resident_budget() const { return resident_budget_; }

  // Graceful shutdown (Section 5.6): commits everything including the
  // root; returns the root key (key_R) that must escrow to SL-Remote.
  std::uint64_t shutdown();

  // Restores a tree from the untrusted store given the escrowed root key
  // and the root handle returned by shutdown(). Returns false when
  // validation fails (tampering/replay).
  bool restore(std::uint64_t root_key, std::uint64_t root_handle);
  std::uint64_t root_handle() const { return root_handle_; }

  // Enumerates every lease id currently reachable (resident AND committed
  // subtrees, without faulting them in), in ascending order. Intended for
  // administrative tooling; O(reachable entries).
  std::vector<LeaseId> enumerate() const;

  // EPC-resident bytes: interior nodes (4 KB each) + leaf records (312 B).
  std::uint64_t resident_bytes() const;
  // Number of lease records currently resident in the EPC (committed
  // leases are excluded until faulted back in).
  std::uint64_t lease_count() const { return lease_count_; }
  const LeaseTreeStats& stats() const { return stats_; }

 private:
  struct Node;
  struct Entry {
    std::uint64_t key = 0;       // decryption key of a committed child
    Node* child = nullptr;       // resident interior node (levels 0-2)
    LeaseRecord* leaf = nullptr; // resident lease (level 3)
    std::uint64_t handle = 0;    // untrusted-store handle when committed
    bool committed = false;
    // Cache mode only: the resident copy diverged from the store image.
    // A leaf entry may be committed AND resident (write-through cache);
    // legacy mode keeps the two states mutually exclusive.
    bool dirty = false;
    bool empty() const { return child == nullptr && leaf == nullptr && !committed; }
  };
  struct Node {
    std::array<Entry, kTreeFanout> entries{};
    std::uint16_t live_entries = 0;
    bool dirty = false;             // subtree holds dirty entries (cache mode)
    std::uint64_t last_access = 0;  // recency tick for budget eviction
  };

  static std::size_t index_at(LeaseId id, int level);
  Node* alloc_node();
  void free_node(Node* node);
  LeaseRecord* alloc_leaf();
  void free_leaf(LeaseRecord* leaf);
  Node* descend(LeaseId id, bool create, int levels);
  bool restore_entry(Entry& entry, int level);
  void commit_entry(Entry& entry, int level, bool evict = true);
  void commit_dirty(Entry& entry, int level);
  Bytes serialize_node(const Node& node) const;
  static bool deserialize_node(ByteView data, Node& node);
  Bytes serialize_leaf(const LeaseRecord& leaf) const;
  void serialize_leaf_into(const LeaseRecord& leaf, Bytes& out) const;
  void free_subtree(Node* node, int level);
  std::uint64_t count_resident(const Node* node, int level) const;
  void enforce_budget();
  void enumerate_into(const Node* node, int level, LeaseId prefix,
                      std::vector<LeaseId>& out) const;
  void collect_leaf_parents(Node* node, int level,
                            std::vector<Entry*>& out_entries,
                            std::vector<std::uint64_t>& out_access);

  Node* root_ = nullptr;  // arena- or heap-owned; released via free_node()
  crypto::KeyGenerator keygen_;
  UntrustedStore& store_;
  TreeArenas* arenas_ = nullptr;
  std::uint64_t lease_count_ = 0;
  std::uint64_t root_handle_ = 0;
  std::uint64_t resident_budget_ = 0;
  std::uint64_t access_tick_ = 0;
  bool cache_commits_ = false;
  // Seal scratch buffers: the steady-state dirty-leaf re-seal reuses their
  // capacity instead of allocating per commit.
  Bytes leaf_scratch_;
  Bytes seal_scratch_;
  LeaseTreeStats stats_;
  // Metric handles, resolved once at construction (null when compiled out).
  obs::Counter* obs_commits_ = nullptr;
  obs::Counter* obs_restores_ = nullptr;
  obs::Counter* obs_offloads_ = nullptr;
  obs::Counter* obs_validation_failures_ = nullptr;
};

}  // namespace sl::lease
