// License files — the credential a user presents to an SL-Manager.
//
// A license binds a product/add-on identifier to a lease specification and
// is signed by the vendor (HMAC under the vendor key, which SL-Remote also
// holds). SL-Local forwards unknown licenses to SL-Remote, which validates
// the signature before issuing GCLs (Figure 3, step 3).
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"
#include "lease/gcl.hpp"

namespace sl::lease {

// 32-bit lease id: indexes the lease tree (8 bits per level).
using LeaseId = std::uint32_t;

struct LicenseFile {
  LeaseId lease_id = 0;
  std::string product;         // e.g. "matlab/signal-toolbox"
  LeaseKind kind = LeaseKind::kCountBased;
  std::uint64_t total_count = 0;  // TG: total GCLs behind this license
  double interval_seconds = 86'400.0;
  crypto::Sha256Digest signature{};  // vendor HMAC over the fields above

  Bytes signed_payload() const;
  // Scratch-buffer variant: clears `payload` and serializes into it, reusing
  // its capacity — the renewal hot path validates without allocating.
  void signed_payload_into(Bytes& payload) const;
  Bytes serialize() const;  // payload + signature
  static std::optional<LicenseFile> deserialize(ByteView data);
};

// Vendor-side issuing and validation.
class LicenseAuthority {
 public:
  explicit LicenseAuthority(std::uint64_t vendor_secret);

  LicenseFile issue(LeaseId lease_id, std::string product, LeaseKind kind,
                    std::uint64_t total_count, double interval_seconds = 86'400.0) const;

  bool validate(const LicenseFile& license) const;
  // Hot-path variant: serializes the signed payload into `scratch` (capacity
  // reused across calls) instead of allocating a fresh buffer per check.
  bool validate_with_scratch(const LicenseFile& license, Bytes& scratch) const;

 private:
  Bytes vendor_key_;
};

}  // namespace sl::lease
