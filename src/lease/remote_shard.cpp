#include "lease/remote_shard.hpp"

#include <utility>

#include "crypto/murmur.hpp"

namespace sl::lease {

const char* renew_status_name(RenewStatus status) {
  switch (status) {
    case RenewStatus::kGranted: return "granted";
    case RenewStatus::kDenied: return "denied";
    case RenewStatus::kOverloaded: return "overloaded";
  }
  return "?";
}

RemoteShard::RemoteShard(const LicenseAuthority& authority,
                         sgx::AttestationService& ias,
                         sgx::Measurement expected_sl_local, ShardConfig config)
    : remote_(authority, ias, expected_sl_local, config.ra_latency_seconds),
      tree_(config.keygen_seed, store_),
      config_(config) {}

void RemoteShard::provision(const LicenseFile& license) {
  remote_.provision(license);
  // Durable pool image: the record mirrors the remaining pool as a plain
  // counter (the server never advances lease time — clients do).
  tree_.insert(license.lease_id,
               Gcl(LeaseKind::kCountBased, license.total_count));
  commit_lease_record(license.lease_id);
}

void RemoteShard::revoke(LeaseId lease) {
  remote_.revoke(lease);
  LeaseRecord* record = tree_.find(lease);
  if (record != nullptr) {
    record->set_gcl(Gcl(LeaseKind::kCountBased, 0));
    commit_lease_record(lease);
  }
}

bool RemoteShard::enqueue(PendingRenew request) {
  if (queue_.size() >= config_.queue_capacity) {
    stats_.overloads++;
    return false;
  }
  queue_.push_back(std::move(request));
  stats_.enqueued++;
  return true;
}

void RemoteShard::commit_lease_record(LeaseId lease) {
  // Section 5.5: seal data||hash under a fresh key and move the ciphertext
  // to the untrusted store. find() faults it back in transparently.
  if (tree_.find(lease) != nullptr) tree_.commit_lease(lease);
}

std::vector<RenewOutcome> RemoteShard::drain() {
  const Cycles drain_start = clock_.cycles();
  std::vector<RenewOutcome> outcomes;
  outcomes.reserve(queue_.size());

  // Group FIFO: within a license requests keep submission order, so the
  // Algorithm 1 decisions are exactly those of serial processing; across
  // licenses groups run in first-appearance order (decisions for different
  // licenses are independent, so cross-license order cannot matter).
  std::vector<std::pair<LeaseId, std::vector<PendingRenew>>> groups;
  while (!queue_.empty()) {
    PendingRenew request = std::move(queue_.front());
    queue_.pop_front();
    const LeaseId lease = request.license.lease_id;
    if (config_.batching) {
      bool placed = false;
      for (auto& [group_lease, members] : groups) {
        if (group_lease == lease) {
          members.push_back(std::move(request));
          placed = true;
          break;
        }
      }
      if (!placed) groups.emplace_back(lease, std::vector<PendingRenew>{std::move(request)});
    } else {
      groups.emplace_back(lease, std::vector<PendingRenew>{std::move(request)});
    }
  }

  for (auto& [lease, members] : groups) {
    const std::size_t first_outcome = outcomes.size();
    for (PendingRenew& request : members) {
      if (request.consumed > 0) {
        remote_.report_consumed(request.slid, lease, request.consumed);
      }
      const SlRemote::RenewResult result = remote_.renew(
          request.slid, request.license, request.health, request.network);
      clock_.advance_cycles(config_.cycles_per_renewal);
      stats_.busy_cycles += config_.cycles_per_renewal;
      stats_.processed++;
      RenewOutcome outcome;
      outcome.ticket = request.ticket;
      outcome.status = result.ok ? RenewStatus::kGranted : RenewStatus::kDenied;
      outcome.granted = result.granted;
      (result.ok ? stats_.granted : stats_.denied)++;
      outcomes.push_back(outcome);
    }

    // One encrypt-and-hash commit for the whole group — the amortization the
    // batcher buys. The record content depends only on the post-group pool,
    // so K coalesced renewals and K serial renewals produce the same record
    // (and the same integrity hash); only the commit count differs.
    const auto remaining = remote_.remaining_pool(lease);
    LeaseRecord* record = tree_.find(lease);
    const Gcl pool_gcl(LeaseKind::kCountBased, remaining.value_or(0));
    if (record == nullptr) {
      tree_.insert(lease, pool_gcl);
    } else {
      record->set_gcl(pool_gcl);
    }
    commit_lease_record(lease);
    clock_.advance_cycles(config_.cycles_per_commit);
    stats_.busy_cycles += config_.cycles_per_commit;
    stats_.batches++;

    const Cycles completed = clock_.cycles();
    for (std::size_t i = first_outcome; i < outcomes.size(); ++i) {
      outcomes[i].completed_at = completed;
      outcomes[i].latency = completed - drain_start;
    }
  }
  return outcomes;
}

std::uint64_t RemoteShard::state_digest() {
  std::uint64_t digest = 0x5ea1d;
  for (const LeaseId lease : remote_.provisioned_leases()) {
    const auto ledger = remote_.ledger(lease);
    Bytes buffer;
    put_u32(buffer, lease);
    put_u64(buffer, ledger->provisioned);
    put_u64(buffer, ledger->pool);
    put_u64(buffer, ledger->outstanding);
    put_u64(buffer, ledger->consumed);
    put_u64(buffer, ledger->forfeited);
    put_u64(buffer, ledger->revoked);
    LeaseRecord* record = tree_.find(lease);
    put_u64(buffer, record != nullptr ? record->hash : 0);
    digest = crypto::murmur3_64(buffer, digest);
  }
  return digest;
}

}  // namespace sl::lease
