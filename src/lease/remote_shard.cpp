#include "lease/remote_shard.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "crypto/murmur.hpp"

namespace sl::lease {

namespace {

constexpr std::uint32_t kCheckpointVersion = 1;

// Numeric shard id for replication frame addressing; obs_shard is the shard
// index rendered by the router ("0", "1", ...), anything else maps to 0.
std::uint32_t parse_shard_id(const std::string& obs_shard) {
  std::uint32_t id = 0;
  for (const char c : obs_shard) {
    if (c < '0' || c > '9') return 0;
    id = id * 10 + static_cast<std::uint32_t>(c - '0');
  }
  return id;
}

void add_stats(SlRemoteStats& into, const SlRemoteStats& delta) {
  into.remote_attestations += delta.remote_attestations;
  into.registrations += delta.registrations;
  into.renewals += delta.renewals;
  into.renewals_denied += delta.renewals_denied;
  into.forfeited_gcls += delta.forfeited_gcls;
  into.reclaimed_gcls += delta.reclaimed_gcls;
}

}  // namespace

const char* renew_status_name(RenewStatus status) {
  switch (status) {
    case RenewStatus::kGranted: return "granted";
    case RenewStatus::kDenied: return "denied";
    case RenewStatus::kOverloaded: return "overloaded";
  }
  return "?";
}

RemoteShard::RemoteShard(const LicenseAuthority& authority,
                         sgx::AttestationService& ias,
                         sgx::Measurement expected_sl_local, ShardConfig config)
    : authority_(authority),
      ias_(ias),
      expected_sl_local_(expected_sl_local),
      remote_(std::make_unique<SlRemote>(authority, ias, expected_sl_local,
                                         config.ra_latency_seconds)),
      arenas_(LeaseTree::make_arenas()),
      tree_(std::make_unique<LeaseTree>(config.keygen_seed, store_,
                                        arenas_.get())),
      config_(config) {
  bool genesis_replicated = false;
  // Batched framing pairs with the incremental tree: committed leaves stay
  // cached in the EPC and only dirty paths re-seal. Legacy framing keeps
  // the evict-on-commit tree for the differential baselines.
  if (!config_.legacy_framing) tree_->set_cache_commits(true);
  queue_slots_.resize(config_.queue_capacity);
  const obs::Labels shard_label = {{"shard", config_.obs_shard}};
  obs_enqueued_ = obs::get_counter("sl_lease_renewals_enqueued_total",
                                   "Renewals accepted into the shard queue",
                                   shard_label);
  obs_overloads_ = obs::get_counter(
      "sl_lease_backpressure_drops_total",
      "Renewals rejected at the bounded queue (backpressure)", shard_label);
  obs_down_rejections_ =
      obs::get_counter("sl_lease_down_rejections_total",
                       "Renewals rejected because the shard was down",
                       shard_label);
  obs_processed_ = obs::get_counter("sl_lease_renewals_processed_total",
                                    "Renewals processed through Algorithm 1",
                                    shard_label);
  obs_deduped_ = obs::get_counter(
      "sl_lease_renewals_deduped_total",
      "Renewals answered from the idempotency table", shard_label);
  obs_batches_ = obs::get_counter(
      "sl_lease_batch_commits_total",
      "Tree commits (one per coalesced license group)", shard_label);
  obs_granted_ = obs::get_counter("sl_lease_renewals_granted_total",
                                  "Renewals granted", shard_label);
  obs_denied_ = obs::get_counter("sl_lease_renewals_denied_total",
                                 "Renewals denied", shard_label);
  obs_checkpoints_ = obs::get_counter("sl_lease_checkpoints_total",
                                      "Checkpoint truncations", shard_label);
  obs_forced_checkpoints_ = obs::get_counter(
      "sl_lease_forced_checkpoints_total",
      "Checkpoints forced by a full journal device", shard_label);
  obs_busy_cycles_ = obs::get_counter("sl_lease_busy_cycles_total",
                                      "Server-side work charged, in cycles",
                                      shard_label);
  obs_journaled_renewals_ = obs::get_counter(
      "sl_lease_journaled_renewals_total",
      "Renewal entries written into journal batch records", shard_label);
  obs_recoveries_ = obs::get_counter("sl_lease_recoveries_total",
                                     "Crash recoveries attempted", shard_label);
  obs_quorum_stalls_ = obs::get_counter(
      "sl_lease_quorum_stalls_total",
      "Drains deferred because the replica quorum was unavailable",
      shard_label);
  obs_parked_ = obs::get_counter(
      "sl_lease_parked_outcomes_total",
      "Outcomes withheld because their commit missed the replica quorum",
      shard_label);
  obs_parked_released_ = obs::get_counter(
      "sl_lease_parked_released_total",
      "Previously parked outcomes acknowledged after replication recovered",
      shard_label);
  obs_failovers_ = obs::get_counter(
      "sl_lease_failovers_total",
      "Leader failovers (election + promoted replica install)", shard_label);
  obs_renew_latency_ = obs::get_histogram(
      "sl_lease_renew_latency_cycles",
      "Renewal latency (drain start to batch commit) in virtual cycles",
      shard_label);
  if (config_.durability.journaling) {
    if (config_.durability.master_key == 0) {
      config_.durability.master_key =
          splitmix64_key(0x77a1, config_.keygen_seed) | 1;
    }
    storage::JournalConfig journal_config;
    journal_config.master_key = config_.durability.master_key;
    journal_config.profile = config_.durability.profile;
    journal_config.faults = config_.durability.faults;
    journal_config.device_seed = config_.durability.device_seed;
    journal_ = std::make_unique<storage::Journal>(journal_config);
    journal_->attach_clock(&clock_);
    checkpoints_ = std::make_unique<storage::CheckpointStore>(
        config_.durability.master_key ^ 0xc4c4c4c4ULL,
        config_.durability.profile, config_.durability.faults,
        config_.durability.device_seed ^ 0x51075107ULL);
    checkpoints_->attach_clock(&clock_);
    // Generation 0 has no checkpoint: its genesis means "start from empty".
    WalRecord genesis;
    genesis.type = WalRecordType::kGenesis;
    genesis.generation = 0;
    genesis.post_digest = state_digest();
    journal_->reset(genesis.serialize());
    if (config_.durability.replicas > 0) {
      replication::GroupConfig group_config;
      group_config.replicas = config_.durability.replicas;
      group_config.master_key = config_.durability.master_key;
      group_config.shard = parse_shard_id(config_.obs_shard);
      group_config.obs_shard = config_.obs_shard;
      group_config.link = config_.durability.replica_link;
      group_config.link_seed = splitmix64_key(
          group_config.shard, config_.durability.device_seed ^ 0x11f7ULL);
      group_config.retransmit = config_.durability.retransmit;
      group_ = std::make_unique<replication::ReplicaGroup>(group_config,
                                                           journal_.get());
      // Link latency, ack timeouts and backoff all burn this shard's
      // virtual cycles, same as its storage and compute costs.
      group_->attach_clock(&clock_);
      // Followers start from the genesis record, not from an empty log.
      genesis_replicated = group_->replicate();
    }
  } else {
    require(config_.durability.replicas == 0,
            "ShardDurability: replication requires journaling");
  }
  committed_digest_ = state_digest();
  if (group_ != nullptr && genesis_replicated) {
    replicated_seq_ = journal_->synced_seq();
    replicated_digest_ = committed_digest_;
  }
}

SlRemoteStats RemoteShard::lifetime_remote_stats() const {
  SlRemoteStats total = carried_remote_stats_;
  add_stats(total, remote_->stats());
  return total;
}

void RemoteShard::provision(const LicenseFile& license) {
  require(up_, "provision: shard is down");
  remote_->provision(license);
  // Durable pool image: the record mirrors the remaining pool as a plain
  // counter (the server never advances lease time — clients do).
  sync_lease_record(license.lease_id);
  if (journal_) {
    WalRecord record;
    record.type = WalRecordType::kProvision;
    record.lease = license.lease_id;
    record.license = license.serialize();
    journal_append(std::move(record));
    journal_commit();
  }
}

void RemoteShard::revoke(LeaseId lease) {
  require(up_, "revoke: shard is down");
  if (!remote_->ledger(lease).has_value()) return;
  remote_->revoke(lease);
  sync_lease_record(lease);
  if (journal_) {
    WalRecord record;
    record.type = WalRecordType::kRevoke;
    record.lease = lease;
    journal_append(std::move(record));
    journal_commit();
  }
}

SlRemote::InitResult RemoteShard::admit(const sgx::Quote& quote,
                                        Slid claimed_slid, SimClock& clock) {
  require(up_, "admit: shard is down");
  const SlRemote::InitResult result =
      remote_->init_sl_local(quote, claimed_slid, clock);
  if (!result.ok) return result;
  // A new client generation restarts its request-id sequence; answering it
  // from the previous generation's idempotency record would be wrong.
  dedup_.erase(result.slid);
  if (journal_) {
    WalRecord record;
    record.type = WalRecordType::kAdmission;
    record.slid = result.slid;
    if (claimed_slid == 0 || result.slid != claimed_slid) {
      record.admission = WalAdmissionKind::kFirst;
    } else if (result.restore_allowed) {
      record.admission = WalAdmissionKind::kGracefulReinit;
    } else {
      record.admission = WalAdmissionKind::kCrashReinit;
    }
    journal_append(std::move(record));
    journal_commit();
  }
  return result;
}

Slid RemoteShard::admit_peer(double health, double network) {
  require(up_, "admit_peer: shard is down");
  const Slid slid = remote_->register_peer(health, network);
  dedup_.erase(slid);
  if (journal_) {
    WalRecord record;
    record.type = WalRecordType::kAdmission;
    record.admission = WalAdmissionKind::kPeer;
    record.slid = slid;
    record.health = health;
    record.network = network;
    journal_append(std::move(record));
    journal_commit();
  }
  return slid;
}

void RemoteShard::escrow(
    Slid slid, std::uint64_t root_key,
    const std::unordered_map<LeaseId, std::uint64_t>& unused) {
  require(up_, "escrow: shard is down");
  remote_->graceful_shutdown(slid, root_key, unused);
  // Unused-credit refunds changed pools: keep the durable tree mirroring
  // them, or the post-recovery rebuild would disagree with the live tree.
  for (const auto& [lease, count] : unused) {
    (void)count;
    if (remote_->ledger(lease).has_value()) sync_lease_record(lease);
  }
  if (journal_) {
    WalRecord record;
    record.type = WalRecordType::kEscrow;
    record.slid = slid;
    record.root_key = root_key;
    record.unused.assign(unused.begin(), unused.end());
    std::sort(record.unused.begin(), record.unused.end());
    journal_append(std::move(record));
    journal_commit();
  }
}

bool RemoteShard::enqueue(PendingRenew request) {
  if (!up_) {
    stats_.down_rejections++;
    obs::inc(obs_down_rejections_);
    return false;
  }
  if (queue_len_ >= config_.queue_capacity) {
    stats_.overloads++;
    obs::inc(obs_overloads_);
    return false;
  }
  if (journal_) {
    // Unsynced on purpose: the intent marks an accepted-but-unacknowledged
    // request. Losing it in a crash loses nothing that was promised.
    WalRecord record;
    record.type = WalRecordType::kIntent;
    record.lease = request.license.lease_id;
    record.ticket = request.ticket;
    record.slid = request.slid;
    record.request_id = request.request_id;
    record.consumed = request.consumed;
    journal_append(std::move(record));
  }
  queue_slots_[(queue_head_ + queue_len_) % queue_slots_.size()] =
      std::move(request);
  queue_len_++;
  stats_.enqueued++;
  obs::inc(obs_enqueued_);
  return true;
}

void RemoteShard::commit_lease_record(LeaseId lease) {
  // Section 5.5: seal data||hash under a fresh key and move the ciphertext
  // to the untrusted store. find() faults it back in transparently.
  if (tree_->find(lease) != nullptr) tree_->commit_lease(lease);
}

void RemoteShard::sync_lease_record(LeaseId lease) {
  const Gcl pool_gcl(LeaseKind::kCountBased,
                     remote_->remaining_pool(lease).value_or(0));
  LeaseRecord* record = tree_->find(lease);
  if (record == nullptr) {
    tree_->insert(lease, pool_gcl);
  } else {
    record->set_gcl(pool_gcl);
    // In-place mutation bypasses insert(): tell the incremental tree this
    // leaf's cached image is stale.
    tree_->mark_dirty(lease);
  }
  commit_lease_record(lease);
}

std::vector<RenewOutcome> RemoteShard::drain() {
  std::vector<RenewOutcome> outcomes;
  drain_into(outcomes);
  return outcomes;
}

void RemoteShard::drain_into(std::vector<RenewOutcome>& outcomes) {
  outcomes.clear();
  require(up_, "drain: shard is down");
  if (group_ != nullptr && !group_->quorum_available()) {
    // Too few replicas to make a renewal durable: defer rather than ack
    // something a failover could lose. Requests stay queued; callers gate on
    // accepting() so this is a defense-in-depth backstop, not the normal path.
    stats_.quorum_stalls++;
    obs::inc(obs_quorum_stalls_);
    return;
  }
  const Cycles drain_start = clock_.cycles();
  const std::size_t count = queue_len_;
  outcomes.reserve(count);

  // Decomposed cost model: with batched framing one frame carries a whole
  // group (one parse per group, leaf-only incremental commit); with legacy
  // framing every message is its own frame and every group pays the full
  // encrypt-and-hash sweep — reproducing the pre-batching totals exactly.
  const Cycles message_cost =
      config_.cycles_per_renewal +
      (config_.legacy_framing ? config_.cycles_per_frame_parse : 0);
  const Cycles group_cost =
      config_.legacy_framing
          ? config_.cycles_per_commit
          : config_.cycles_per_frame_parse + config_.cycles_per_leaf_commit;

  const auto slot_at = [&](std::size_t i) -> PendingRenew& {
    return queue_slots_[(queue_head_ + i) % queue_slots_.size()];
  };

  // Group FIFO: within a license requests keep submission order, so the
  // Algorithm 1 decisions are exactly those of serial processing; across
  // licenses groups run in first-appearance order (decisions for different
  // licenses are independent, so cross-license order cannot matter). The
  // requests are processed in place in the ring — no per-drain copies.
  std::vector<LeaseId>& group_leases = group_leases_;
  group_leases.clear();
  if (config_.batching) {
    for (std::size_t i = 0; i < count; ++i) {
      const LeaseId lease = slot_at(i).license.lease_id;
      if (std::find(group_leases.begin(), group_leases.end(), lease) ==
          group_leases.end()) {
        group_leases.push_back(lease);
      }
    }
  }

  // Batched framing accumulates every group of this drain into ONE WAL
  // record (journaling path: allocations here are off the renewal hot path).
  std::vector<WalRenewGroup> wal_groups;
  std::vector<WalRenewEntry> batch_entries;
  std::size_t groups_processed = 0;

  const auto process_request = [&](PendingRenew& request, LeaseId lease) {
    // Idempotency: a retry of an already-committed request returns the
    // recorded outcome — the pool must not be burned twice.
    if (request.request_id != 0) {
      auto hit = dedup_.find(request.slid);
      if (hit != dedup_.end() && hit->second.request_id == request.request_id) {
        RenewOutcome replayed;
        replayed.ticket = request.ticket;
        replayed.status = hit->second.status;
        replayed.granted = hit->second.granted;
        stats_.deduped++;
        obs::inc(obs_deduped_);
        outcomes.push_back(replayed);
        return;
      }
    }
    if (request.consumed > 0) {
      remote_->report_consumed(request.slid, lease, request.consumed);
    }
    const SlRemote::RenewResult result = remote_->renew(
        request.slid, request.license, request.health, request.network);
    clock_.advance_cycles(message_cost);
    stats_.busy_cycles += message_cost;
    stats_.processed++;
    obs::inc(obs_busy_cycles_, message_cost);
    obs::inc(obs_processed_);
    RenewOutcome outcome;
    outcome.ticket = request.ticket;
    outcome.status = result.ok ? RenewStatus::kGranted : RenewStatus::kDenied;
    outcome.granted = result.granted;
    (result.ok ? stats_.granted : stats_.denied)++;
    obs::inc(result.ok ? obs_granted_ : obs_denied_);
    if (request.request_id != 0) {
      dedup_[request.slid] =
          DedupEntry{request.request_id, outcome.status, outcome.granted};
    }
    if (journal_) {
      WalRenewEntry entry;
      entry.slid = request.slid;
      entry.request_id = request.request_id;
      entry.consumed = request.consumed;
      entry.status = static_cast<std::uint8_t>(outcome.status);
      entry.granted = outcome.granted;
      entry.health = request.health;
      entry.network = request.network;
      batch_entries.push_back(entry);
    }
    outcomes.push_back(outcome);
  };

  const auto finish_group = [&](LeaseId lease, std::size_t first_outcome) {
    // One commit for the whole group — the amortization the batcher buys.
    // The record content depends only on the post-group pool, so K coalesced
    // renewals and K serial renewals produce the same record (and the same
    // integrity hash); only the commit count differs.
    sync_lease_record(lease);
    clock_.advance_cycles(group_cost);
    stats_.busy_cycles += group_cost;
    stats_.batches++;
    obs::inc(obs_busy_cycles_, group_cost);
    obs::inc(obs_batches_);

    if (journal_ && !batch_entries.empty()) {
      obs::inc(obs_journaled_renewals_, batch_entries.size());
      if (config_.legacy_framing) {
        // Legacy framing: one WAL record per group, as before the batched
        // format existed.
        WalRecord record;
        record.type = WalRecordType::kRenewBatch;
        record.lease = lease;
        record.entries = std::move(batch_entries);
        journal_append(std::move(record));
      } else {
        WalRenewGroup group;
        group.lease = lease;
        group.entries = std::move(batch_entries);
        wal_groups.push_back(std::move(group));
      }
    }
    batch_entries.clear();

    const Cycles completed = clock_.cycles();
    for (std::size_t i = first_outcome; i < outcomes.size(); ++i) {
      outcomes[i].completed_at = completed;
      outcomes[i].latency = completed - drain_start;
      obs::observe(obs_renew_latency_, outcomes[i].latency);
    }
    groups_processed++;
  };

  if (config_.batching) {
    for (const LeaseId lease : group_leases) {
      const std::size_t first_outcome = outcomes.size();
      for (std::size_t i = 0; i < count; ++i) {
        PendingRenew& request = slot_at(i);
        if (request.license.lease_id != lease) continue;
        process_request(request, lease);
      }
      finish_group(lease, first_outcome);
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      PendingRenew& request = slot_at(i);
      const std::size_t first_outcome = outcomes.size();
      process_request(request, request.license.lease_id);
      finish_group(request.license.lease_id, first_outcome);
    }
  }
  queue_head_ = 0;
  queue_len_ = 0;

  if (journal_ && !wal_groups.empty()) {
    // Batched framing (WAL v2): one record carries every group of the
    // drain, so recovery replays the whole drain from one frame parse. Its
    // post-digest is the drain-end digest — the same final stamp the legacy
    // per-group records converge to.
    WalRecord record;
    record.type = WalRecordType::kRenewBatch;
    record.groups = std::move(wal_groups);
    journal_append(std::move(record));
  }

  // Group commit: one sync covers every batch record (and the intents that
  // preceded them). Only after it — and only once the commit reaches the
  // replica quorum — may the outcomes be acknowledged. A drain with nothing
  // new but parked outcomes still commits: that retries replication of the
  // stalled prefix so a healed wire releases the backlog.
  bool committed = true;
  if (journal_ && (count > 0 || !parked_outcomes_.empty())) {
    committed = journal_commit();
    if (committed) maybe_checkpoint();
  }
  if (groups_processed > 0 && obs::TraceRecorder::global().enabled()) {
    obs::TraceRecorder::global().record(obs::TraceSpan{
        "lease.drain",
        "lease",
        drain_start,
        clock_.cycles(),
        {{"shard", config_.obs_shard},
         {"groups", std::to_string(groups_processed)},
         {"outcomes", std::to_string(outcomes.size())}}});
  }
  if (!committed) {
    // Graceful degradation: the commit is durable locally but fewer than f
    // followers confirmed it. Nothing is acknowledged — the outcomes are
    // parked until a later commit replicates, and the clients see a stall,
    // not an ack that a failover could lose.
    stats_.quorum_stalls++;
    obs::inc(obs_quorum_stalls_);
    stats_.parked += outcomes.size();
    obs::inc(obs_parked_, outcomes.size());
    for (RenewOutcome& outcome : outcomes) {
      parked_outcomes_.push_back(std::move(outcome));
    }
    outcomes.clear();
    return;
  }
  if (!parked_outcomes_.empty()) {
    // The successful commit covered every previously stalled batch too
    // (replication ships the whole synced prefix): release the backlog, in
    // original completion order, ahead of this drain's outcomes.
    stats_.parked_released += parked_outcomes_.size();
    obs::inc(obs_parked_released_, parked_outcomes_.size());
    outcomes.insert(outcomes.begin(),
                    std::make_move_iterator(parked_outcomes_.begin()),
                    std::make_move_iterator(parked_outcomes_.end()));
    parked_outcomes_.clear();
  }
}

void RemoteShard::journal_append(WalRecord record) {
  if (!journal_) return;
  record.post_digest = state_digest();
  record.serialize_into(wal_scratch_);
  if (!journal_->append(wal_scratch_).has_value()) {
    // Full device. The snapshot captures everything applied so far —
    // including this record's effect — so dropping the record is safe.
    checkpoint();
    stats_.forced_checkpoints++;
    obs::inc(obs_forced_checkpoints_);
  }
}

bool RemoteShard::journal_commit() {
  if (!journal_) return true;
  journal_->sync();
  committed_digest_ = state_digest();
  bool replicated = true;
  if (group_ != nullptr) replicated = group_->replicate();
  if (replicated) {
    // The quorum-acked frontier catches up to the local one. While
    // replicate() fails the markers deliberately trail: they are what a
    // promotion is measured against.
    replicated_seq_ = journal_->synced_seq();
    replicated_digest_ = committed_digest_;
  }
  return replicated;
}

void RemoteShard::maybe_checkpoint() {
  if (journal_ == nullptr) return;
  // Never truncate while degraded: the journal bytes past the quorum-acked
  // frontier are exactly what replicate() still has to ship, and a reset
  // would force every follower through the (heavier) snapshot path.
  if (group_ != nullptr && replicated_seq_ != journal_->synced_seq()) return;
  if (journal_->durable_bytes() > config_.durability.checkpoint_every_bytes) {
    checkpoint();
  }
}

void RemoteShard::checkpoint() {
  require(journal_ != nullptr, "checkpoint: journaling disabled");
  require(up_, "checkpoint: shard is down");
  generation_++;
  const Bytes snap = snapshot();
  checkpoints_->write(generation_, snap);
  WalRecord genesis;
  genesis.type = WalRecordType::kGenesis;
  genesis.generation = generation_;
  genesis.post_digest = state_digest();
  journal_->reset(genesis.serialize());
  committed_digest_ = state_digest();
  if (group_ != nullptr) {
    const std::size_t confirmed =
        group_->on_reset(generation_, snap, journal_->device().contents());
    if (confirmed >= group_->f()) {
      // The truncation itself reached quorum; sequence numbering continues
      // across resets, so the genesis cursor is the new acked frontier.
      replicated_seq_ = journal_->synced_seq();
      replicated_digest_ = committed_digest_;
    }
  }
  stats_.checkpoints++;
  obs::inc(obs_checkpoints_);
}

void RemoteShard::crash() {
  require(up_, "crash: shard is already down");
  add_stats(carried_remote_stats_, remote_->stats());
  if (journal_ != nullptr) {
    journal_->crash();
    checkpoints_->crash();
  }
  // In-flight requests die with the process; clients observe a timeout and
  // must retry against the recovered shard (their request ids dedup). Parked
  // outcomes were never acknowledged, so dropping them loses no promise.
  queue_head_ = 0;
  queue_len_ = 0;
  dedup_.clear();
  parked_outcomes_.clear();
  up_ = false;
}

RecoveryReport RemoteShard::recover() { return recover_internal(false); }

RecoveryReport RemoteShard::recover_internal(bool promotion) {
  require(!up_, "recover: shard is up");
  obs::inc(obs_recoveries_);
  const Cycles recover_start = clock_.cycles();
  RecoveryReport report;
  report.committed_digest = promotion ? replicated_digest_ : committed_digest_;
  const auto finish = [&](RecoveryReport r) {
    if (obs::TraceRecorder::global().enabled()) {
      obs::TraceRecorder::global().record(obs::TraceSpan{
          "lease.recover",
          "lease",
          recover_start,
          clock_.cycles(),
          {{"shard", config_.obs_shard},
           {"ok", r.ok ? "true" : "false"},
           {"records", std::to_string(r.records_replayed)}}});
    }
    return r;
  };

  remote_ = std::make_unique<SlRemote>(authority_, ias_, expected_sl_local_,
                                       config_.ra_latency_seconds);
  remote_->reset_stats();
  dedup_.clear();
  generation_ = 0;

  if (journal_ == nullptr) {
    // No durability: a crash loses everything (the PR 3 in-memory shard).
    rebuild_tree();
    committed_digest_ = state_digest();
    report.ok = true;
    report.digest_match = true;
    report.recovered_digest = committed_digest_;
    report.detail = "journaling disabled; state reset";
    up_ = true;
    return finish(report);
  }

  // The loss floor: a local restart must recover everything it synced; a
  // promotion must recover everything the *quorum* acknowledged — records
  // synced during a replication stall were never acked to anyone and may
  // legitimately be absent from the elected follower.
  const std::uint64_t acked_floor =
      promotion ? replicated_seq_ : journal_->synced_seq();
  const storage::ReplayResult replayed = journal_->replay();
  report.tail_truncated = replayed.tail_truncated;
  report.truncated_bytes = replayed.truncated_bytes;
  report.detail = replayed.stop_reason;

  if (replayed.records.empty()) {
    report.lost_committed = acked_floor > 0;
    report.detail = "no valid journal records (" + replayed.stop_reason + ")";
    return finish(report);
  }

  std::uint64_t last_digest = 0;
  std::uint64_t last_seq = 0;
  std::uint64_t trailing_intents = 0;
  bool structural_ok = true;
  std::size_t index = 0;
  for (const storage::JournalRecord& frame : replayed.records) {
    const std::optional<WalRecord> record = WalRecord::deserialize(frame.payload);
    if (!record.has_value()) {
      structural_ok = false;
      report.detail = "undecodable journal record";
      break;
    }
    if (index == 0) {
      if (record->type != WalRecordType::kGenesis) {
        structural_ok = false;
        report.detail = "journal does not start with a genesis record";
        break;
      }
      generation_ = record->generation;
      if (generation_ > 0) {
        const std::optional<Bytes> blob = checkpoints_->load(generation_);
        if (!blob.has_value() || !restore_snapshot(*blob)) {
          structural_ok = false;
          report.detail = "checkpoint missing or damaged";
          break;
        }
      }
    } else if (!apply_record(*record)) {
      structural_ok = false;
      report.detail =
          std::string("replay failed at ") + wal_record_type_name(record->type);
      break;
    }
    trailing_intents =
        record->type == WalRecordType::kIntent ? trailing_intents + 1 : 0;
    last_digest = record->post_digest;
    last_seq = frame.seq;
    index++;
  }
  report.records_replayed = index;
  report.intents_dropped = trailing_intents;
  report.generation = generation_;
  report.lost_committed = last_seq < acked_floor;
  if (!structural_ok) return finish(report);

  rebuild_tree();
  remote_->reset_stats();
  journal_->resume_from(replayed);

  const std::uint64_t digest = state_digest();
  report.recovered_digest = digest;
  if (promotion) {
    // The elected follower must reproduce the quorum-acked state exactly —
    // but it may legitimately hold *more* (an append whose ack was lost):
    // then only the record's own stamp can vouch for the extra suffix.
    report.digest_match =
        digest == last_digest &&
        (last_seq != replicated_seq_ || digest == replicated_digest_);
  } else {
    // Two equalities must hold: the rebuilt state matches the last replayed
    // record's stamp, and — because every acknowledged mutation was synced
    // and unsynced intents carry no state — it matches the pre-crash
    // committed digest too.
    report.digest_match =
        digest == last_digest && digest == report.committed_digest;
  }
  report.ok = true;
  committed_digest_ = digest;
  up_ = true;
  if (group_ != nullptr) {
    // A new leader incarnation gets a new fencing term, even when it is the
    // same node recovering: any append sealed under the old epoch that is
    // still in flight must be rejectable by the quorum.
    journal_->set_epoch(journal_->epoch() + 1);
    group_->fence(journal_->epoch());
    if (group_->replicate()) {
      replicated_seq_ = journal_->synced_seq();
      replicated_digest_ = committed_digest_;
    }
  }
  return finish(report);
}

void RemoteShard::replica_crash(std::size_t index) {
  require(group_ != nullptr, "replica_crash: replication disabled");
  group_->crash_follower(index);
}

void RemoteShard::replica_restart(std::size_t index) {
  require(group_ != nullptr, "replica_restart: replication disabled");
  group_->restart_follower(index);
}

void RemoteShard::replica_link_fault(const net::LinkProfile& profile) {
  require(group_ != nullptr, "replica_link_fault: replication disabled");
  group_->set_link_profile(profile);
}

void RemoteShard::replica_link_heal() {
  require(group_ != nullptr, "replica_link_heal: replication disabled");
  group_->heal_links();
}

FailoverReport RemoteShard::fail_over() {
  require(group_ != nullptr, "fail_over: replication disabled");
  require(up_, "fail_over: leader is already down");
  FailoverReport report;
  report.old_epoch = journal_->epoch();
  report.committed_digest = replicated_digest_;
  if (!group_->election_quorum_available()) {
    report.detail = "no election quorum (need f+1 up followers)";
    return report;
  }

  // Elect BEFORE deposing: solicitation is read-only, so when the wire eats
  // too many candidacies (fewer than f+1 within the retransmission budget)
  // the failover is abandoned and the current leader keeps running — a
  // failed election must degrade service, never consistency.
  const std::optional<replication::ElectionResult> elected = group_->elect();
  if (!elected.has_value()) {
    report.detail = "election failed: fewer than f+1 candidacies reachable";
    return report;
  }
  report.attempted = true;
  obs::inc(obs_failovers_);

  // Depose the leader. Its device image is kept so a later
  // stale_append() can resurrect it and probe the fence.
  stale_leader_ = StaleLeader{journal_->epoch(), journal_->device().contents()};
  add_stats(carried_remote_stats_, remote_->stats());
  queue_head_ = 0;
  queue_len_ = 0;
  dedup_.clear();
  parked_outcomes_.clear();
  up_ = false;

  report.elected = elected->winner;
  report.elected_seq = elected->seq;
  const replication::ReplicaLog& winner = group_->follower(elected->winner);

  // Promote the winner: its verified log becomes this shard's journal image
  // and its snapshot backs its generation in the checkpoint store. Then the
  // standard crash-recovery path replays it — the same digest checks that
  // guard a local restart now guard the promotion.
  journal_->device().reset();
  if (!winner.log().empty()) {
    ensure(journal_->device().append(
               ByteView(winner.log().data(), winner.log().size())),
           "fail_over: promoted log exceeds device capacity");
  }
  journal_->device().sync();
  if (winner.generation() > 0) {
    checkpoints_->write(
        winner.generation(),
        ByteView(winner.snapshot().data(), winner.snapshot().size()));
  }

  const RecoveryReport recovery = recover_internal(/*promotion=*/true);
  report.ok = recovery.ok;
  report.digest_match = recovery.digest_match;
  report.lost_committed = recovery.lost_committed;
  report.records_replayed = recovery.records_replayed;
  report.recovered_digest = recovery.recovered_digest;
  report.detail = recovery.detail;
  report.new_epoch = journal_->epoch();
  return report;
}

StaleAppendReport RemoteShard::stale_append() {
  require(group_ != nullptr, "stale_append: replication disabled");
  StaleAppendReport report;
  if (!stale_leader_.has_value()) return report;
  report.attempted = true;
  report.stale_epoch = stale_leader_->epoch;
  report.delivered = group_->up_followers();

  // Resurrect the deposed leader on its own private journal: replay its
  // saved image, then seal one more record under the stale epoch and try to
  // replicate it. Every up follower has been fenced past that epoch, so the
  // quorum must reject the append — that is the whole point of the fence.
  storage::JournalConfig ghost_config;
  ghost_config.master_key = config_.durability.master_key;
  ghost_config.profile = config_.durability.profile;
  ghost_config.device_seed = config_.durability.device_seed ^ 0x57a1eULL;
  storage::Journal ghost(ghost_config);
  ghost.device().reset();
  if (!stale_leader_->image.empty()) {
    ensure(ghost.device().append(ByteView(stale_leader_->image.data(),
                                          stale_leader_->image.size())),
           "stale_append: saved leader image exceeds device capacity");
  }
  ghost.device().sync();
  ghost.resume_from(ghost.replay());

  const std::uint64_t before = ghost.durable_bytes();
  WalRecord heartbeat;
  heartbeat.type = WalRecordType::kIntent;
  if (ghost.append(heartbeat.serialize()).has_value()) {
    ghost.sync();
  }
  const Bytes& image = ghost.device().contents();

  replication::ReplicationFrame frame;
  frame.type = replication::FrameType::kAppend;
  frame.epoch = ghost.epoch();
  frame.shard = group_->shard_id();
  frame.replica = 0;
  frame.seq = ghost.synced_seq();
  frame.chain = ghost.chain();
  frame.payload.assign(image.begin() + static_cast<std::ptrdiff_t>(before),
                       image.end());
  report.accepted = group_->deliver_stale(frame.serialize());
  report.stale_epoch = frame.epoch;
  return report;
}

bool RemoteShard::apply_record(const WalRecord& record) {
  try {
    switch (record.type) {
      case WalRecordType::kGenesis:
        return false;  // only valid as the first record
      case WalRecordType::kProvision: {
        const std::optional<LicenseFile> license =
            LicenseFile::deserialize(record.license);
        if (!license.has_value()) return false;
        remote_->provision(*license);
        return true;
      }
      case WalRecordType::kRenewBatch: {
        const auto apply_entries = [&](LeaseId lease,
                                       const std::vector<WalRenewEntry>& entries) {
          for (const WalRenewEntry& entry : entries) {
            remote_->apply_renewal(entry.slid, lease, entry.consumed,
                                   entry.granted, entry.health, entry.network);
            if (entry.request_id != 0) {
              dedup_[entry.slid] =
                  DedupEntry{entry.request_id,
                             static_cast<RenewStatus>(entry.status), entry.granted};
            }
          }
        };
        if (!record.groups.empty()) {
          // Batched framing (WAL v2): one record, many license groups.
          for (const WalRenewGroup& group : record.groups) {
            apply_entries(group.lease, group.entries);
          }
        } else {
          apply_entries(record.lease, record.entries);
        }
        return true;
      }
      case WalRecordType::kRevoke:
        remote_->revoke(record.lease);
        return true;
      case WalRecordType::kAdmission:
        switch (record.admission) {
          case WalAdmissionKind::kFirst:
          case WalAdmissionKind::kPeer:
            remote_->apply_register(record.slid, record.health, record.network);
            break;
          case WalAdmissionKind::kCrashReinit:
            remote_->apply_crash_reinit(record.slid);
            break;
          case WalAdmissionKind::kGracefulReinit:
            remote_->apply_graceful_reinit(record.slid);
            break;
        }
        dedup_.erase(record.slid);
        return true;
      case WalRecordType::kEscrow: {
        std::unordered_map<LeaseId, std::uint64_t> unused;
        for (const auto& [lease, count] : record.unused) unused[lease] = count;
        remote_->graceful_shutdown(record.slid, record.root_key, unused);
        return true;
      }
      case WalRecordType::kIntent:
        // Pessimistic policy: an intent with no committed batch after it is
        // an in-flight request that died with the server.
        return true;
    }
  } catch (const Error&) {
    return false;
  }
  return false;
}

void RemoteShard::rebuild_tree() {
  tree_.reset();
  store_ = UntrustedStore{};
  arenas_->reset();  // every pre-crash node was abandoned with the tree
  tree_ = std::make_unique<LeaseTree>(
      splitmix64_key(generation_ ^ 0x7ee5, config_.keygen_seed) | 1, store_,
      arenas_.get());
  if (!config_.legacy_framing) tree_->set_cache_commits(true);
  // Full-commit fallback: the rebuilt tree starts with no cached images, so
  // every lease below re-seals from scratch regardless of dirty bits.
  // Record content is a pure function of the recovered pool, and the 64-bit
  // integrity hash is a pure function of record content — so the rebuilt
  // tree digests identically to the pre-crash tree.
  for (const LeaseId lease : remote_->provisioned_leases()) {
    sync_lease_record(lease);
  }
}

Bytes RemoteShard::snapshot() const {
  Bytes out;
  put_u32(out, kCheckpointVersion);
  const Bytes remote_state = remote_->serialize_state();
  put_u32(out, static_cast<std::uint32_t>(remote_state.size()));
  out.insert(out.end(), remote_state.begin(), remote_state.end());
  put_u32(out, static_cast<std::uint32_t>(dedup_.size()));
  for (const auto& [slid, entry] : dedup_) {  // std::map: ascending SLID
    put_u64(out, slid);
    put_u64(out, entry.request_id);
    out.push_back(static_cast<std::uint8_t>(entry.status));
    put_u64(out, entry.granted);
  }
  return out;
}

bool RemoteShard::restore_snapshot(ByteView data) {
  std::size_t offset = 0;
  const auto fits = [&](std::size_t need) {
    return offset <= data.size() && data.size() - offset >= need;
  };
  if (!fits(8)) return false;
  if (get_u32(data, offset) != kCheckpointVersion) return false;
  offset += 4;
  const std::uint32_t remote_len = get_u32(data, offset);
  offset += 4;
  if (!fits(remote_len)) return false;
  if (!remote_->restore_state(data.subspan(offset, remote_len))) return false;
  offset += remote_len;
  if (!fits(4)) return false;
  const std::uint32_t dedup_count = get_u32(data, offset);
  offset += 4;
  dedup_.clear();
  for (std::uint32_t i = 0; i < dedup_count; ++i) {
    if (!fits(8 + 8 + 1 + 8)) return false;
    const Slid slid = get_u64(data, offset);
    offset += 8;
    DedupEntry entry;
    entry.request_id = get_u64(data, offset);
    offset += 8;
    const std::uint8_t status = data[offset];
    offset += 1;
    if (status > static_cast<std::uint8_t>(RenewStatus::kOverloaded)) {
      return false;
    }
    entry.status = static_cast<RenewStatus>(status);
    entry.granted = get_u64(data, offset);
    offset += 8;
    dedup_[slid] = entry;
  }
  return offset == data.size();
}

std::uint64_t RemoteShard::state_digest() {
  std::uint64_t digest = 0x5ea1d;
  Bytes& buffer = digest_scratch_;
  remote_->provisioned_leases_into(lease_scratch_);
  for (const LeaseId lease : lease_scratch_) {
    const auto ledger = remote_->ledger(lease);
    buffer.clear();
    put_u32(buffer, lease);
    put_u64(buffer, ledger->provisioned);
    put_u64(buffer, ledger->pool);
    put_u64(buffer, ledger->outstanding);
    put_u64(buffer, ledger->consumed);
    put_u64(buffer, ledger->forfeited);
    put_u64(buffer, ledger->revoked);
    LeaseRecord* record = tree_->find(lease);
    put_u64(buffer, record != nullptr ? record->hash : 0);
    digest = crypto::murmur3_64(buffer, digest);
  }
  return digest;
}

std::uint64_t RemoteShard::state_digest_full() const {
  // From-scratch oracle: rebuild every record image from the ledger pool —
  // same construction sync_lease_record() uses — instead of trusting the
  // live tree, then chain the identical digest formula. If the incremental
  // tree ever serves a stale cached leaf, the two digests diverge.
  std::uint64_t digest = 0x5ea1d;
  for (const LeaseId lease : remote_->provisioned_leases()) {
    const auto ledger = remote_->ledger(lease);
    LeaseRecord record;
    record.set_gcl(Gcl(LeaseKind::kCountBased, ledger->pool));
    Bytes buffer;
    put_u32(buffer, lease);
    put_u64(buffer, ledger->provisioned);
    put_u64(buffer, ledger->pool);
    put_u64(buffer, ledger->outstanding);
    put_u64(buffer, ledger->consumed);
    put_u64(buffer, ledger->forfeited);
    put_u64(buffer, ledger->revoked);
    put_u64(buffer, record.hash);
    digest = crypto::murmur3_64(buffer, digest);
  }
  return digest;
}

}  // namespace sl::lease
