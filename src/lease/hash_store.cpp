#include "lease/hash_store.hpp"

#include "crypto/murmur.hpp"
#include "crypto/sha256.hpp"

namespace sl::lease {

HashLeaseStore::HashLeaseStore(HashKind kind, std::size_t bucket_count)
    : kind_(kind), buckets_(bucket_count) {}

std::size_t HashLeaseStore::bucket_of(LeaseId id) const {
  // The lease identity is hashed as the 300-byte license blob would be in a
  // real deployment: hashing cost scales with identity size, which is the
  // effect Table 1 measures. We hash the id expanded to a 300-byte buffer.
  std::array<std::uint8_t, kLeaseDataBytes> identity{};
  for (std::size_t i = 0; i < identity.size(); ++i) {
    identity[i] = static_cast<std::uint8_t>((id >> (8 * (i % 4))) ^ i);
  }
  const ByteView view(identity.data(), identity.size());
  switch (kind_) {
    case HashKind::kMurmur:
      return crypto::murmur3_32(view) % buckets_.size();
    case HashKind::kSha256:
      return static_cast<std::size_t>(crypto::sha256_64(view) % buckets_.size());
  }
  return 0;
}

void HashLeaseStore::insert(LeaseId id, const Gcl& gcl) {
  auto& bucket = buckets_[bucket_of(id)];
  for (Slot& slot : bucket) {
    if (slot.id == id) {
      slot.record->set_gcl(gcl);
      return;
    }
  }
  Slot slot;
  slot.id = id;
  slot.record = std::make_unique<LeaseRecord>();
  slot.record->set_gcl(gcl);
  bucket.push_back(std::move(slot));
  size_++;
}

LeaseRecord* HashLeaseStore::find(LeaseId id) {
  auto& bucket = buckets_[bucket_of(id)];
  for (Slot& slot : bucket) {
    if (slot.id == id) return slot.record.get();
  }
  return nullptr;
}

bool HashLeaseStore::erase(LeaseId id) {
  auto& bucket = buckets_[bucket_of(id)];
  for (auto it = bucket.begin(); it != bucket.end(); ++it) {
    if (it->id == id) {
      bucket.erase(it);
      size_--;
      return true;
    }
  }
  return false;
}

std::uint64_t HashLeaseStore::resident_bytes() const {
  return buckets_.size() * sizeof(void*) + size_ * (kLeaseBytes + sizeof(Slot));
}

}  // namespace sl::lease
