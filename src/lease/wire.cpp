#include "lease/wire.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace sl::lease::wire {

namespace {

void put_digest(Bytes& out, const crypto::Sha256Digest& digest) {
  out.insert(out.end(), digest.begin(), digest.end());
}

bool get_digest(ByteView in, std::size_t& offset, crypto::Sha256Digest& digest) {
  if (offset + digest.size() > in.size()) return false;
  std::copy(in.begin() + static_cast<std::ptrdiff_t>(offset),
            in.begin() + static_cast<std::ptrdiff_t>(offset + digest.size()),
            digest.begin());
  offset += digest.size();
  return true;
}

void put_blob(Bytes& out, ByteView blob) {
  put_u32(out, static_cast<std::uint32_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());
}

std::optional<Bytes> get_blob(ByteView in, std::size_t& offset) {
  if (offset + 4 > in.size()) return std::nullopt;
  const std::uint32_t size = get_u32(in, offset);
  offset += 4;
  if (offset + size > in.size()) return std::nullopt;
  Bytes blob(in.begin() + static_cast<std::ptrdiff_t>(offset),
             in.begin() + static_cast<std::ptrdiff_t>(offset + size));
  offset += size;
  return blob;
}

// Doubles travel as fixed-point micros, rounded to nearest: truncation made
// serialize(deserialize(x)) drift by one micro when value*1e6 reconstructed
// just below the original integer.
void put_fraction(Bytes& out, double value) {
  put_u64(out, static_cast<std::uint64_t>(value * 1e6 + 0.5));
}

double get_fraction(ByteView in, std::size_t& offset) {
  const double value = static_cast<double>(get_u64(in, offset)) / 1e6;
  offset += 8;
  return value;
}

}  // namespace

Bytes serialize_quote(const sgx::Quote& quote) {
  Bytes out;
  put_digest(out, quote.report.mrenclave);
  put_blob(out, quote.report.report_data);
  put_digest(out, quote.report.mac);
  put_u64(out, quote.platform_id);
  put_digest(out, quote.signature);
  return out;
}

std::optional<sgx::Quote> deserialize_quote(ByteView data, std::size_t& offset) {
  sgx::Quote quote;
  if (!get_digest(data, offset, quote.report.mrenclave)) return std::nullopt;
  auto report_data = get_blob(data, offset);
  if (!report_data.has_value()) return std::nullopt;
  quote.report.report_data = std::move(*report_data);
  if (!get_digest(data, offset, quote.report.mac)) return std::nullopt;
  if (offset + 8 > data.size()) return std::nullopt;
  quote.platform_id = get_u64(data, offset);
  offset += 8;
  if (!get_digest(data, offset, quote.signature)) return std::nullopt;
  return quote;
}

// --- InitRequest / InitResponse --------------------------------------------------

Bytes InitRequest::serialize() const {
  Bytes out;
  put_u64(out, claimed_slid);
  const Bytes quote_bytes = serialize_quote(quote);
  out.insert(out.end(), quote_bytes.begin(), quote_bytes.end());
  return out;
}

std::optional<InitRequest> InitRequest::deserialize(ByteView data) {
  if (data.size() < 8) return std::nullopt;
  InitRequest request;
  request.claimed_slid = get_u64(data, 0);
  std::size_t offset = 8;
  auto quote = deserialize_quote(data, offset);
  if (!quote.has_value()) return std::nullopt;
  request.quote = std::move(*quote);
  return request;
}

Bytes InitResponse::serialize() const {
  Bytes out;
  put_u32(out, ok ? 1 : 0);
  put_u64(out, slid);
  put_u64(out, old_backup_key);
  put_u32(out, restore_allowed ? 1 : 0);
  return out;
}

std::optional<InitResponse> InitResponse::deserialize(ByteView data) {
  if (data.size() < 24) return std::nullopt;
  InitResponse response;
  response.ok = get_u32(data, 0) != 0;
  response.slid = get_u64(data, 4);
  response.old_backup_key = get_u64(data, 12);
  response.restore_allowed = get_u32(data, 20) != 0;
  return response;
}

// --- RenewRequest / RenewResponse --------------------------------------------------

Bytes RenewRequest::serialize() const {
  Bytes out;
  put_u64(out, slid);
  put_blob(out, license.serialize());
  put_fraction(out, health);
  put_fraction(out, network);
  put_u64(out, consumed);
  put_u64(out, request_id);
  return out;
}

std::optional<RenewRequest> RenewRequest::deserialize(ByteView data) {
  if (data.size() < 8) return std::nullopt;
  RenewRequest request;
  request.slid = get_u64(data, 0);
  std::size_t offset = 8;
  auto license_blob = get_blob(data, offset);
  if (!license_blob.has_value()) return std::nullopt;
  auto license = LicenseFile::deserialize(*license_blob);
  if (!license.has_value()) return std::nullopt;
  request.license = std::move(*license);
  if (offset + 24 > data.size()) return std::nullopt;
  request.health = get_fraction(data, offset);
  request.network = get_fraction(data, offset);
  request.consumed = get_u64(data, offset);
  offset += 8;
  // Optional trailing idempotency id (old-format frames end here). Anything
  // other than exactly zero or eight trailing bytes is garbage.
  if (data.size() - offset == 8) {
    request.request_id = get_u64(data, offset);
    offset += 8;
  }
  if (offset != data.size()) return std::nullopt;
  return request;
}

Bytes RenewResponse::serialize() const {
  Bytes out;
  put_u32(out, ok ? 1 : 0);
  put_u64(out, granted);
  put_u32(out, overloaded ? 1 : 0);
  return out;
}

std::optional<RenewResponse> RenewResponse::deserialize(ByteView data) {
  if (data.size() < 16) return std::nullopt;
  RenewResponse response;
  response.ok = get_u32(data, 0) != 0;
  response.granted = get_u64(data, 4);
  response.overloaded = get_u32(data, 12) != 0;
  return response;
}

// --- ShutdownRequest ------------------------------------------------------------------

Bytes ShutdownRequest::serialize() const {
  Bytes out;
  put_u64(out, slid);
  put_u64(out, root_key);
  put_u32(out, static_cast<std::uint32_t>(unused.size()));
  // Deterministic encoding: hash-map iteration order varies with insertion
  // history, so sort by lease id — equal messages serialize identically.
  std::vector<std::pair<LeaseId, std::uint64_t>> entries(unused.begin(),
                                                         unused.end());
  std::sort(entries.begin(), entries.end());
  for (const auto& [lease, count] : entries) {
    put_u32(out, lease);
    put_u64(out, count);
  }
  return out;
}

std::optional<ShutdownRequest> ShutdownRequest::deserialize(ByteView data) {
  if (data.size() < 20) return std::nullopt;
  ShutdownRequest request;
  request.slid = get_u64(data, 0);
  request.root_key = get_u64(data, 8);
  const std::uint32_t count = get_u32(data, 16);
  std::size_t offset = 20;
  if (data.size() < offset + static_cast<std::size_t>(count) * 12) return std::nullopt;
  for (std::uint32_t i = 0; i < count; ++i) {
    const LeaseId lease = get_u32(data, offset);
    request.unused[lease] = get_u64(data, offset + 4);
    offset += 12;
  }
  return request;
}

// --- Server adapter ------------------------------------------------------------------------

SlRemoteService::SlRemoteService(SlRemote& remote, net::RpcServer& server,
                                 SimClock& clock)
    : remote_(remote), clock_(clock) {
  server.register_method("sl.init", [this](ByteView payload) -> Bytes {
    InitResponse response;
    const auto request = InitRequest::deserialize(payload);
    if (request.has_value()) {
      const SlRemote::InitResult result =
          remote_.init_sl_local(request->quote, request->claimed_slid, clock_);
      response.ok = result.ok;
      response.slid = result.slid;
      response.old_backup_key = result.old_backup_key;
      response.restore_allowed = result.restore_allowed;
    }
    return response.serialize();
  });

  server.register_method("sl.renew", [this](ByteView payload) -> Bytes {
    RenewResponse response;
    const auto request = RenewRequest::deserialize(payload);
    if (request.has_value()) {
      if (request->consumed > 0) {
        remote_.report_consumed(request->slid, request->license.lease_id,
                                request->consumed);
      }
      const SlRemote::RenewResult result = remote_.renew(
          request->slid, request->license, request->health, request->network);
      response.ok = result.ok;
      response.granted = result.granted;
    }
    return response.serialize();
  });

  server.register_method("sl.attest", [this](ByteView payload) -> Bytes {
    Bytes response;
    std::size_t offset = 0;
    const auto quote = deserialize_quote(payload, offset);
    const bool ok = quote.has_value() && remote_.attest_only(*quote, clock_);
    put_u32(response, ok ? 1 : 0);
    return response;
  });

  server.register_method("sl.shutdown", [this](ByteView payload) -> Bytes {
    const auto request = ShutdownRequest::deserialize(payload);
    Bytes response;
    if (request.has_value()) {
      remote_.graceful_shutdown(request->slid, request->root_key, request->unused);
      put_u32(response, 1);
    } else {
      put_u32(response, 0);
    }
    return response;
  });
}

// --- Client stub ----------------------------------------------------------------------------

SlRemoteClient::SlRemoteClient(net::RpcClient& rpc) : rpc_(rpc) {}

std::optional<InitResponse> SlRemoteClient::init(const InitRequest& request) {
  const net::RpcResult result = rpc_.call("sl.init", request.serialize());
  if (!result.ok) return std::nullopt;
  return InitResponse::deserialize(result.payload);
}

std::optional<RenewResponse> SlRemoteClient::renew(const RenewRequest& request) {
  const net::RpcResult result = rpc_.call("sl.renew", request.serialize());
  if (!result.ok) return std::nullopt;
  return RenewResponse::deserialize(result.payload);
}

bool SlRemoteClient::attest(const sgx::Quote& quote) {
  const net::RpcResult result = rpc_.call("sl.attest", serialize_quote(quote));
  if (!result.ok || result.payload.size() < 4) return false;
  return get_u32(result.payload, 0) != 0;
}

bool SlRemoteClient::shutdown(const ShutdownRequest& request) {
  const net::RpcResult result = rpc_.call("sl.shutdown", request.serialize());
  if (!result.ok || result.payload.size() < 4) return false;
  return get_u32(result.payload, 0) != 0;
}

}  // namespace sl::lease::wire
