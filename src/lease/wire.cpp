#include "lease/wire.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/wire_cursor.hpp"

namespace sl::lease::wire {

namespace {

void put_digest(WireWriter& out, const crypto::Sha256Digest& digest) {
  out.bytes(ByteView(digest.data(), digest.size()));
}

bool get_digest(WireCursor& cursor, crypto::Sha256Digest& digest) {
  ByteView view;
  if (!cursor.read_bytes(digest.size(), view)) return false;
  std::copy(view.begin(), view.end(), digest.begin());
  return true;
}

void put_blob(WireWriter& out, ByteView blob) {
  out.u32(static_cast<std::uint32_t>(blob.size()));
  out.bytes(blob);
}

// Borrowed view of a u32-length-prefixed blob; no copy.
bool get_blob_view(WireCursor& cursor, ByteView& out) {
  std::uint32_t size = 0;
  return cursor.read_u32(size) && cursor.read_bytes(size, out);
}

// Doubles travel as fixed-point micros, rounded to nearest: truncation made
// serialize(deserialize(x)) drift by one micro when value*1e6 reconstructed
// just below the original integer.
void put_fraction(WireWriter& out, double value) {
  out.u64(static_cast<std::uint64_t>(value * 1e6 + 0.5));
}

bool get_fraction(WireCursor& cursor, double& out) {
  std::uint64_t micros = 0;
  if (!cursor.read_u64(micros)) return false;
  out = static_cast<double>(micros) / 1e6;
  return true;
}

std::optional<sgx::Quote> read_quote(WireCursor& cursor) {
  sgx::Quote quote;
  if (!get_digest(cursor, quote.report.mrenclave)) return std::nullopt;
  ByteView report_data;
  if (!get_blob_view(cursor, report_data)) return std::nullopt;
  quote.report.report_data.assign(report_data.begin(), report_data.end());
  if (!get_digest(cursor, quote.report.mac)) return std::nullopt;
  if (!cursor.read_u64(quote.platform_id)) return std::nullopt;
  if (!get_digest(cursor, quote.signature)) return std::nullopt;
  return quote;
}

}  // namespace

Bytes serialize_quote(const sgx::Quote& quote) {
  Bytes out;
  WireWriter writer(out);
  put_digest(writer, quote.report.mrenclave);
  put_blob(writer, quote.report.report_data);
  put_digest(writer, quote.report.mac);
  writer.u64(quote.platform_id);
  put_digest(writer, quote.signature);
  return out;
}

std::optional<sgx::Quote> deserialize_quote(ByteView data, std::size_t& offset) {
  if (offset > data.size()) return std::nullopt;
  WireCursor cursor(data.subspan(offset));
  std::optional<sgx::Quote> quote = read_quote(cursor);
  if (quote.has_value()) offset += cursor.offset();
  return quote;
}

// --- InitRequest / InitResponse --------------------------------------------------

Bytes InitRequest::serialize() const {
  Bytes out;
  WireWriter writer(out);
  writer.u64(claimed_slid);
  const Bytes quote_bytes = serialize_quote(quote);
  writer.bytes(quote_bytes);
  return out;
}

std::optional<InitRequest> InitRequest::deserialize(ByteView data) {
  WireCursor cursor(data);
  InitRequest request;
  if (!cursor.read_u64(request.claimed_slid)) return std::nullopt;
  auto quote = read_quote(cursor);
  if (!quote.has_value()) return std::nullopt;
  request.quote = std::move(*quote);
  return request;
}

Bytes InitResponse::serialize() const {
  Bytes out;
  WireWriter writer(out);
  writer.u32(ok ? 1 : 0);
  writer.u64(slid);
  writer.u64(old_backup_key);
  writer.u32(restore_allowed ? 1 : 0);
  return out;
}

std::optional<InitResponse> InitResponse::deserialize(ByteView data) {
  WireCursor cursor(data);
  InitResponse response;
  std::uint32_t ok_flag = 0;
  std::uint32_t restore_flag = 0;
  if (!cursor.read_u32(ok_flag) || !cursor.read_u64(response.slid) ||
      !cursor.read_u64(response.old_backup_key) ||
      !cursor.read_u32(restore_flag)) {
    return std::nullopt;
  }
  response.ok = ok_flag != 0;
  response.restore_allowed = restore_flag != 0;
  return response;
}

// --- RenewRequest / RenewResponse --------------------------------------------------

Bytes RenewRequest::serialize() const {
  Bytes out;
  WireWriter writer(out);
  writer.u64(slid);
  put_blob(writer, license.serialize());
  put_fraction(writer, health);
  put_fraction(writer, network);
  writer.u64(consumed);
  writer.u64(request_id);
  return out;
}

std::optional<RenewRequest> RenewRequest::deserialize(ByteView data) {
  WireCursor cursor(data);
  RenewRequest request;
  if (!cursor.read_u64(request.slid)) return std::nullopt;
  ByteView license_view;
  if (!get_blob_view(cursor, license_view)) return std::nullopt;
  // Parse the license straight out of the borrowed view — no intermediate
  // copy of the blob.
  auto license = LicenseFile::deserialize(license_view);
  if (!license.has_value()) return std::nullopt;
  request.license = std::move(*license);
  if (!get_fraction(cursor, request.health) ||
      !get_fraction(cursor, request.network) ||
      !cursor.read_u64(request.consumed)) {
    return std::nullopt;
  }
  // Optional trailing idempotency id (old-format frames end here). Anything
  // other than exactly zero or eight trailing bytes is garbage.
  if (cursor.remaining() == 8) {
    if (!cursor.read_u64(request.request_id)) return std::nullopt;
  }
  if (!cursor.done()) return std::nullopt;
  return request;
}

Bytes RenewResponse::serialize() const {
  Bytes out;
  WireWriter writer(out);
  writer.u32(ok ? 1 : 0);
  writer.u64(granted);
  writer.u32(overloaded ? 1 : 0);
  return out;
}

std::optional<RenewResponse> RenewResponse::deserialize(ByteView data) {
  WireCursor cursor(data);
  RenewResponse response;
  std::uint32_t ok_flag = 0;
  std::uint32_t overloaded_flag = 0;
  if (!cursor.read_u32(ok_flag) || !cursor.read_u64(response.granted) ||
      !cursor.read_u32(overloaded_flag)) {
    return std::nullopt;
  }
  response.ok = ok_flag != 0;
  response.overloaded = overloaded_flag != 0;
  return response;
}

// --- ShutdownRequest ------------------------------------------------------------------

Bytes ShutdownRequest::serialize() const {
  Bytes out;
  WireWriter writer(out);
  writer.u64(slid);
  writer.u64(root_key);
  writer.u32(static_cast<std::uint32_t>(unused.size()));
  // Deterministic encoding: hash-map iteration order varies with insertion
  // history, so sort by lease id — equal messages serialize identically.
  std::vector<std::pair<LeaseId, std::uint64_t>> entries(unused.begin(),
                                                         unused.end());
  std::sort(entries.begin(), entries.end());
  for (const auto& [lease, count] : entries) {
    writer.u32(lease);
    writer.u64(count);
  }
  return out;
}

std::optional<ShutdownRequest> ShutdownRequest::deserialize(ByteView data) {
  WireCursor cursor(data);
  ShutdownRequest request;
  std::uint32_t count = 0;
  if (!cursor.read_u64(request.slid) || !cursor.read_u64(request.root_key) ||
      !cursor.read_u32(count)) {
    return std::nullopt;
  }
  if (cursor.remaining() < static_cast<std::size_t>(count) * 12) {
    return std::nullopt;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t lease = 0;
    std::uint64_t credits = 0;
    if (!cursor.read_u32(lease) || !cursor.read_u64(credits)) {
      return std::nullopt;
    }
    request.unused[lease] = credits;
  }
  return request;
}

// --- Server adapter ------------------------------------------------------------------------

SlRemoteService::SlRemoteService(SlRemote& remote, net::RpcServer& server,
                                 SimClock& clock)
    : remote_(remote), clock_(clock) {
  server.register_method("sl.init", [this](ByteView payload) -> Bytes {
    InitResponse response;
    const auto request = InitRequest::deserialize(payload);
    if (request.has_value()) {
      const SlRemote::InitResult result =
          remote_.init_sl_local(request->quote, request->claimed_slid, clock_);
      response.ok = result.ok;
      response.slid = result.slid;
      response.old_backup_key = result.old_backup_key;
      response.restore_allowed = result.restore_allowed;
    }
    return response.serialize();
  });

  server.register_method("sl.renew", [this](ByteView payload) -> Bytes {
    RenewResponse response;
    const auto request = RenewRequest::deserialize(payload);
    if (request.has_value()) {
      if (request->consumed > 0) {
        remote_.report_consumed(request->slid, request->license.lease_id,
                                request->consumed);
      }
      const SlRemote::RenewResult result = remote_.renew(
          request->slid, request->license, request->health, request->network);
      response.ok = result.ok;
      response.granted = result.granted;
    }
    return response.serialize();
  });

  server.register_method("sl.attest", [this](ByteView payload) -> Bytes {
    Bytes response;
    std::size_t offset = 0;
    const auto quote = deserialize_quote(payload, offset);
    const bool ok = quote.has_value() && remote_.attest_only(*quote, clock_);
    put_u32(response, ok ? 1 : 0);
    return response;
  });

  server.register_method("sl.shutdown", [this](ByteView payload) -> Bytes {
    const auto request = ShutdownRequest::deserialize(payload);
    Bytes response;
    if (request.has_value()) {
      remote_.graceful_shutdown(request->slid, request->root_key, request->unused);
      put_u32(response, 1);
    } else {
      put_u32(response, 0);
    }
    return response;
  });
}

// --- Client stub ----------------------------------------------------------------------------

SlRemoteClient::SlRemoteClient(net::RpcClient& rpc) : rpc_(rpc) {}

std::optional<InitResponse> SlRemoteClient::init(const InitRequest& request) {
  const net::RpcResult result = rpc_.call("sl.init", request.serialize());
  if (!result.ok) return std::nullopt;
  return InitResponse::deserialize(result.payload);
}

std::optional<RenewResponse> SlRemoteClient::renew(const RenewRequest& request) {
  const net::RpcResult result = rpc_.call("sl.renew", request.serialize());
  if (!result.ok) return std::nullopt;
  return RenewResponse::deserialize(result.payload);
}

bool SlRemoteClient::attest(const sgx::Quote& quote) {
  const net::RpcResult result = rpc_.call("sl.attest", serialize_quote(quote));
  if (!result.ok || result.payload.size() < 4) return false;
  return get_u32(result.payload, 0) != 0;
}

bool SlRemoteClient::shutdown(const ShutdownRequest& request) {
  const net::RpcResult result = rpc_.call("sl.shutdown", request.serialize());
  if (!result.ok || result.payload.size() < 4) return false;
  return get_u32(result.payload, 0) != 0;
}

}  // namespace sl::lease::wire
