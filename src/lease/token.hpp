// Tokens of execution (paper Sections 4.4 and 5.4).
//
// SL-Local hands an SL-Manager a MAC-authenticated token after a successful
// lease check; the token may carry several executions at once (the batching
// optimization of Section 7.3 — ten tokens per local attestation). The MAC
// key is the session secret the two enclaves derived during their local
// attestation, so a token cannot be forged or re-targeted.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"
#include "lease/license.hpp"

namespace sl::lease {

struct ExecutionToken {
  LeaseId lease_id = 0;
  std::uint32_t executions = 0;   // how many runs this token authorizes
  std::uint64_t issued_at_ms = 0; // SL-Local virtual time at issue
  std::uint64_t nonce = 0;        // uniquifies tokens of the same batch
  crypto::Sha256Digest mac{};

  Bytes mac_payload() const;
};

// Issues a token under `session_key`.
ExecutionToken issue_token(std::uint64_t session_key, LeaseId lease_id,
                           std::uint32_t executions, std::uint64_t issued_at_ms,
                           std::uint64_t nonce);

// Verifies MAC + lease binding; returns false on any mismatch.
bool verify_token(std::uint64_t session_key, const ExecutionToken& token,
                  LeaseId expected_lease);

}  // namespace sl::lease
