#include "lease/shard_router.hpp"

#include <algorithm>
#include <utility>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "core/scheduler.hpp"
#include "crypto/murmur.hpp"

namespace sl::lease {

namespace {
// Seed of the routing hash. Changing it rebalances every deployment, so it
// is part of the wire contract and pinned by the differential tests.
constexpr std::uint64_t kRouteSeed = 0x40075e11;
}  // namespace

ShardRouter::ShardRouter(const LicenseAuthority& authority,
                         sgx::AttestationService& ias,
                         sgx::Measurement expected_sl_local,
                         std::size_t shard_count, ShardConfig config) {
  require(shard_count >= 1, "ShardRouter: shard_count must be >= 1");
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    // Shards share no key material: each tree keygen gets a distinct seed,
    // and each journal device its own fault-injection stream.
    ShardConfig shard_config = config;
    shard_config.keygen_seed = config.keygen_seed + i;
    shard_config.durability.device_seed = config.durability.device_seed + i;
    shard_config.obs_shard = std::to_string(i);
    shards_.push_back(std::make_unique<RemoteShard>(authority, ias,
                                                    expected_sl_local,
                                                    shard_config));
  }
}

std::size_t ShardRouter::shard_of(CustomerId customer, LeaseId lease,
                                  std::size_t shard_count) {
  Bytes buffer;
  put_u64(buffer, customer);
  put_u32(buffer, lease);
  return static_cast<std::size_t>(crypto::murmur3_64(buffer, kRouteSeed) %
                                  shard_count);
}

std::size_t ShardRouter::shard_of(CustomerId customer, LeaseId lease) const {
  return shard_of(customer, lease, shards_.size());
}

std::size_t ShardRouter::home_shard(CustomerId customer) const {
  Bytes buffer;
  put_u64(buffer, customer);
  return static_cast<std::size_t>(crypto::murmur3_64(buffer, kRouteSeed) %
                                  shards_.size());
}

void ShardRouter::provision(CustomerId customer, const LicenseFile& license) {
  shards_[shard_of(customer, license.lease_id)]->provision(license);
}

void ShardRouter::revoke(CustomerId customer, LeaseId lease) {
  shards_[shard_of(customer, lease)]->revoke(lease);
}

void ShardRouter::register_client(CustomerId customer, ClientId client,
                                  double health, double network) {
  ClientState& state = clients_[{customer, client}];
  state.health = health;
  state.network = network;
}

Slid ShardRouter::slid_for(CustomerId customer, ClientId client,
                           std::size_t shard) {
  auto it = clients_.find({customer, client});
  require(it != clients_.end(), "ShardRouter: client not registered");
  ClientState& state = it->second;
  auto slid = state.slids.find(shard);
  if (slid != state.slids.end()) return slid->second;
  const Slid minted =
      shards_[shard]->admit_peer(state.health, state.network);
  state.slids[shard] = minted;
  return minted;
}

bool ShardRouter::submit(CustomerId customer, ClientId client,
                         const LicenseFile& license, std::uint64_t consumed,
                         std::uint64_t ticket) {
  const std::size_t shard = shard_of(customer, license.lease_id);
  if (!shards_[shard]->accepting()) {
    // No SLID can be minted on a down shard; hand enqueue an empty request
    // so the arrival is counted as a down-rejection like any other.
    return shards_[shard]->enqueue(PendingRenew{});
  }
  PendingRenew request;
  request.ticket = ticket;
  request.slid = slid_for(customer, client, shard);
  request.license = license;
  const ClientState& state = clients_.at({customer, client});
  request.health = state.health;
  request.network = state.network;
  request.consumed = consumed;
  return shards_[shard]->enqueue(std::move(request));
}

std::vector<ShardRouter::Completion> ShardRouter::drain_all() {
  std::vector<Completion> completions;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i]->accepting()) continue;  // a crashed shard drains nothing
    for (const RenewOutcome& outcome : shards_[i]->drain()) {
      completions.push_back(Completion{i, outcome});
    }
  }
  return completions;
}

SlRemote::RenewResult ShardRouter::renew_now(std::size_t shard, Slid slid,
                                             const LicenseFile& license,
                                             double health, double network,
                                             std::uint64_t consumed,
                                             std::uint64_t request_id) {
  RemoteShard& owner = *shards_[shard];
  SlRemote::RenewResult result;
  if (!owner.accepting()) return result;  // callers treat a down shard as denial
  // The synchronous path must not interleave with queued router traffic:
  // flush any backlog so the drain below processes exactly this request.
  if (owner.pending() > 0) owner.drain();
  PendingRenew request;
  request.slid = slid;
  request.license = license;
  request.health = health;
  request.network = network;
  request.consumed = consumed;
  request.request_id = request_id;
  if (!owner.enqueue(std::move(request))) return result;
  const std::vector<RenewOutcome> outcomes = owner.drain();
  if (!outcomes.empty()) {
    result.ok = outcomes.back().status == RenewStatus::kGranted;
    result.granted = outcomes.back().granted;
  }
  return result;
}

std::optional<LeaseLedger> ShardRouter::ledger(CustomerId customer,
                                               LeaseId lease) const {
  return shards_[shard_of(customer, lease)]->remote().ledger(lease);
}

std::vector<std::pair<LeaseId, LeaseLedger>> ShardRouter::ledgers() const {
  std::vector<std::pair<LeaseId, LeaseLedger>> merged;
  for (const auto& shard : shards_) {
    for (const LeaseId lease : shard->remote().provisioned_leases()) {
      merged.emplace_back(lease, *shard->remote().ledger(lease));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return merged;
}

SlRemoteStats ShardRouter::aggregate_stats() const {
  SlRemoteStats total;
  for (const auto& shard : shards_) {
    const SlRemoteStats s = shard->lifetime_remote_stats();
    total.remote_attestations += s.remote_attestations;
    total.registrations += s.registrations;
    total.renewals += s.renewals;
    total.renewals_denied += s.renewals_denied;
    total.forfeited_gcls += s.forfeited_gcls;
    total.reclaimed_gcls += s.reclaimed_gcls;
  }
  return total;
}

ShardStats ShardRouter::aggregate_shard_stats() const {
  ShardStats total;
  for (const auto& shard : shards_) {
    const ShardStats& s = shard->stats();
    total.enqueued += s.enqueued;
    total.overloads += s.overloads;
    total.down_rejections += s.down_rejections;
    total.processed += s.processed;
    total.deduped += s.deduped;
    total.batches += s.batches;
    total.granted += s.granted;
    total.denied += s.denied;
    total.checkpoints += s.checkpoints;
    total.forced_checkpoints += s.forced_checkpoints;
    total.quorum_stalls += s.quorum_stalls;
    total.parked += s.parked;
    total.parked_released += s.parked_released;
    total.busy_cycles += s.busy_cycles;
  }
  return total;
}

double ShardRouter::virtual_seconds() const {
  double furthest = 0.0;
  for (const auto& shard : shards_) {
    furthest = std::max(furthest, shard->clock().seconds());
  }
  return furthest;
}

std::uint64_t ShardRouter::state_digest() {
  std::uint64_t digest = kRouteSeed;
  for (const auto& shard : shards_) {
    Bytes buffer;
    put_u64(buffer, shard->state_digest());
    digest = crypto::murmur3_64(buffer, digest);
  }
  return digest;
}

std::uint64_t ShardRouter::state_digest_full() const {
  std::uint64_t digest = kRouteSeed;
  for (const auto& shard : shards_) {
    Bytes buffer;
    put_u64(buffer, shard->state_digest_full());
    digest = crypto::murmur3_64(buffer, digest);
  }
  return digest;
}

// --- ShardGateway -----------------------------------------------------------

ShardGateway::ShardGateway(ShardRouter& router, ShardRouter::CustomerId customer,
                           net::SimNetwork& network, net::NodeId node,
                           SimClock& clock)
    : router_(router),
      customer_(customer),
      network_(network),
      node_(node),
      clock_(clock) {}

std::optional<SlRemote::InitResult> ShardGateway::init(const sgx::Quote& quote,
                                                       Slid claimed_slid) {
  if (!network_.round_trip(node_, clock_)) return std::nullopt;
  const std::size_t home = router_.home_shard(customer_);
  // A crashed home shard is indistinguishable from an unreachable server.
  if (!router_.shard(home).accepting()) return std::nullopt;
  const SlRemote::InitResult result =
      router_.shard(home).admit(quote, claimed_slid, clock_);
  if (!result.ok) return result;
  admission_quote_ = quote;
  slids_[home] = result.slid;
  // Replay the (re-)init on every other shard already holding state for this
  // node, so the pessimistic crash policy (Section 5.7) forfeits outstanding
  // sub-GCLs there too. Internal replication on the private clock; ascending
  // shard order for determinism. A down shard misses the replay; its next
  // admission of this node happens through shard_slid() after recovery.
  for (std::size_t shard = 0; shard < router_.shard_count(); ++shard) {
    if (shard == home) continue;
    auto it = slids_.find(shard);
    if (it == slids_.end()) continue;
    if (!router_.shard(shard).accepting()) continue;
    router_.shard(shard).admit(quote, it->second, replica_clock_);
  }
  return result;
}

Slid ShardGateway::shard_slid(std::size_t shard) {
  auto it = slids_.find(shard);
  if (it != slids_.end()) return it->second;
  if (!admission_quote_.has_value()) return 0;
  if (!router_.shard(shard).accepting()) return 0;
  const SlRemote::InitResult result =
      router_.shard(shard).admit(*admission_quote_, 0, replica_clock_);
  if (!result.ok) return 0;
  slids_[shard] = result.slid;
  return result.slid;
}

std::optional<SlRemote::RenewResult> ShardGateway::renew(
    Slid slid, const LicenseFile& license, double health, double network,
    std::uint64_t consumed, std::uint64_t request_id) {
  if (!network_.round_trip(node_, clock_)) return std::nullopt;
  const std::size_t shard = router_.shard_of(customer_, license.lease_id);
  // A crashed owning shard looks like a dropped request: the client times
  // out, backs off, and retries with the same request id.
  if (!router_.shard(shard).accepting()) return std::nullopt;
  Slid local_slid = slid;
  if (shard != router_.home_shard(customer_)) {
    local_slid = shard_slid(shard);
    // Never admitted on the owning shard: the server denies, exactly as the
    // serial SL-Remote denies an unknown SLID.
    if (local_slid == 0) return SlRemote::RenewResult{};
  }
  if (scheduler_ != nullptr) {
    return scheduler_->renew_now(shard, local_slid, license, health, network,
                                 consumed, request_id);
  }
  return router_.renew_now(shard, local_slid, license, health, network,
                           consumed, request_id);
}

bool ShardGateway::graceful_shutdown(
    Slid slid, std::uint64_t root_key,
    const std::unordered_map<LeaseId, std::uint64_t>& unused) {
  if (!network_.round_trip(node_, clock_)) return false;
  const std::size_t home = router_.home_shard(customer_);
  // The escrow endpoint is the home shard; with it down the shutdown cannot
  // be recorded and the client must treat it as unreachable-server.
  if (!router_.shard(home).accepting()) return false;
  // Split the unused-count report by owning shard; every shard where this
  // node is registered gets the graceful mark (and the escrowed root key),
  // so a later clean restart is graceful service-wide.
  std::unordered_map<std::size_t, std::unordered_map<LeaseId, std::uint64_t>>
      by_shard;
  for (const auto& [lease, count] : unused) {
    by_shard[router_.shard_of(customer_, lease)][lease] = count;
  }
  for (std::size_t shard = 0; shard < router_.shard_count(); ++shard) {
    auto it = slids_.find(shard);
    if (it == slids_.end()) continue;
    // A down shard never hears about the graceful shutdown: when it
    // recovers, this node is still marked alive there, and its next init is
    // treated as a crash — outstanding sub-GCLs on that shard forfeit
    // (Section 5.7's pessimistic policy, now per shard).
    if (!router_.shard(shard).accepting()) continue;
    const Slid use = shard == home ? slid : it->second;
    auto split = by_shard.find(shard);
    router_.shard(shard).escrow(
        use, root_key,
        split == by_shard.end() ? std::unordered_map<LeaseId, std::uint64_t>{}
                                : split->second);
  }
  return true;
}

bool ShardGateway::attest(const sgx::Quote& quote) {
  RemoteShard& home = router_.shard(router_.home_shard(customer_));
  if (!home.accepting()) return false;
  return home.remote().attest_only(quote, clock_);
}

}  // namespace sl::lease
