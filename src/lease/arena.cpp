#include "lease/arena.hpp"

#include <new>

#include "common/error.hpp"

namespace sl::lease {

SlabArena::SlabArena(std::size_t cell_size, std::size_t cell_align,
                     std::size_t cells_per_slab)
    : cell_size_(cell_size),
      cell_align_(cell_align),
      cells_per_slab_(cells_per_slab) {
  require(cell_size_ >= sizeof(FreeCell),
          "SlabArena: cell too small for free-list threading");
  require(cells_per_slab_ >= 1, "SlabArena: need at least one cell per slab");
  if (cell_align_ < alignof(FreeCell)) cell_align_ = alignof(FreeCell);
  // Round the stride up so consecutive cells stay aligned.
  cell_size_ = (cell_size_ + cell_align_ - 1) / cell_align_ * cell_align_;
  stats_.cells_per_slab = cells_per_slab_;
}

SlabArena::~SlabArena() {
  for (void* slab : slabs_) {
    ::operator delete(slab, std::align_val_t(cell_align_));
  }
}

void SlabArena::add_slab() {
  if (next_slab_ == slabs_.size()) {
    // No recycled slab available (see reset()): grow.
    slabs_.push_back(::operator new(cell_size_ * cells_per_slab_,
                                    std::align_val_t(cell_align_)));
    stats_.slabs = slabs_.size();
  }
  bump_ = static_cast<std::byte*>(slabs_[next_slab_]);
  bump_left_ = cells_per_slab_;
  ++next_slab_;
}

void* SlabArena::allocate() {
  ++stats_.allocated;
  ++stats_.live;
  if (free_list_ != nullptr) {
    ++stats_.reused;
    FreeCell* cell = free_list_;
    free_list_ = cell->next;
    return cell;
  }
  if (bump_left_ == 0) add_slab();
  void* cell = bump_;
  bump_ += cell_size_;
  --bump_left_;
  return cell;
}

void SlabArena::deallocate(void* ptr) {
  require(ptr != nullptr, "SlabArena: deallocate(nullptr)");
  require(stats_.live > 0, "SlabArena: more frees than allocations");
  --stats_.live;
  auto* cell = static_cast<FreeCell*>(ptr);
  cell->next = free_list_;
  free_list_ = cell;
}

void SlabArena::reset() {
  free_list_ = nullptr;
  stats_.live = 0;
  next_slab_ = 0;
  bump_ = nullptr;
  bump_left_ = 0;
}

}  // namespace sl::lease
