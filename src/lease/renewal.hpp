// Adaptive GCL renewal (paper Section 5.3, Algorithm 1, Table 2).
//
// SL-Remote decides how many executions (the sub-GCL g_i) to pre-distribute
// to a client node, balancing:
//  * fairness across C concurrent requesters (weights alpha_i),
//  * a default scale-down policy D that bounds what one node can hold,
//  * a crash penalty (low node health h_i shrinks the grant),
//  * a network bonus for healthy nodes on flaky links (they get more so
//    they can ride out disconnections), and
//  * a per-license expected-loss cap tau: because crashes forfeit
//    outstanding sub-GCLs (the pessimistic replay defence of Section 5.7),
//    SL-Remote keeps  sum_i g_i * (1 - h_i) <= tau.
#pragma once

#include <cstdint>
#include <vector>

namespace sl::lease {

struct RenewalParams {
  double D = 4.0;      // scale-down: g = G/D (paper evaluates D with g=25% of G)
  double T_H = 0.9;    // health threshold for the network bonus
  double beta = 0.01;  // default per-license scale-down factor
  double tau_fraction = 0.10;  // tau = 10% of the total GCL
};

// Per-node state SL-Remote tracks (Table 2).
struct NodeState {
  double alpha = 1.0;      // weight (normalized across requesters)
  double health = 1.0;     // h in [0,1]; 1 = never crashes
  double network = 1.0;    // n in (0,1]; 1 = stable link
  std::uint64_t outstanding = 0;  // sub-GCL counts currently held
};

struct RenewalDecision {
  std::uint64_t granted = 0;  // g_i
  double expected_loss = 0.0; // post-decision ExpLoss(L) across all nodes
  double beta_used = 0.0;
};

// Algorithm 1. `total_gcl` is TG (the license's remaining pool), `nodes`
// holds every concurrent requester's state, and `requester` indexes the
// node being served. Grants are clamped to the remaining pool.
RenewalDecision renew_lease(std::uint64_t total_gcl,
                            const std::vector<NodeState>& nodes,
                            std::size_t requester, const RenewalParams& params);

// Equation 1: expected loss of license L given outstanding sub-GCLs.
double expected_loss(const std::vector<NodeState>& nodes);

}  // namespace sl::lease
