#include "lease/gateway.hpp"

namespace sl::lease {

// --- DirectGateway ------------------------------------------------------------

DirectGateway::DirectGateway(SlRemote& remote, net::SimNetwork& network,
                             net::NodeId node, SimClock& clock)
    : remote_(remote), network_(network), node_(node), clock_(clock) {}

std::optional<SlRemote::InitResult> DirectGateway::init(const sgx::Quote& quote,
                                                        Slid claimed_slid) {
  if (!network_.round_trip(node_, clock_)) return std::nullopt;
  return remote_.init_sl_local(quote, claimed_slid, clock_);
}

std::optional<SlRemote::RenewResult> DirectGateway::renew(
    Slid slid, const LicenseFile& license, double health, double network,
    std::uint64_t consumed, std::uint64_t request_id) {
  // The serial in-process server has no idempotency table.
  (void)request_id;
  if (!network_.round_trip(node_, clock_)) return std::nullopt;
  if (consumed > 0) remote_.report_consumed(slid, license.lease_id, consumed);
  return remote_.renew(slid, license, health, network);
}

bool DirectGateway::graceful_shutdown(
    Slid slid, std::uint64_t root_key,
    const std::unordered_map<LeaseId, std::uint64_t>& unused) {
  if (!network_.round_trip(node_, clock_)) return false;
  remote_.graceful_shutdown(slid, root_key, unused);
  return true;
}

bool DirectGateway::attest(const sgx::Quote& quote) {
  return remote_.attest_only(quote, clock_);
}

// --- WireGateway -----------------------------------------------------------------

WireGateway::WireGateway(net::RpcClient& rpc) : client_(rpc) {}

std::optional<SlRemote::InitResult> WireGateway::init(const sgx::Quote& quote,
                                                      Slid claimed_slid) {
  wire::InitRequest request;
  request.claimed_slid = claimed_slid;
  request.quote = quote;
  const auto response = client_.init(request);
  if (!response.has_value()) return std::nullopt;
  SlRemote::InitResult result;
  result.ok = response->ok;
  result.slid = response->slid;
  result.old_backup_key = response->old_backup_key;
  result.restore_allowed = response->restore_allowed;
  return result;
}

std::optional<SlRemote::RenewResult> WireGateway::renew(
    Slid slid, const LicenseFile& license, double health, double network,
    std::uint64_t consumed, std::uint64_t request_id) {
  wire::RenewRequest request;
  request.slid = slid;
  request.license = license;
  request.health = health;
  request.network = network;
  request.consumed = consumed;
  request.request_id = request_id;
  const auto response = client_.renew(request);
  if (!response.has_value()) return std::nullopt;
  // Overloaded means the shard queue rejected the request before processing
  // it (the consumption report was NOT applied) — same as a transport
  // failure from the caller's perspective: retry later.
  if (response->overloaded) return std::nullopt;
  SlRemote::RenewResult result;
  result.ok = response->ok;
  result.granted = response->granted;
  return result;
}

bool WireGateway::graceful_shutdown(
    Slid slid, std::uint64_t root_key,
    const std::unordered_map<LeaseId, std::uint64_t>& unused) {
  wire::ShutdownRequest request;
  request.slid = slid;
  request.root_key = root_key;
  request.unused = unused;
  return client_.shutdown(request);
}

bool WireGateway::attest(const sgx::Quote& quote) {
  return client_.attest(quote);
}

}  // namespace sl::lease
