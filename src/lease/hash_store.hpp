// Hash-table lease stores — the Table 1 baselines.
//
// The paper compares the tree-based SL-Local against two hash-table
// organizations whose find() must first hash the lease identity: one using
// MurmurHash (the hash behind C++ unordered_map implementations) and one
// using SHA-256. The tree wins because its lookup is four indexed hops with
// no hash computation; these classes exist to regenerate that comparison
// and to demonstrate why offloading metadata is awkward for flat tables.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <vector>

#include "lease/gcl.hpp"
#include "lease/lease_tree.hpp"

namespace sl::lease {

enum class HashKind { kMurmur, kSha256 };

class HashLeaseStore {
 public:
  HashLeaseStore(HashKind kind, std::size_t bucket_count = 4096);

  void insert(LeaseId id, const Gcl& gcl);
  LeaseRecord* find(LeaseId id);
  bool erase(LeaseId id);

  std::size_t size() const { return size_; }
  // Resident bytes: bucket array + per-lease records (records cannot be
  // individually offloaded without rebuilding the table).
  std::uint64_t resident_bytes() const;

 private:
  struct Slot {
    LeaseId id = 0;
    std::unique_ptr<LeaseRecord> record;
  };

  std::size_t bucket_of(LeaseId id) const;

  HashKind kind_;
  std::vector<std::list<Slot>> buckets_;
  std::size_t size_ = 0;
};

}  // namespace sl::lease
