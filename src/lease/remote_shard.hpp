// One shard of the multi-tenant SL-Remote service.
//
// The paper's SL-Remote (sl_remote.hpp) serves one client stack at a time;
// a production deployment must absorb renewal traffic from many tenants at
// once. A RemoteShard wraps one SlRemote instance with the three things the
// serial server lacks:
//  * its own virtual-cycle clock — server-side work (Algorithm 1, ledger
//    updates, tree commits) is charged here, so N shards model N cores and
//    the load generator can report throughput/latency vs. shard count;
//  * a server-side lease tree (Section 5.5's encrypt-and-hash structure)
//    holding the durable per-lease pool image, committed after every
//    renewal batch — the cost the batcher amortizes;
//  * a bounded request queue with explicit backpressure: enqueue() returns
//    false when the queue is full and the caller surfaces an Overloaded
//    wire response instead of letting the backlog grow without bound.
//
// The renewal batcher in drain() coalesces concurrent RenewRequests for the
// same license into one tree commit. Coalescing must not change paper
// semantics: requests of one license are processed in FIFO order, so the
// Algorithm 1 decisions are exactly those of serial execution, and the
// committed record content (hence its integrity hash) is identical — only
// the number of encrypt-and-hash commits shrinks. The batching-equivalence
// test (tests/lease/test_batching_equivalence.cpp) pins this down.
//
// With durability enabled the shard is crash-consistent (docs/DURABILITY.md):
// every ledger mutation is journaled as a sealed hash-chained record before
// it is acknowledged, the group commit syncs once per drain, a checkpointer
// snapshots state and truncates the journal, and crash()/recover() model a
// server power loss with seeded storage-fault injection on the unsynced
// journal tail. Renewals carry client request ids deduplicated across
// recovery, so a retried renewal is never double-burned.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/sim_clock.hpp"
#include "lease/durability.hpp"
#include "lease/lease_tree.hpp"
#include "lease/sl_remote.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "replication/group.hpp"
#include "storage/journal.hpp"

namespace sl::lease {

// Durability knobs for one shard. Disabled by default: the in-memory shard
// of PR 3 remains available for microbenchmarks and differential baselines.
struct ShardDurability {
  bool journaling = false;
  storage::StorageProfile profile;
  storage::FaultConfig faults;      // crash-time model for the journal tail
  std::uint64_t device_seed = 0xd15cdeadULL;
  // Seals journal records and checkpoints; 0 derives one from keygen_seed.
  std::uint64_t master_key = 0;
  // Journal size that triggers an automatic checkpoint after a drain.
  std::uint64_t checkpoint_every_bytes = 64 * 1024;
  // WAL replication (docs/REPLICATION.md): total copies including this
  // shard, 2f+1 (0 = off, 3 = tolerate one failure). Requires journaling.
  std::uint32_t replicas = 0;
  // Wire profile between the leader and its followers (both directions).
  // The lossless default is bit-identical to direct delivery; a lossy
  // profile exercises the ack-timeout/retransmission machinery.
  net::LinkProfile replica_link = net::lossless_link();
  // Ack timeout / bounded retransmission knobs for the replication wire.
  replication::RetransmitPolicy retransmit = {};
};

struct ShardConfig {
  // Bounded pending-renewal queue; enqueue() past this is an overload.
  std::size_t queue_capacity = 128;
  // Coalesce same-license renewals into one tree commit per drain().
  bool batching = true;
  // Virtual-cycle cost model for server-side work, charged to the shard
  // clock (decomposed in docs/WIRE.md): per-renewal validation + Algorithm 1
  // + ledger update; per-frame parse (one frame per coalesced group with
  // batched framing, one per message with legacy framing); and the commit —
  // a leaf-only incremental re-seal with batched framing, the full
  // encrypt-and-hash sweep of Section 5.5 with legacy framing.
  Cycles cycles_per_renewal = 32'000;
  Cycles cycles_per_frame_parse = 8'000;
  Cycles cycles_per_leaf_commit = 12'000;
  Cycles cycles_per_commit = 120'000;
  // Pre-batching wire + commit behavior: one frame per message (40k cycles
  // total), one full tree commit per group (120k cycles), one WAL record
  // per group, evict-on-commit tree. The differential gates run both modes
  // and require bit-identical state digests.
  bool legacy_framing = false;
  // RA latency the wrapped SlRemote charges clients at init (Section 5.1).
  double ra_latency_seconds = 3.5;
  // Seeds the shard's server-side tree key generator.
  std::uint64_t keygen_seed = 0xd15c0;
  // Value of the {shard="..."} label on this shard's metric series; the
  // ShardRouter sets it to the shard index.
  std::string obs_shard = "0";
  ShardDurability durability;
};

enum class RenewStatus : std::uint8_t {
  kGranted = 0,
  kDenied = 1,
  kOverloaded = 2,  // backpressure: the shard queue was full
};

const char* renew_status_name(RenewStatus status);

// One queued renewal. `ticket` is a caller-chosen id used to match the
// outcome back to the submitting client. `request_id` (when nonzero) makes
// the request idempotent: a retry with the same id returns the recorded
// outcome instead of burning the pool again.
struct PendingRenew {
  std::uint64_t ticket = 0;
  Slid slid = 0;
  LicenseFile license;
  double health = 1.0;
  double network = 1.0;
  std::uint64_t consumed = 0;  // piggybacked consumption report
  std::uint64_t request_id = 0;
};

struct RenewOutcome {
  std::uint64_t ticket = 0;
  RenewStatus status = RenewStatus::kDenied;
  std::uint64_t granted = 0;
  Cycles completed_at = 0;  // shard clock when the request's batch committed
  Cycles latency = 0;       // completed_at - drain start
};

struct ShardStats {
  std::uint64_t enqueued = 0;
  std::uint64_t overloads = 0;  // rejected at the bounded queue
  std::uint64_t down_rejections = 0;  // rejected because the shard is down
  std::uint64_t processed = 0;
  std::uint64_t deduped = 0;    // answered from the idempotency table
  std::uint64_t batches = 0;    // tree commits (one per coalesced group)
  std::uint64_t granted = 0;
  std::uint64_t denied = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t forced_checkpoints = 0;  // triggered by a full journal device
  std::uint64_t quorum_stalls = 0;  // drains deferred below replica quorum
  // Outcomes withheld because their group commit could not reach the
  // replica quorum (graceful degradation: locally durable, not yet acked).
  std::uint64_t parked = 0;
  std::uint64_t parked_released = 0;  // parked outcomes acked after a heal
  Cycles busy_cycles = 0;       // total server-side work charged
};

// Verdict of one recover() run; check_recovery() in sim/oracles.hpp turns it
// into an oracle finding.
struct RecoveryReport {
  bool ok = false;              // structural recovery succeeded
  // Recovered state digest equals both the last journaled post-digest and
  // the digest at the last completed sync (the committed prefix).
  bool digest_match = false;
  // The replayed journal ends before the synced frontier: acknowledged
  // state was lost — the one thing that must never happen.
  bool lost_committed = false;
  bool tail_truncated = false;  // hash chain cut off a torn/corrupt tail
  std::uint64_t truncated_bytes = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t intents_dropped = 0;  // in-flight requests forfeited
  std::uint64_t recovered_digest = 0;
  std::uint64_t committed_digest = 0;
  std::uint64_t generation = 0;
  std::string detail;           // diagnosis when !ok (or the stop reason)
};

// Verdict of one fail_over() run; check_replication() in sim/oracles.hpp
// turns it into an oracle finding. The two safety properties: ok +
// digest_match + !lost_committed mean no acked renewal was lost by the
// leader change, and new_epoch > old_epoch means every post-failover record
// is fenced against the deposed leader.
struct FailoverReport {
  // False when the failover never deposed the leader: no election quorum,
  // or the election itself failed (candidacies lost on a lossy wire). The
  // leader stays up and the safety checks below are vacuous.
  bool attempted = false;
  bool ok = false;
  bool digest_match = false;    // recovered digest == pre-failover committed
  bool lost_committed = false;  // elected prefix ended before the acked seq
  std::uint64_t old_epoch = 0;
  std::uint64_t new_epoch = 0;
  std::size_t elected = 0;      // winning follower index (0-based)
  std::uint64_t elected_seq = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t recovered_digest = 0;
  std::uint64_t committed_digest = 0;
  std::string detail;
};

// Verdict of one stale-leader resurrection probe: every up follower must
// reject the deposed leader's fenced-out append.
struct StaleAppendReport {
  bool attempted = false;   // a deposed leader image existed to resurrect
  std::size_t delivered = 0;
  std::size_t accepted = 0;  // must be 0 — oracle input
  std::uint64_t stale_epoch = 0;
};

class RemoteShard {
 public:
  RemoteShard(const LicenseAuthority& authority, sgx::AttestationService& ias,
              sgx::Measurement expected_sl_local, ShardConfig config = {});

  SlRemote& remote() { return *remote_; }
  const SlRemote& remote() const { return *remote_; }
  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  const ShardConfig& config() const { return config_; }
  const ShardStats& stats() const { return stats_; }
  std::size_t pending() const { return queue_len_; }
  bool up() const { return up_; }
  // Up AND able to commit: with replication on, a shard below follower
  // quorum must not acknowledge work, so callers treat it as unreachable.
  bool accepting() const {
    return up_ && (group_ == nullptr || group_->quorum_available());
  }

  // Server-side stats across shard restarts: replayed operations are not
  // double-counted (recovery resets the live counters and re-adds the
  // totals carried over from the crashed incarnation).
  SlRemoteStats lifetime_remote_stats() const;

  // Provisions the license on the wrapped SlRemote and installs the durable
  // pool record in the server-side tree.
  void provision(const LicenseFile& license);
  void revoke(LeaseId lease);

  // --- Journaled lifecycle wrappers ----------------------------------------
  // Client admission (init_sl_local) with the admission outcome journaled;
  // also invalidates the SLID's idempotency entry — a new client generation
  // must never be answered from a previous one's dedup record.
  SlRemote::InitResult admit(const sgx::Quote& quote, Slid claimed_slid,
                             SimClock& clock);
  // Router-level telemetry admission (register_peer), journaled.
  Slid admit_peer(double health, double network);
  // Graceful shutdown: root-key escrow + unused credits, journaled.
  void escrow(Slid slid, std::uint64_t root_key,
              const std::unordered_map<LeaseId, std::uint64_t>& unused);

  // Bounded-queue admission. Returns false when the shard is down or the
  // queue is at capacity — the caller must answer Overloaded, not block.
  // With journaling on, an accepted request appends an (unsynced) intent
  // record: the journal tail that a crash may tear.
  bool enqueue(PendingRenew request);

  // Processes every queued request. With batching on, requests are grouped
  // by license (FIFO within a license, first-appearance order across
  // licenses) and each group pays one tree commit; with batching off every
  // request commits individually. Outcomes preserve submission tickets.
  // With journaling on, each group appends one renewal-batch record and the
  // whole drain syncs once (group commit) before outcomes are returned —
  // an acknowledged outcome is always durable.
  std::vector<RenewOutcome> drain();
  // Same, but outcomes land in `out` (cleared first, capacity reused). With
  // journaling off, the steady-state enqueue+drain_into path performs no
  // heap allocation (asserted by tests/lease/test_zero_alloc.cpp).
  void drain_into(std::vector<RenewOutcome>& out);

  // --- Durability ------------------------------------------------------------
  // Snapshots the full shard state into the checkpoint store and truncates
  // the journal down to a genesis record naming the new generation.
  void checkpoint();
  // Power loss: applies the storage fault model to the unsynced journal
  // tail, drops the queue and marks the shard down.
  void crash();
  // Restart: verifies the hash chain, truncates at the first torn/corrupt
  // record, rebuilds state from checkpoint + replay, drops in-flight
  // intents (pessimistic policy) and brings the shard back up.
  RecoveryReport recover();

  std::uint64_t committed_digest() const { return committed_digest_; }
  std::uint64_t generation() const { return generation_; }
  const storage::Journal* journal() const { return journal_.get(); }
  storage::Journal* journal() { return journal_.get(); }

  // --- Replication (docs/REPLICATION.md) -----------------------------------
  bool replication_enabled() const { return group_ != nullptr; }
  const replication::ReplicaGroup* replica_group() const { return group_.get(); }
  replication::ReplicaGroup* replica_group() { return group_.get(); }
  // Current fencing epoch (0 when journaling or replication is off).
  std::uint64_t epoch() const { return journal_ ? journal_->epoch() : 0; }

  void replica_crash(std::size_t index);
  void replica_restart(std::size_t index);
  // Degrades (or restores) the wire to every follower. Faults only change
  // how frames travel; a healed wire plus the retransmission machinery must
  // converge back to a fully replicated group with no inconsistency.
  void replica_link_fault(const net::LinkProfile& profile);
  void replica_link_heal();
  // The quorum-acked frontier: the highest journal seq known replicated to
  // at least f followers (<= the local synced frontier while degraded).
  std::uint64_t replicated_seq() const { return replicated_seq_; }
  // Outcomes currently withheld awaiting a quorum-replicated commit.
  std::size_t parked_pending() const { return parked_outcomes_.size(); }
  // Leader loss with failover: the live leader is deposed (its image saved
  // for a later stale_append() resurrection), the longest verified chain
  // among the up followers is elected and installed, the fencing epoch is
  // bumped and sealed into every subsequent record, and the followers are
  // fenced. Requires an election quorum (f+1 up followers).
  FailoverReport fail_over();
  // Resurrects the most recently deposed leader: it appends a heartbeat to
  // its own (stale) journal image and offers the frame to every up
  // follower, all of which must reject it as fenced out.
  StaleAppendReport stale_append();

  // Deterministic digest of the shard's durable state: per-lease ledger
  // buckets and the committed record's integrity hash, chained in ascending
  // lease order. Equal digests mean equal grant history and equal durable
  // tree content — the batching-equivalence check.
  std::uint64_t state_digest();
  // From-scratch oracle for the incremental tree: rebuilds every record
  // image from the ledger pools instead of reading the live tree, then
  // chains the same formula. Divergence from state_digest() means the
  // incremental commit path missed an update (stale cached leaf).
  std::uint64_t state_digest_full() const;

 private:
  struct DedupEntry {
    std::uint64_t request_id = 0;
    RenewStatus status = RenewStatus::kDenied;
    std::uint64_t granted = 0;
  };

  void commit_lease_record(LeaseId lease);
  // Rewrites the durable tree record to mirror the current pool and commits
  // it — every pool-changing path goes through this, so the rebuilt
  // post-recovery tree is bit-identical to the live one.
  void sync_lease_record(LeaseId lease);
  // Appends one record (post-digest stamped here). A full journal forces a
  // checkpoint instead: the snapshot captures the already-applied state.
  void journal_append(WalRecord record);
  // Group-commit barrier + committed-digest bookkeeping. Returns false when
  // the sync landed locally but replication could not reach quorum — the
  // caller must withhold acknowledgements for everything in the commit.
  bool journal_commit();
  void maybe_checkpoint();
  // Shared by recover() and the promotion path of fail_over(). A promotion
  // measures loss against the *quorum-acked* frontier (replicated_seq_),
  // not the deposed leader's local synced frontier: records synced locally
  // during a quorum stall were never acknowledged to clients and may
  // legitimately be missing from the elected follower.
  RecoveryReport recover_internal(bool promotion);
  Bytes snapshot() const;
  bool restore_snapshot(ByteView data);
  bool apply_record(const WalRecord& record);
  void rebuild_tree();

  const LicenseAuthority& authority_;
  sgx::AttestationService& ias_;
  sgx::Measurement expected_sl_local_;
  std::unique_ptr<SlRemote> remote_;
  UntrustedStore store_;
  // Declared before tree_: the tree's nodes live in these slabs, so the
  // arenas must be destroyed after it. One pair per shard — never shared
  // across shards (SlabArena is single-threaded by design).
  std::unique_ptr<TreeArenas> arenas_;
  std::unique_ptr<LeaseTree> tree_;
  SimClock clock_;
  ShardConfig config_;
  // Bounded renewal queue as a fixed ring: the slots are constructed once
  // at queue_capacity and move-assigned in place, so steady-state enqueue
  // reuses their storage instead of allocating deque blocks.
  std::vector<PendingRenew> queue_slots_;
  std::size_t queue_head_ = 0;
  std::size_t queue_len_ = 0;
  // drain()/journal scratch, capacity reused across drains.
  std::vector<LeaseId> group_leases_;
  Bytes wal_scratch_;     // serialized WAL record for journal appends
  Bytes digest_scratch_;  // per-lease buffer inside state_digest()
  std::vector<LeaseId> lease_scratch_;  // sorted lease ids for state_digest()
  ShardStats stats_;
  SlRemoteStats carried_remote_stats_;

  std::unique_ptr<storage::Journal> journal_;
  std::unique_ptr<storage::CheckpointStore> checkpoints_;
  // Declared after journal_ (it holds a raw pointer to it) and destroyed
  // before it.
  std::unique_ptr<replication::ReplicaGroup> group_;
  // The deposed leader's durable image and epoch, saved at fail_over() so a
  // stale_append() can later resurrect it against the fenced group.
  struct StaleLeader {
    std::uint64_t epoch = 0;
    Bytes image;
  };
  std::optional<StaleLeader> stale_leader_;
  // request_id idempotency table: last request per SLID (clients retry
  // serially). Journaled inside renewal-batch records and checkpointed, so
  // it survives recovery.
  std::map<Slid, DedupEntry> dedup_;
  std::uint64_t generation_ = 0;
  std::uint64_t committed_digest_ = 0;
  // Quorum-acked frontier: seq and digest of the last commit that f
  // followers confirmed. Trails the local committed frontier while the
  // group is degraded; it is the loss baseline a promotion is held to.
  std::uint64_t replicated_seq_ = 0;
  std::uint64_t replicated_digest_ = 0;
  // Outcomes whose group commit is locally durable but not yet
  // quorum-replicated. Released by the next successful commit; dropped on a
  // crash or failover (clients time out and retry; request ids dedup).
  std::vector<RenewOutcome> parked_outcomes_;
  bool up_ = true;

  // Metric handles, resolved once at construction with this shard's label
  // (null when compiled out). Mirrors ShardStats field-for-field so the
  // conservation tests can assert registry == aggregated ShardStats.
  obs::Counter* obs_enqueued_ = nullptr;
  obs::Counter* obs_overloads_ = nullptr;
  obs::Counter* obs_down_rejections_ = nullptr;
  obs::Counter* obs_processed_ = nullptr;
  obs::Counter* obs_deduped_ = nullptr;
  obs::Counter* obs_batches_ = nullptr;
  obs::Counter* obs_granted_ = nullptr;
  obs::Counter* obs_denied_ = nullptr;
  obs::Counter* obs_checkpoints_ = nullptr;
  obs::Counter* obs_forced_checkpoints_ = nullptr;
  obs::Counter* obs_busy_cycles_ = nullptr;
  obs::Counter* obs_journaled_renewals_ = nullptr;
  obs::Counter* obs_recoveries_ = nullptr;
  obs::Counter* obs_quorum_stalls_ = nullptr;
  obs::Counter* obs_parked_ = nullptr;
  obs::Counter* obs_parked_released_ = nullptr;
  obs::Counter* obs_failovers_ = nullptr;
  obs::Histogram* obs_renew_latency_ = nullptr;
};

}  // namespace sl::lease
