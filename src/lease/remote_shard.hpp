// One shard of the multi-tenant SL-Remote service.
//
// The paper's SL-Remote (sl_remote.hpp) serves one client stack at a time;
// a production deployment must absorb renewal traffic from many tenants at
// once. A RemoteShard wraps one SlRemote instance with the three things the
// serial server lacks:
//  * its own virtual-cycle clock — server-side work (Algorithm 1, ledger
//    updates, tree commits) is charged here, so N shards model N cores and
//    the load generator can report throughput/latency vs. shard count;
//  * a server-side lease tree (Section 5.5's encrypt-and-hash structure)
//    holding the durable per-lease pool image, committed after every
//    renewal batch — the cost the batcher amortizes;
//  * a bounded request queue with explicit backpressure: enqueue() returns
//    false when the queue is full and the caller surfaces an Overloaded
//    wire response instead of letting the backlog grow without bound.
//
// The renewal batcher in drain() coalesces concurrent RenewRequests for the
// same license into one tree commit. Coalescing must not change paper
// semantics: requests of one license are processed in FIFO order, so the
// Algorithm 1 decisions are exactly those of serial execution, and the
// committed record content (hence its integrity hash) is identical — only
// the number of encrypt-and-hash commits shrinks. The batching-equivalence
// test (tests/lease/test_batching_equivalence.cpp) pins this down.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/sim_clock.hpp"
#include "lease/lease_tree.hpp"
#include "lease/sl_remote.hpp"

namespace sl::lease {

struct ShardConfig {
  // Bounded pending-renewal queue; enqueue() past this is an overload.
  std::size_t queue_capacity = 128;
  // Coalesce same-license renewals into one tree commit per drain().
  bool batching = true;
  // Virtual-cycle cost model for server-side work, charged to the shard
  // clock: per-renewal validation + Algorithm 1 + ledger update, and the
  // per-commit encrypt-and-hash of the durable lease record (Section 5.5).
  Cycles cycles_per_renewal = 40'000;
  Cycles cycles_per_commit = 120'000;
  // RA latency the wrapped SlRemote charges clients at init (Section 5.1).
  double ra_latency_seconds = 3.5;
  // Seeds the shard's server-side tree key generator.
  std::uint64_t keygen_seed = 0xd15c0;
};

enum class RenewStatus : std::uint8_t {
  kGranted = 0,
  kDenied = 1,
  kOverloaded = 2,  // backpressure: the shard queue was full
};

const char* renew_status_name(RenewStatus status);

// One queued renewal. `ticket` is a caller-chosen id used to match the
// outcome back to the submitting client.
struct PendingRenew {
  std::uint64_t ticket = 0;
  Slid slid = 0;
  LicenseFile license;
  double health = 1.0;
  double network = 1.0;
  std::uint64_t consumed = 0;  // piggybacked consumption report
};

struct RenewOutcome {
  std::uint64_t ticket = 0;
  RenewStatus status = RenewStatus::kDenied;
  std::uint64_t granted = 0;
  Cycles completed_at = 0;  // shard clock when the request's batch committed
  Cycles latency = 0;       // completed_at - drain start
};

struct ShardStats {
  std::uint64_t enqueued = 0;
  std::uint64_t overloads = 0;  // rejected at the bounded queue
  std::uint64_t processed = 0;
  std::uint64_t batches = 0;    // tree commits (one per coalesced group)
  std::uint64_t granted = 0;
  std::uint64_t denied = 0;
  Cycles busy_cycles = 0;       // total server-side work charged
};

class RemoteShard {
 public:
  RemoteShard(const LicenseAuthority& authority, sgx::AttestationService& ias,
              sgx::Measurement expected_sl_local, ShardConfig config = {});

  SlRemote& remote() { return remote_; }
  const SlRemote& remote() const { return remote_; }
  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  const ShardConfig& config() const { return config_; }
  const ShardStats& stats() const { return stats_; }
  std::size_t pending() const { return queue_.size(); }

  // Provisions the license on the wrapped SlRemote and installs the durable
  // pool record in the server-side tree.
  void provision(const LicenseFile& license);
  void revoke(LeaseId lease);

  // Bounded-queue admission. Returns false (and counts an overload) when the
  // queue is at capacity — the caller must answer Overloaded, not block.
  bool enqueue(PendingRenew request);

  // Processes every queued request. With batching on, requests are grouped
  // by license (FIFO within a license, first-appearance order across
  // licenses) and each group pays one tree commit; with batching off every
  // request commits individually. Outcomes preserve submission tickets.
  std::vector<RenewOutcome> drain();

  // Deterministic digest of the shard's durable state: per-lease ledger
  // buckets and the committed record's integrity hash, chained in ascending
  // lease order. Equal digests mean equal grant history and equal durable
  // tree content — the batching-equivalence check.
  std::uint64_t state_digest();

 private:
  void commit_lease_record(LeaseId lease);

  SlRemote remote_;
  UntrustedStore store_;
  LeaseTree tree_;
  SimClock clock_;
  ShardConfig config_;
  std::deque<PendingRenew> queue_;
  ShardStats stats_;
};

}  // namespace sl::lease
