#include "lease/thread_backend.hpp"

#include <chrono>
#include <string>

#include "common/error.hpp"

namespace sl::lease {

ThreadScheduler::ThreadScheduler(ShardRouter& router)
    : core::Scheduler(router),
      capacity_(router.shard(0).config().queue_capacity) {
  const std::size_t shards = router.shard_count();
  lanes_.reserve(shards);
  obs_backpressure_.reserve(shards);
  obs_down_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    // +1 physical headroom: at most one renew_now message rides the ring on
    // top of the `capacity_` reserved submission slots.
    lanes_.push_back(std::make_unique<Lane>(capacity_ + 1));
    const obs::Labels shard_label = {{"shard", std::to_string(i)}};
    obs_backpressure_.push_back(obs::get_counter(
        "sl_lease_backpressure_drops_total",
        "Renewals rejected at the bounded queue (backpressure)", shard_label));
    obs_down_.push_back(
        obs::get_counter("sl_lease_down_rejections_total",
                         "Renewals rejected because the shard was down",
                         shard_label));
  }
  // Workers start only after every lane exists: a worker indexes lanes_.
  for (std::size_t i = 0; i < shards; ++i) {
    lanes_[i]->worker = std::jthread([this, i] { worker_loop(i); });
  }
}

ThreadScheduler::~ThreadScheduler() {
  for (auto& lane : lanes_) {
    {
      std::lock_guard<std::mutex> lk(lane->m);
      lane->stop = true;
    }
    lane->wake.notify_one();
  }
  // Lane::worker is its last member, so each jthread joins before the rest
  // of its lane is destroyed.
  lanes_.clear();
}

void ThreadScheduler::register_client(ShardRouter::CustomerId customer,
                                      ShardRouter::ClientId client,
                                      double health, double network) {
  clients_[{customer, client}] = ClientInfo{health, network};
}

bool ThreadScheduler::submit(ShardRouter::CustomerId customer,
                             ShardRouter::ClientId client,
                             const LicenseFile& license,
                             std::uint64_t consumed, std::uint64_t ticket) {
  const std::size_t shard =
      ShardRouter::shard_of(customer, license.lease_id, lanes_.size());
  Lane& lane = *lanes_[shard];
  if (!router_.shard(shard).accepting()) {
    down_rejections_.fetch_add(1, std::memory_order_relaxed);
    obs::inc(obs_down_[shard]);
    return false;
  }
  const auto info = clients_.find({customer, client});
  require(info != clients_.end(), "ThreadScheduler: client not registered");

  // Exact capacity reservation: the ring's physical size is rounded up, so
  // the atomic occupancy count is what enforces the deterministic backend's
  // backpressure threshold bit-for-bit.
  std::uint64_t occupancy = lane.inflight.load(std::memory_order_relaxed);
  for (;;) {
    if (occupancy >= capacity_) {
      ring_rejections_.fetch_add(1, std::memory_order_relaxed);
      obs::inc(obs_backpressure_[shard]);
      return false;
    }
    if (lane.inflight.compare_exchange_weak(occupancy, occupancy + 1,
                                            std::memory_order_acq_rel)) {
      break;
    }
  }

  Msg msg;
  msg.kind = MsgKind::kRenew;
  msg.ticket = ticket;
  msg.customer = customer;
  msg.client = client;
  msg.license = license;
  msg.health = info->second.health;
  msg.network = info->second.network;
  msg.consumed = consumed;
  const bool pushed = lane.ring.try_push(std::move(msg));
  ensure(pushed, "ThreadScheduler: ring rejected a reserved slot");
  return true;
}

std::vector<ShardRouter::Completion> ThreadScheduler::drain_all() {
  using Clock = std::chrono::steady_clock;  // detlint:allow(wall-clock) wall-clock scaling is the point of this backend
  const Clock::time_point started = Clock::now();
  for (auto& lane : lanes_) open_epoch(*lane);
  for (auto& lane : lanes_) await_epoch(*lane);
  wall_seconds_ += std::chrono::duration<double>(Clock::now() - started).count();

  std::vector<ShardRouter::Completion> completions;
  for (auto& lane : lanes_) {
    for (ShardRouter::Completion& done : lane->completions) {
      completions.push_back(std::move(done));
    }
    lane->completions.clear();
  }
  return completions;
}

SlRemote::RenewResult ThreadScheduler::renew_now(
    std::size_t shard, Slid slid, const LicenseFile& license, double health,
    double network, std::uint64_t consumed, std::uint64_t request_id) {
  require(shard < lanes_.size(), "ThreadScheduler: shard out of range");
  Lane& lane = *lanes_[shard];
  if (!router_.shard(shard).accepting()) return {};  // parity: down shard == denial

  lane.renew_result = SlRemote::RenewResult{};
  Msg msg;
  msg.kind = MsgKind::kRenewNow;
  msg.slid = slid;
  msg.license = license;
  msg.health = health;
  msg.network = network;
  msg.consumed = consumed;
  msg.request_id = request_id;
  const bool pushed = lane.ring.try_push(std::move(msg));
  ensure(pushed, "ThreadScheduler: renew_now headroom slot unavailable");

  using Clock = std::chrono::steady_clock;  // detlint:allow(wall-clock) gateway-path epoch timing
  const Clock::time_point started = Clock::now();
  open_epoch(lane);
  await_epoch(lane);
  wall_seconds_ += std::chrono::duration<double>(Clock::now() - started).count();
  return lane.renew_result;
}

core::SchedulerStats ThreadScheduler::scheduler_stats() const {
  core::SchedulerStats stats;
  stats.ring_rejections = ring_rejections_.load(std::memory_order_relaxed);
  stats.down_rejections = down_rejections_.load(std::memory_order_relaxed);
  return stats;
}

void ThreadScheduler::open_epoch(Lane& lane) {
  {
    std::lock_guard<std::mutex> lk(lane.m);
    ++lane.epoch;
  }
  lane.wake.notify_one();
}

void ThreadScheduler::await_epoch(Lane& lane) {
  std::unique_lock<std::mutex> lk(lane.m);
  lane.done.wait(lk, [&] { return lane.completed == lane.epoch; });
}

void ThreadScheduler::worker_loop(std::size_t shard) {
  Lane& lane = *lanes_[shard];
  for (;;) {
    std::uint64_t target = 0;
    {
      std::unique_lock<std::mutex> lk(lane.m);
      lane.wake.wait(lk,
                     [&] { return lane.stop || lane.epoch > lane.completed; });
      if (lane.epoch == lane.completed) return;  // stop requested while idle
      target = lane.epoch;
    }
    run_epoch(shard, lane);
    {
      std::lock_guard<std::mutex> lk(lane.m);
      lane.completed = target;
    }
    lane.done.notify_all();
  }
}

void ThreadScheduler::run_epoch(std::size_t shard, Lane& lane) {
  RemoteShard& owner = router_.shard(shard);
  Msg msg;
  while (lane.ring.try_pop(msg)) {
    if (msg.kind == MsgKind::kRenew) {
      lane.inflight.fetch_sub(1, std::memory_order_relaxed);
      PendingRenew request;
      request.ticket = msg.ticket;
      const auto key = std::make_pair(msg.customer, msg.client);
      auto minted = lane.slids.find(key);
      if (minted == lane.slids.end()) {
        // First use mints the SLID — ring FIFO makes this the submission
        // order, which is exactly the deterministic router's mint order.
        minted = lane.slids
                     .emplace(key, owner.admit_peer(msg.health, msg.network))
                     .first;
      }
      request.slid = minted->second;
      request.license = std::move(msg.license);
      request.health = msg.health;
      request.network = msg.network;
      request.consumed = msg.consumed;
      const bool accepted = owner.enqueue(std::move(request));
      ensure(accepted, "thread backend: shard queue overflowed its ring bound");
    } else {
      // Gateway batch-of-one, mirroring ShardRouter::renew_now: flush the
      // backlog (its outcomes are discarded there too), then drain exactly
      // this request.
      if (owner.pending() > 0) owner.drain();
      PendingRenew request;
      request.slid = msg.slid;
      request.license = std::move(msg.license);
      request.health = msg.health;
      request.network = msg.network;
      request.consumed = msg.consumed;
      request.request_id = msg.request_id;
      SlRemote::RenewResult result;
      if (owner.enqueue(std::move(request))) {
        const std::vector<RenewOutcome> outcomes = owner.drain();
        if (!outcomes.empty()) {
          result.ok = outcomes.back().status == RenewStatus::kGranted;
          result.granted = outcomes.back().granted;
        }
      }
      lane.renew_result = result;
    }
  }
  if (!owner.accepting()) return;  // a crashed shard drains nothing (router parity)
  for (RenewOutcome& outcome : owner.drain()) {
    lane.completions.push_back(ShardRouter::Completion{shard, outcome});
  }
}

}  // namespace sl::lease
