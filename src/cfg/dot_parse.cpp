#include "cfg/dot_parse.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace sl::cfg {

namespace {

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::string unquote(const std::string& s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

// Extracts the quoted identifier starting at `pos` (which must point at a
// '"'); advances `pos` past the closing quote.
std::string read_quoted(const std::string& line, std::size_t& pos) {
  require(pos < line.size() && line[pos] == '"', "dot: expected quoted name: " + line);
  const std::size_t close = line.find('"', pos + 1);
  require(close != std::string::npos, "dot: unbalanced quote: " + line);
  std::string name = line.substr(pos + 1, close - pos - 1);
  pos = close + 1;
  return name;
}

// Parses `key=value, key=value, ...` from the bracketed attribute list of a
// statement; values may be quoted. Commas inside quoted values are not
// supported (the emitters never produce them).
std::unordered_map<std::string, std::string> parse_attrs(const std::string& line) {
  std::unordered_map<std::string, std::string> attrs;
  const std::size_t open = line.find('[');
  if (open == std::string::npos) return attrs;
  const std::size_t close = line.rfind(']');
  require(close != std::string::npos && close > open,
          "dot: unbalanced attribute list: " + line);
  std::string body = line.substr(open + 1, close - open - 1);
  std::stringstream ss(body);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) continue;
    attrs[trim(item.substr(0, eq))] = unquote(trim(item.substr(eq + 1)));
  }
  return attrs;
}

bool flag_set(const std::unordered_map<std::string, std::string>& attrs,
              const std::string& key) {
  const auto it = attrs.find(key);
  return it != attrs.end() && it->second == "1";
}

std::uint64_t parse_u64(const std::string& s, std::uint64_t fallback) {
  try {
    return std::stoull(s);
  } catch (const std::exception&) {
    return fallback;
  }
}

class Parser {
 public:
  ParsedDot run(const std::string& text) {
    std::stringstream ss(text);
    std::string line;
    while (std::getline(ss, line)) handle(trim(line));
    require(saw_header_, "dot: no digraph header found");
    return std::move(result_);
  }

 private:
  void handle(const std::string& line) {
    if (line.empty() || line.starts_with("//") || line.starts_with("#")) return;
    if (line.starts_with("digraph")) {
      saw_header_ = true;
      std::stringstream ss(line);
      std::string kw;
      ss >> kw >> result_.name;
      if (result_.name == "{") result_.name.clear();
      return;
    }
    if (line.starts_with("subgraph")) {
      const std::size_t at = line.find("cluster_");
      if (at != std::string::npos) {
        in_cluster_ = true;
        cluster_ = static_cast<std::uint32_t>(
            parse_u64(line.substr(at + 8), 0));
      }
      return;
    }
    if (line.starts_with("}")) {
      in_cluster_ = false;
      return;
    }
    // Default-attribute statements and labels: `node [...]`, `label="..."`.
    if (!line.starts_with("\"")) return;

    std::size_t pos = 0;
    const std::string from = read_quoted(line, pos);
    const std::size_t arrow = line.find("->", pos);
    if (arrow != std::string::npos) {
      std::size_t to_pos = line.find('"', arrow);
      require(to_pos != std::string::npos, "dot: edge without target: " + line);
      const std::string to = read_quoted(line, to_pos);
      const auto attrs = parse_attrs(line);
      const auto label = attrs.find("label");
      const std::uint64_t count =
          label == attrs.end() ? 1 : parse_u64(label->second, 1);
      result_.graph.add_call(ensure_node(from), ensure_node(to), count);
      return;
    }
    declare_node(from, parse_attrs(line));
  }

  NodeId ensure_node(const std::string& name) {
    if (const auto id = result_.graph.find(name)) return *id;
    FunctionInfo info;
    info.name = name;
    return result_.graph.add_function(std::move(info));
  }

  void declare_node(const std::string& name,
                    const std::unordered_map<std::string, std::string>& attrs) {
    const NodeId id = ensure_node(name);
    FunctionInfo& info = result_.graph.node(id);
    info.in_authentication_module |= flag_set(attrs, "sl_am");
    info.is_key_function |= flag_set(attrs, "sl_key");
    info.touches_sensitive_data |= flag_set(attrs, "sl_sensitive");
    info.does_io |= flag_set(attrs, "sl_io");
    if (const auto it = attrs.find("sl_work"); it != attrs.end()) {
      info.work_cycles = parse_u64(it->second, info.work_cycles);
    }
    if (const auto it = attrs.find("sl_inv"); it != attrs.end()) {
      info.invocations = parse_u64(it->second, info.invocations);
    }

    const auto penwidth = attrs.find("penwidth");
    const auto color = attrs.find("color");
    const bool hot = flag_set(attrs, "sl_migrated") ||
                     (penwidth != attrs.end() && penwidth->second == "3") ||
                     (color != attrs.end() && color->second == "red");
    if (hot) result_.highlighted.insert(id);
    if (in_cluster_) result_.cluster_of[id] = cluster_;
  }

  ParsedDot result_;
  bool saw_header_ = false;
  bool in_cluster_ = false;
  std::uint32_t cluster_ = 0;
};

}  // namespace

ParsedDot parse_dot(const std::string& text) { return Parser{}.run(text); }

ParsedDot parse_dot_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot read dot file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return parse_dot(os.str());
}

std::size_t copy_annotations_by_name(CallGraph& dst, const CallGraph& src) {
  std::size_t annotated = 0;
  for (NodeId s = 0; s < src.node_count(); ++s) {
    const FunctionInfo& from = src.node(s);
    const auto d = dst.find(from.name);
    if (!d.has_value()) continue;
    FunctionInfo& to = dst.node(*d);
    to.in_authentication_module = from.in_authentication_module;
    to.is_key_function = from.is_key_function;
    to.touches_sensitive_data = from.touches_sensitive_data;
    to.does_io = from.does_io;
    to.work_cycles = from.work_cycles;
    to.invocations = from.invocations;
    ++annotated;
  }
  return annotated;
}

}  // namespace sl::cfg
