#include "cfg/annotate.hpp"

#include <algorithm>

namespace sl::cfg {

RegionAnnotator::RegionAnnotator(CallGraph& graph) : graph_(graph) {}

void RegionAnnotator::declare_region(const std::string& region, std::uint64_t bytes,
                                     bool sensitive) {
  require(!regions_.contains(region), "declare_region: duplicate " + region);
  Region r;
  r.bytes = bytes;
  r.sensitive = sensitive;
  regions_.emplace(region, std::move(r));
}

void RegionAnnotator::accesses(const std::string& function, const std::string& region,
                               bool owns) {
  auto it = regions_.find(region);
  require(it != regions_.end(), "accesses: unknown region " + region);
  const NodeId node = graph_.id_of(function);
  it->second.touchers.insert(node);
  if (owns) {
    require(!it->second.owner.has_value() || *it->second.owner == node,
            "accesses: region " + region + " already owned");
    it->second.owner = node;
  }
}

std::size_t RegionAnnotator::apply() {
  std::unordered_set<NodeId> marked;
  for (auto& [name, region] : regions_) {
    for (NodeId node : region.touchers) {
      if (region.sensitive) {
        graph_.node(node).touches_sensitive_data = true;
        marked.insert(node);
      }
    }
    if (region.owner.has_value()) {
      graph_.node(*region.owner).mem_bytes += region.bytes;
    }
  }
  return marked.size();
}

std::vector<std::string> RegionAnnotator::functions_touching(
    const std::string& region) const {
  auto it = regions_.find(region);
  require(it != regions_.end(), "functions_touching: unknown region " + region);
  std::vector<std::string> names;
  names.reserve(it->second.touchers.size());
  for (NodeId node : it->second.touchers) names.push_back(graph_.node(node).name);
  std::sort(names.begin(), names.end());
  return names;
}

std::uint64_t RegionAnnotator::region_bytes(const std::string& region) const {
  auto it = regions_.find(region);
  require(it != regions_.end(), "region_bytes: unknown region " + region);
  return it->second.bytes;
}

}  // namespace sl::cfg
