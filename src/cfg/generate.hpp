// Synthetic modular call-graph generator.
//
// Produces graphs with planted module structure (dense intra-module call
// edges, sparse inter-module edges), mirroring the modularity observation of
// paper Section 4.2. Used by clustering tests and partitioner benches.
#pragma once

#include <cstdint>

#include "cfg/graph.hpp"

namespace sl::cfg {

struct ModularGraphSpec {
  std::uint32_t modules = 6;
  std::uint32_t functions_per_module = 12;
  // Expected number of intra-module callees per function.
  double intra_degree = 4.0;
  // Expected number of inter-module callees per function.
  double inter_degree = 0.5;
  std::uint64_t intra_call_count = 1000;  // calls per intra edge
  std::uint64_t inter_call_count = 10;    // calls per inter edge
  std::uint64_t seed = 42;
};

// Generates the graph; function `m<i>_f<j>` belongs to planted module i.
CallGraph generate_modular_graph(const ModularGraphSpec& spec);

// Ground-truth module of a generated node (derived from its name).
std::uint32_t planted_module(const CallGraph& graph, NodeId node);

}  // namespace sl::cfg
