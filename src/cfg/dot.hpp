// Graphviz DOT export for call graphs (used to regenerate Figure 7).
#pragma once

#include <string>
#include <unordered_set>

#include "cfg/cluster.hpp"
#include "cfg/graph.hpp"

namespace sl::cfg {

struct DotOptions {
  // Optional clustering: nodes of the same cluster share a color and a
  // Graphviz subgraph.
  const Clustering* clustering = nullptr;
  // Nodes to highlight (e.g. the functions a partitioner migrated).
  std::unordered_set<NodeId> highlighted;
  std::string graph_name = "callgraph";
  // Also emit the sl_* annotation attributes (AM/key/sensitive/io flags,
  // work and invocation counts) so cfg::parse_dot round-trips the graph
  // without needing copy_annotations_by_name.
  bool emit_annotations = false;
};

std::string to_dot(const CallGraph& graph, const DotOptions& options = {});

}  // namespace sl::cfg
