// Data-region annotation workflow (the Glamdring developer experience).
//
// Glamdring's developers annotate DATA STRUCTURES as sensitive, not
// functions; an information-flow analysis then derives the function set.
// This helper models that workflow over our call graphs: declare named data
// regions with sizes, record which functions read/write each region, and
// derive per-function sensitivity + memory footprints from the declarations.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cfg/graph.hpp"

namespace sl::cfg {

class RegionAnnotator {
 public:
  explicit RegionAnnotator(CallGraph& graph);

  // Declares a data region; `sensitive` marks it as IP the vendor protects.
  void declare_region(const std::string& region, std::uint64_t bytes,
                      bool sensitive);

  // Records that `function` accesses `region`. `owns` attributes the
  // region's bytes to this function's footprint (one owner per region —
  // typically its hottest toucher).
  void accesses(const std::string& function, const std::string& region,
                bool owns = false);

  // Applies the declarations: every function touching a sensitive region
  // gets touches_sensitive_data = true, owners get the region bytes added
  // to mem_bytes. Returns the number of functions marked sensitive.
  std::size_t apply();

  // Query helpers (valid after apply()).
  std::vector<std::string> functions_touching(const std::string& region) const;
  std::uint64_t region_bytes(const std::string& region) const;

 private:
  struct Region {
    std::uint64_t bytes = 0;
    bool sensitive = false;
    std::unordered_set<NodeId> touchers;
    std::optional<NodeId> owner;
  };

  CallGraph& graph_;
  std::unordered_map<std::string, Region> regions_;
};

}  // namespace sl::cfg
