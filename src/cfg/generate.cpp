#include "cfg/generate.hpp"

#include <string>

#include "common/rng.hpp"

namespace sl::cfg {

CallGraph generate_modular_graph(const ModularGraphSpec& spec) {
  require(spec.modules > 0 && spec.functions_per_module > 0,
          "generate_modular_graph: empty spec");
  Rng rng(spec.seed);
  CallGraph graph;

  for (std::uint32_t m = 0; m < spec.modules; ++m) {
    for (std::uint32_t f = 0; f < spec.functions_per_module; ++f) {
      FunctionInfo info;
      info.name = "m" + std::to_string(m) + "_f" + std::to_string(f);
      info.code_instructions = 200 + rng.next_below(2000);
      info.mem_bytes = 4096 * (1 + rng.next_below(64));
      info.work_cycles = 100 + rng.next_below(1000);
      info.invocations = 1 + rng.next_below(10000);
      graph.add_function(std::move(info));
    }
  }

  const auto node_id = [&](std::uint32_t m, std::uint32_t f) {
    return static_cast<NodeId>(m * spec.functions_per_module + f);
  };

  for (std::uint32_t m = 0; m < spec.modules; ++m) {
    for (std::uint32_t f = 0; f < spec.functions_per_module; ++f) {
      const NodeId from = node_id(m, f);
      // Intra-module edges.
      const double p_intra = spec.intra_degree / spec.functions_per_module;
      for (std::uint32_t g = 0; g < spec.functions_per_module; ++g) {
        if (g == f) continue;
        if (rng.next_bool(p_intra)) {
          graph.add_call(from, node_id(m, g), spec.intra_call_count / 2 +
                                                  rng.next_below(spec.intra_call_count));
        }
      }
      // Inter-module edges.
      const double p_inter =
          spec.modules > 1
              ? spec.inter_degree / (spec.functions_per_module * (spec.modules - 1))
              : 0.0;
      for (std::uint32_t m2 = 0; m2 < spec.modules; ++m2) {
        if (m2 == m) continue;
        for (std::uint32_t g = 0; g < spec.functions_per_module; ++g) {
          if (rng.next_bool(p_inter)) {
            graph.add_call(from, node_id(m2, g),
                           1 + rng.next_below(spec.inter_call_count));
          }
        }
      }
    }
  }

  // Guarantee weak connectivity: chain one function of each module.
  for (std::uint32_t m = 1; m < spec.modules; ++m) {
    graph.add_call(node_id(m - 1, 0), node_id(m, 0), 1);
  }
  return graph;
}

std::uint32_t planted_module(const CallGraph& graph, NodeId node) {
  const std::string& name = graph.node(node).name;
  require(!name.empty() && name[0] == 'm', "planted_module: not a generated node");
  const std::size_t underscore = name.find('_');
  require(underscore != std::string::npos, "planted_module: malformed name");
  return static_cast<std::uint32_t>(std::stoul(name.substr(1, underscore - 1)));
}

}  // namespace sl::cfg
