// Application call graph (the "CFG" of paper Section 4.2).
//
// Nodes are functions annotated with the attributes the partitioners need:
// static code size, data footprint, per-invocation work, and the developer
// annotations the paper assumes (authentication-module membership, key
// functions, sensitive-data access for the Glamdring baseline). Directed
// edges carry dynamic call counts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"

namespace sl::cfg {

using NodeId = std::uint32_t;

struct FunctionInfo {
  std::string name;
  std::uint64_t code_instructions = 0;  // static size (instruction count)
  std::uint64_t mem_bytes = 0;          // data footprint when resident
  std::uint64_t work_cycles = 100;      // compute per invocation
  std::uint64_t invocations = 1;        // dynamic call count over a full run

  // Enclave-resident footprint when the function is migrated but its shared
  // data structures stay in untrusted memory (SecureLease's policy,
  // Section 4.2.1): code + stack + private buffers. Schemes that move the
  // data inside (Glamdring, full-SGX) use mem_bytes instead.
  std::uint64_t enclave_state_bytes = 64 * 1024;

  bool in_authentication_module = false;
  bool is_key_function = false;        // developer annotation (Section 4.2.1)
  bool touches_sensitive_data = false; // Glamdring taint source/sink
  // Performs system calls (file/socket/argv access). SGX forbids syscalls
  // inside an enclave, so SecureLease's packer refuses to migrate clusters
  // containing such functions; the baselines migrate them anyway and pay
  // the resulting OCALL traffic.
  bool does_io = false;

  // Memory-access profile consumed by the execution simulator: how many
  // page touches the function performs over a full run, and whether those
  // touches stream through its region or hit it at random.
  std::uint64_t page_touches = 0;
  bool random_access = false;

  // Total dynamic instructions attributed to this function over a run.
  std::uint64_t dynamic_instructions() const {
    // work_cycles approximates instructions at IPC ~ 1 for our models.
    return invocations * work_cycles;
  }
};

struct Edge {
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t call_count = 0;
};

class CallGraph {
 public:
  // Adds a function; names must be unique. Returns its node id.
  NodeId add_function(FunctionInfo info);

  // Adds (or accumulates onto) a directed call edge.
  void add_call(NodeId from, NodeId to, std::uint64_t count);
  void add_call(const std::string& from, const std::string& to, std::uint64_t count);

  std::size_t node_count() const { return nodes_.size(); }
  const FunctionInfo& node(NodeId id) const;
  FunctionInfo& node(NodeId id);
  NodeId id_of(const std::string& name) const;
  std::optional<NodeId> find(const std::string& name) const;

  const std::vector<Edge>& edges() const { return edges_; }
  // Outgoing edges of `id`.
  std::vector<Edge> out_edges(NodeId id) const;
  std::vector<Edge> in_edges(NodeId id) const;
  std::uint64_t out_degree(NodeId id) const;  // number of distinct callees

  // Sum over all functions of dynamic instructions (denominator for
  // dynamic coverage).
  std::uint64_t total_dynamic_instructions() const;
  // Sum of static instruction counts (denominator for static coverage).
  std::uint64_t total_static_instructions() const;

  std::vector<NodeId> all_nodes() const;

  // Induced subgraph over `nodes`; edges between kept nodes survive with
  // their counts. `to_parent[i]` maps subgraph node i back to this graph.
  CallGraph induced_subgraph(const std::vector<NodeId>& nodes,
                             std::vector<NodeId>& to_parent) const;

 private:
  std::vector<FunctionInfo> nodes_;
  std::vector<Edge> edges_;
  std::unordered_map<std::string, NodeId> by_name_;
  // Adjacency index into edges_.
  std::vector<std::vector<std::size_t>> out_adj_;
  std::vector<std::vector<std::size_t>> in_adj_;
};

}  // namespace sl::cfg
