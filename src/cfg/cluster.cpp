#include "cfg/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace sl::cfg {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Undirected weighted adjacency with distance = 1/(1+log2(1+calls)).
struct Adjacency {
  std::vector<std::vector<std::pair<NodeId, double>>> neighbors;
};

Adjacency build_adjacency(const CallGraph& graph) {
  Adjacency adj;
  adj.neighbors.resize(graph.node_count());
  for (const Edge& e : graph.edges()) {
    // sqrt keeps hot edges strongly ordered (log saturates too fast to
    // separate a 10 K-call boundary edge from a 1 M-call intra-module edge).
    const double distance = 1.0 / (1.0 + std::sqrt(static_cast<double>(e.call_count)));
    adj.neighbors[e.from].emplace_back(e.to, distance);
    adj.neighbors[e.to].emplace_back(e.from, distance);
  }
  return adj;
}

// Single-source shortest path (Dijkstra) over the similarity graph.
std::vector<double> shortest_paths(const Adjacency& adj, NodeId source) {
  std::vector<double> dist(adj.neighbors.size(), kInf);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  dist[source] = 0.0;
  queue.emplace(0.0, source);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    for (const auto& [v, w] : adj.neighbors[u]) {
      if (dist[u] + w < dist[v]) {
        dist[v] = dist[u] + w;
        queue.emplace(dist[v], v);
      }
    }
  }
  return dist;
}

// Farthest-point seeding: start from the heaviest node, then repeatedly take
// the node farthest from all chosen seeds. Deterministic.
std::vector<NodeId> choose_seeds(const CallGraph& graph, const Adjacency& adj,
                                 std::uint32_t k) {
  std::vector<NodeId> seeds;
  NodeId first = 0;
  std::uint64_t best_weight = 0;
  for (NodeId n = 0; n < graph.node_count(); ++n) {
    const std::uint64_t w = graph.node(n).dynamic_instructions();
    if (w >= best_weight) {
      best_weight = w;
      first = n;
    }
  }
  seeds.push_back(first);

  std::vector<double> min_dist = shortest_paths(adj, first);
  while (seeds.size() < k) {
    NodeId farthest = 0;
    double best = -1.0;
    for (NodeId n = 0; n < graph.node_count(); ++n) {
      double d = min_dist[n];
      if (d == kInf) d = 1e9;  // disconnected nodes become their own seeds
      if (d > best) {
        best = d;
        farthest = n;
      }
    }
    if (best <= 0.0) break;  // all nodes coincide with seeds
    seeds.push_back(farthest);
    const std::vector<double> d = shortest_paths(adj, farthest);
    for (NodeId n = 0; n < graph.node_count(); ++n) {
      min_dist[n] = std::min(min_dist[n], d[n]);
    }
  }
  return seeds;
}

}  // namespace

std::vector<std::vector<NodeId>> Clustering::members() const {
  std::vector<std::vector<NodeId>> result(k);
  for (NodeId n = 0; n < assignment.size(); ++n) {
    result[assignment[n]].push_back(n);
  }
  return result;
}

Clustering cluster_call_graph(const CallGraph& graph, ClusterOptions options) {
  Clustering result;
  const std::size_t n = graph.node_count();
  if (n == 0) return result;
  const std::uint32_t k =
      std::max<std::uint32_t>(1, std::min<std::uint32_t>(options.k, static_cast<std::uint32_t>(n)));

  const Adjacency adj = build_adjacency(graph);
  std::vector<NodeId> medoids = choose_seeds(graph, adj, k);

  std::vector<std::uint32_t> assignment(n, 0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Assignment step: nearest medoid by graph distance.
    std::vector<std::vector<double>> dist_from_medoid;
    dist_from_medoid.reserve(medoids.size());
    for (NodeId m : medoids) dist_from_medoid.push_back(shortest_paths(adj, m));

    bool changed = false;
    for (NodeId node = 0; node < n; ++node) {
      std::uint32_t best_cluster = assignment[node];
      double best = kInf;
      for (std::uint32_t c = 0; c < medoids.size(); ++c) {
        if (dist_from_medoid[c][node] < best) {
          best = dist_from_medoid[c][node];
          best_cluster = c;
        }
      }
      if (best == kInf) best_cluster = assignment[node];  // unreachable: keep
      if (assignment[node] != best_cluster) {
        assignment[node] = best_cluster;
        changed = true;
      }
    }

    // Update step: medoid = member minimizing summed distance to members.
    std::vector<std::vector<NodeId>> members(medoids.size());
    for (NodeId node = 0; node < n; ++node) members[assignment[node]].push_back(node);
    bool medoid_moved = false;
    for (std::uint32_t c = 0; c < medoids.size(); ++c) {
      if (members[c].empty()) continue;
      NodeId best_medoid = medoids[c];
      double best_cost = kInf;
      for (NodeId candidate : members[c]) {
        const std::vector<double> d = shortest_paths(adj, candidate);
        double cost = 0.0;
        for (NodeId m : members[c]) {
          cost += (d[m] == kInf) ? 1e9 : d[m];
        }
        if (cost < best_cost) {
          best_cost = cost;
          best_medoid = candidate;
        }
      }
      if (best_medoid != medoids[c]) {
        medoids[c] = best_medoid;
        medoid_moved = true;
      }
    }

    if (!changed && !medoid_moved) break;
  }

  result.assignment = std::move(assignment);
  result.k = static_cast<std::uint32_t>(medoids.size());
  return result;
}

std::uint32_t weak_component_count(const CallGraph& graph) {
  const std::size_t n = graph.node_count();
  std::vector<std::vector<NodeId>> adj(n);
  for (const Edge& e : graph.edges()) {
    adj[e.from].push_back(e.to);
    adj[e.to].push_back(e.from);
  }
  std::vector<bool> seen(n, false);
  std::uint32_t components = 0;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (seen[start]) continue;
    components++;
    stack.push_back(start);
    seen[start] = true;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : adj[u]) {
        if (!seen[v]) {
          seen[v] = true;
          stack.push_back(v);
        }
      }
    }
  }
  return components;
}

ClusterMetrics evaluate_clustering(const CallGraph& graph, const Clustering& clustering) {
  ClusterMetrics metrics;
  std::uint64_t total_weight = 0;
  for (const Edge& e : graph.edges()) {
    total_weight += e.call_count;
    if (clustering.assignment[e.from] == clustering.assignment[e.to]) {
      metrics.intra_cluster_calls += e.call_count;
    } else {
      metrics.inter_cluster_calls += e.call_count;
    }
  }

  // Newman modularity Q = sum_c (e_c/m - (a_c/2m)^2) on the undirected view.
  if (total_weight > 0) {
    const double m2 = 2.0 * static_cast<double>(total_weight);
    std::vector<double> internal(clustering.k, 0.0);
    std::vector<double> degree(clustering.k, 0.0);
    for (const Edge& e : graph.edges()) {
      const double w = static_cast<double>(e.call_count);
      degree[clustering.assignment[e.from]] += w;
      degree[clustering.assignment[e.to]] += w;
      if (clustering.assignment[e.from] == clustering.assignment[e.to]) internal[clustering.assignment[e.from]] += w;
    }
    double q = 0.0;
    for (std::uint32_t c = 0; c < clustering.k; ++c) {
      q += 2.0 * internal[c] / m2 - (degree[c] / m2) * (degree[c] / m2);
    }
    metrics.modularity = q;
  }
  return metrics;
}

std::vector<ClusterSummary> summarize_clusters(const CallGraph& graph,
                                               const Clustering& clustering) {
  std::vector<ClusterSummary> summaries(clustering.k);
  for (std::uint32_t c = 0; c < clustering.k; ++c) summaries[c].cluster = c;

  for (NodeId node = 0; node < clustering.assignment.size(); ++node) {
    ClusterSummary& s = summaries[clustering.assignment[node]];
    const FunctionInfo& info = graph.node(node);
    s.mem_bytes += info.mem_bytes;
    s.code_instructions += info.code_instructions;
    s.dynamic_instructions += info.dynamic_instructions();
    s.contains_authentication |= info.in_authentication_module;
    s.contains_key_function |= info.is_key_function;
    s.members.push_back(node);
  }
  for (const Edge& e : graph.edges()) {
    if (clustering.assignment[e.from] != clustering.assignment[e.to]) {
      summaries[clustering.assignment[e.from]].boundary_calls += e.call_count;
      summaries[clustering.assignment[e.to]].boundary_calls += e.call_count;
    }
  }
  return summaries;
}

}  // namespace sl::cfg
