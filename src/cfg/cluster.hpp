// Call-graph clustering (paper Section 4.2.1).
//
// The paper runs a K-means-style clustering over the CFG, using the directed
// call edges to define proximity. We implement that as k-medoids on graph
// distance: edge weight w (call count) maps to distance 1/(1+sqrt(w)), so
// hot call paths pull functions together. Seeds are chosen by a farthest-
// point heuristic; assignment and medoid-update steps iterate to a fixed
// point. The module also exposes the intra/inter-cluster call metrics behind
// the paper's key observation (intra-cluster calls >> inter-cluster calls).
#pragma once

#include <vector>

#include "cfg/graph.hpp"

namespace sl::cfg {

struct Clustering {
  // cluster id per node, in [0, k).
  std::vector<std::uint32_t> assignment;
  std::uint32_t k = 0;

  std::vector<std::vector<NodeId>> members() const;
};

struct ClusterOptions {
  std::uint32_t k = 8;
  int max_iterations = 32;
};

// Clusters `graph`; k is clamped to the node count.
Clustering cluster_call_graph(const CallGraph& graph, ClusterOptions options);

// Number of weakly-connected components (edges taken as undirected).
std::uint32_t weak_component_count(const CallGraph& graph);

// Cluster-quality metrics.
struct ClusterMetrics {
  std::uint64_t intra_cluster_calls = 0;
  std::uint64_t inter_cluster_calls = 0;
  double modularity = 0.0;  // Newman modularity on the weighted graph

  double intra_fraction() const {
    const std::uint64_t total = intra_cluster_calls + inter_cluster_calls;
    return total == 0 ? 0.0 : static_cast<double>(intra_cluster_calls) / total;
  }
};

ClusterMetrics evaluate_clustering(const CallGraph& graph, const Clustering& clustering);

// Aggregates per cluster used by the partitioner's greedy packing.
struct ClusterSummary {
  std::uint32_t cluster = 0;
  std::uint64_t mem_bytes = 0;            // sum of member footprints
  std::uint64_t code_instructions = 0;    // static size
  std::uint64_t dynamic_instructions = 0; // executed instructions
  std::uint64_t boundary_calls = 0;       // calls crossing the cluster edge
  bool contains_authentication = false;
  bool contains_key_function = false;
  std::vector<NodeId> members;
};

std::vector<ClusterSummary> summarize_clusters(const CallGraph& graph,
                                               const Clustering& clustering);

}  // namespace sl::cfg
