#include "cfg/dot.hpp"

#include <sstream>

namespace sl::cfg {

namespace {
const char* kPalette[] = {"#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f",
                          "#cab2d6", "#ffff99", "#1f78b4", "#33a02c"};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

void emit_annotations(std::ostream& os, const FunctionInfo& info, bool migrated) {
  os << ", sl_migrated=\"" << (migrated ? 1 : 0) << "\""
     << ", sl_am=\"" << (info.in_authentication_module ? 1 : 0) << "\""
     << ", sl_key=\"" << (info.is_key_function ? 1 : 0) << "\""
     << ", sl_sensitive=\"" << (info.touches_sensitive_data ? 1 : 0) << "\""
     << ", sl_io=\"" << (info.does_io ? 1 : 0) << "\""
     << ", sl_work=\"" << info.work_cycles << "\""
     << ", sl_inv=\"" << info.invocations << "\"";
}
}  // namespace

std::string to_dot(const CallGraph& graph, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph " << options.graph_name << " {\n";
  os << "  node [shape=ellipse, style=filled];\n";

  if (options.clustering != nullptr) {
    const auto members = options.clustering->members();
    for (std::uint32_t c = 0; c < members.size(); ++c) {
      os << "  subgraph cluster_" << c << " {\n";
      os << "    label=\"cluster " << c << "\";\n";
      for (NodeId n : members[c]) {
        const bool hot = options.highlighted.contains(n);
        os << "    \"" << graph.node(n).name << "\" [fillcolor=\""
           << kPalette[c % kPaletteSize] << "\""
           << (hot ? ", penwidth=3, color=red" : "");
        if (options.emit_annotations) emit_annotations(os, graph.node(n), hot);
        os << "];\n";
      }
      os << "  }\n";
    }
  } else {
    for (NodeId n = 0; n < graph.node_count(); ++n) {
      const bool hot = options.highlighted.contains(n);
      os << "  \"" << graph.node(n).name << "\" [fillcolor=\""
         << (hot ? "#fb9a99" : "#ffffff") << "\"";
      if (options.emit_annotations) emit_annotations(os, graph.node(n), hot);
      os << "];\n";
    }
  }

  for (const Edge& e : graph.edges()) {
    os << "  \"" << graph.node(e.from).name << "\" -> \"" << graph.node(e.to).name
       << "\" [label=\"" << e.call_count << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace sl::cfg
