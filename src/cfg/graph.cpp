#include "cfg/graph.hpp"

namespace sl::cfg {

NodeId CallGraph::add_function(FunctionInfo info) {
  require(!by_name_.contains(info.name), "add_function: duplicate name " + info.name);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  by_name_.emplace(info.name, id);
  nodes_.push_back(std::move(info));
  out_adj_.emplace_back();
  in_adj_.emplace_back();
  return id;
}

void CallGraph::add_call(NodeId from, NodeId to, std::uint64_t count) {
  require(from < nodes_.size() && to < nodes_.size(), "add_call: bad node id");
  // Accumulate onto an existing edge if present.
  for (std::size_t idx : out_adj_[from]) {
    if (edges_[idx].to == to) {
      edges_[idx].call_count += count;
      return;
    }
  }
  const std::size_t idx = edges_.size();
  edges_.push_back(Edge{from, to, count});
  out_adj_[from].push_back(idx);
  in_adj_[to].push_back(idx);
}

void CallGraph::add_call(const std::string& from, const std::string& to,
                         std::uint64_t count) {
  add_call(id_of(from), id_of(to), count);
}

const FunctionInfo& CallGraph::node(NodeId id) const {
  require(id < nodes_.size(), "node: bad id");
  return nodes_[id];
}

FunctionInfo& CallGraph::node(NodeId id) {
  require(id < nodes_.size(), "node: bad id");
  return nodes_[id];
}

NodeId CallGraph::id_of(const std::string& name) const {
  auto it = by_name_.find(name);
  require(it != by_name_.end(), "id_of: unknown function " + name);
  return it->second;
}

std::optional<NodeId> CallGraph::find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<Edge> CallGraph::out_edges(NodeId id) const {
  require(id < nodes_.size(), "out_edges: bad id");
  std::vector<Edge> result;
  result.reserve(out_adj_[id].size());
  for (std::size_t idx : out_adj_[id]) result.push_back(edges_[idx]);
  return result;
}

std::vector<Edge> CallGraph::in_edges(NodeId id) const {
  require(id < nodes_.size(), "in_edges: bad id");
  std::vector<Edge> result;
  result.reserve(in_adj_[id].size());
  for (std::size_t idx : in_adj_[id]) result.push_back(edges_[idx]);
  return result;
}

std::uint64_t CallGraph::out_degree(NodeId id) const {
  require(id < nodes_.size(), "out_degree: bad id");
  return out_adj_[id].size();
}

std::uint64_t CallGraph::total_dynamic_instructions() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n.dynamic_instructions();
  return total;
}

std::uint64_t CallGraph::total_static_instructions() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n.code_instructions;
  return total;
}

std::vector<NodeId> CallGraph::all_nodes() const {
  std::vector<NodeId> ids(nodes_.size());
  for (NodeId i = 0; i < nodes_.size(); ++i) ids[i] = i;
  return ids;
}

CallGraph CallGraph::induced_subgraph(const std::vector<NodeId>& nodes,
                                      std::vector<NodeId>& to_parent) const {
  CallGraph sub;
  to_parent.clear();
  std::unordered_map<NodeId, NodeId> to_sub;
  for (NodeId n : nodes) {
    require(n < nodes_.size(), "induced_subgraph: bad node id");
    if (to_sub.contains(n)) continue;
    to_sub.emplace(n, sub.add_function(nodes_[n]));
    to_parent.push_back(n);
  }
  for (const Edge& e : edges_) {
    auto from = to_sub.find(e.from);
    auto to = to_sub.find(e.to);
    if (from != to_sub.end() && to != to_sub.end()) {
      sub.add_call(from->second, to->second, e.call_count);
    }
  }
  return sub;
}

}  // namespace sl::cfg
