// Graphviz DOT import for call graphs.
//
// Parses the DOT dialect this repo emits (cfg::to_dot and the auditor's
// overlay writer): node declarations with attribute lists, optional
// `subgraph cluster_N` grouping, and `"a" -> "b" [label="N"]` edges whose
// label is the dynamic call count. This is what lets the `audit` CLI
// subcommand consume the checked-in Figure 7 graphs (fig7_glamdring.dot,
// fig7_securelease.dot) and re-audit any exported overlay.
//
// Recognized node attributes:
//   * `penwidth=3` / `color=red`    — the to_dot highlight convention; the
//                                     node joins `highlighted` (= migrated).
//   * `sl_migrated="1"`             — explicit migrated flag (overlay files).
//   * `sl_am`, `sl_key`, `sl_sensitive`, `sl_io` — the developer annotations
//     of FunctionInfo, as "0"/"1".
//   * `sl_work`, `sl_inv`           — work_cycles / invocations.
// Unknown attributes (fillcolor, label, ...) are ignored.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "cfg/graph.hpp"

namespace sl::cfg {

struct ParsedDot {
  CallGraph graph;
  std::string name;  // digraph name
  // Nodes marked migrated (highlight convention or sl_migrated="1").
  std::unordered_set<NodeId> highlighted;
  // Cluster membership for nodes declared inside `subgraph cluster_N`.
  std::unordered_map<NodeId, std::uint32_t> cluster_of;
};

// Parses DOT text. Throws sl::Error on malformed input (unbalanced quotes,
// missing edge endpoints, no digraph header).
ParsedDot parse_dot(const std::string& text);

// Reads and parses a .dot file. Throws sl::Error if unreadable.
ParsedDot parse_dot_file(const std::string& path);

// Copies the annotation fields (in_authentication_module, is_key_function,
// touches_sensitive_data, does_io, work_cycles, invocations) from `src` onto
// same-named nodes of `dst`. Plain DOT exports carry no annotations, so a
// parsed figure graph can borrow them from the workload model it was
// rendered from. Returns the number of nodes annotated.
std::size_t copy_annotations_by_name(CallGraph& dst, const CallGraph& src);

}  // namespace sl::cfg
