// Randomized victim-program generator for generative security testing.
//
// Produces virtual-CPU applications with a configurable shape — an init
// phase, an authentication module guarding the protected region, and a
// protected region of several "stages" whose results feed the output —
// under any of the three protection schemes. The security properties of
// the paper must hold for EVERY generated program:
//   * a CFB attack fully cracks kSoftwareOnly and kAmInEnclave builds,
//   * under kSecureLease the attack never reproduces the protected output.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/victim.hpp"

namespace sl::attack {

struct VictimSpec {
  std::uint64_t seed = 1;
  int init_ops = 4;         // arithmetic noise before the AM
  int stages = 3;           // protected-region pipeline stages
  int outputs_per_stage = 2;
  Protection protection = Protection::kSoftwareOnly;
  // Fraction of stages that are key functions (enclave-gated under
  // kSecureLease). At least one stage is always gated.
  double key_stage_fraction = 0.5;
};

struct GeneratedVictim {
  VictimApp app;
  VictimSpec spec;                 // the spec this victim was generated from
  std::int64_t license_value = 0;  // the valid license for this build
  int gated_stages = 0;            // stages behind the enclave gate
  std::vector<bool> stage_gated;   // per-stage: behind the enclave gate?
                                   // (all false outside kSecureLease)
  std::uint64_t seed = 0;          // generation seed (the gate derives the
                                   // stage transforms from it)
};

GeneratedVictim generate_victim(const VictimSpec& spec);

// Gate for a generated victim (knows the per-seed stage functions).
EnclaveGate make_generated_gate(const GeneratedVictim& victim, bool licensed);

// Convenience runners mirroring victim.hpp's helpers.
ExecutionResult run_generated(const GeneratedVictim& victim,
                              std::int64_t license_value, bool gate_licensed);
ExecutionResult attack_generated(const GeneratedVictim& victim, bool gate_licensed);

}  // namespace sl::attack
