#include "attack/vcpu.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace sl::attack {

Program& Program::label(const std::string& name) {
  require(!labels_.contains(name), "Program: duplicate label " + name);
  labels_[name] = code_.size();
  return *this;
}

Program& Program::instr(Instr instruction) {
  const bool needs_target = instruction.op == Op::kJmp || instruction.op == Op::kJeq ||
                            instruction.op == Op::kJne || instruction.op == Op::kCall;
  if (needs_target) unresolved_.push_back(code_.size());
  code_.push_back(std::move(instruction));
  finalized_ = false;
  return *this;
}

Program& Program::load(int reg, std::int64_t imm) {
  return instr({.op = Op::kLoadImm, .a = reg, .imm = imm});
}
Program& Program::mov(int dst, int src) { return instr({.op = Op::kMov, .a = dst, .b = src}); }
Program& Program::add(int dst, int src) { return instr({.op = Op::kAdd, .a = dst, .b = src}); }
Program& Program::sub(int dst, int src) { return instr({.op = Op::kSub, .a = dst, .b = src}); }
Program& Program::mul(int dst, int src) { return instr({.op = Op::kMul, .a = dst, .b = src}); }
Program& Program::xor_(int dst, int src) { return instr({.op = Op::kXor, .a = dst, .b = src}); }
Program& Program::cmp_eq(int a, int b) { return instr({.op = Op::kCmpEq, .a = a, .b = b}); }
Program& Program::jmp(const std::string& target) { return instr({.op = Op::kJmp, .target = target}); }
Program& Program::jeq(const std::string& target) { return instr({.op = Op::kJeq, .target = target}); }
Program& Program::jne(const std::string& target) { return instr({.op = Op::kJne, .target = target}); }
Program& Program::call(const std::string& target) { return instr({.op = Op::kCall, .target = target}); }
Program& Program::ret() { return instr({.op = Op::kRet}); }
Program& Program::halt(int code_reg) { return instr({.op = Op::kHalt, .a = code_reg}); }
Program& Program::out(int reg) { return instr({.op = Op::kOut, .a = reg}); }
Program& Program::enclave_call(int dst, int arg, const std::string& fn) {
  return instr({.op = Op::kEnclave, .a = dst, .b = arg, .target = fn});
}

std::size_t Program::address_of(const std::string& lbl) const {
  auto it = labels_.find(lbl);
  require(it != labels_.end(), "Program: unknown label " + lbl);
  return it->second;
}

void Program::finalize() {
  for (std::size_t pc : unresolved_) {
    Instr& instruction = code_[pc];
    instruction.imm = static_cast<std::int64_t>(address_of(instruction.target));
  }
  finalized_ = true;
}

VirtualCpu::VirtualCpu(const Program& program) : program_(program) {}

ExecutionResult VirtualCpu::run(std::uint64_t max_instructions) {
  ExecutionResult result;
  std::array<std::int64_t, 16> regs{};
  for (const auto& [reg, value] : attack_.force_registers) {
    require(reg >= 0 && reg < 16, "AttackPlan: bad register");
    regs[static_cast<std::size_t>(reg)] = value;
  }
  std::vector<std::size_t> call_stack;
  bool flag = false;
  std::size_t pc = 0;
  const auto& code = program_.code();

  while (pc < code.size() && result.instructions < max_instructions) {
    const Instr& in = code[pc];
    result.instructions++;
    std::size_t next = pc + 1;

    switch (in.op) {
      case Op::kLoadImm: regs[in.a] = in.imm; break;
      case Op::kMov: regs[in.a] = regs[in.b]; break;
      case Op::kAdd: regs[in.a] += regs[in.b]; break;
      case Op::kSub: regs[in.a] -= regs[in.b]; break;
      case Op::kMul: regs[in.a] *= regs[in.b]; break;
      case Op::kXor: regs[in.a] ^= regs[in.b]; break;
      case Op::kCmpEq: flag = regs[in.a] == regs[in.b]; break;
      case Op::kJmp: next = static_cast<std::size_t>(in.imm); break;
      case Op::kJeq:
      case Op::kJne: {
        bool take = (in.op == Op::kJeq) ? flag : !flag;
        // The CFB superpower: force the branch the other way.
        if (attack_.flip_branches.contains(pc)) take = !take;
        result.branch_trace.push_back(BranchEvent{pc, take});
        if (take) next = static_cast<std::size_t>(in.imm);
        break;
      }
      case Op::kCall:
        if (attack_.skip_calls.contains(pc)) break;  // attacker no-ops the call
        call_stack.push_back(next);
        next = static_cast<std::size_t>(in.imm);
        break;
      case Op::kRet:
        if (call_stack.empty()) {
          result.halted = true;
          result.exit_code = regs[0];
          return result;
        }
        next = call_stack.back();
        call_stack.pop_back();
        break;
      case Op::kHalt:
        result.halted = true;
        result.exit_code = regs[in.a];
        return result;
      case Op::kOut: result.output.push_back(regs[in.a]); break;
      case Op::kEnclave: {
        // The virtual CPU cannot look inside the enclave; it can only make
        // the call and observe the result. Without a valid lease the gate
        // refuses and the attacker gets nothing useful back.
        std::optional<std::int64_t> value;
        if (gate_) value = gate_(in.target, regs[in.b]);
        if (value.has_value()) {
          regs[in.a] = *value;
        } else {
          result.enclave_denials++;
          regs[in.a] = 0;  // garbage: the protected logic never ran
        }
        break;
      }
    }
    pc = next;
  }
  return result;
}

std::vector<std::size_t> rank_suspect_branches(
    const std::vector<ExecutionResult>& unlicensed_runs, const Program& program) {
  // Aggregate per-branch statistics across the runs.
  struct BranchStats {
    std::uint64_t observations = 0;
    std::uint64_t taken = 0;
    double mean_position = 0.0;  // average index within its trace (0 = early)
  };
  std::unordered_map<std::size_t, BranchStats> stats;
  for (const ExecutionResult& run : unlicensed_runs) {
    const double trace_size = std::max<std::size_t>(1, run.branch_trace.size());
    for (std::size_t i = 0; i < run.branch_trace.size(); ++i) {
      const BranchEvent& event = run.branch_trace[i];
      BranchStats& s = stats[event.pc];
      s.observations++;
      if (event.taken) s.taken++;
      s.mean_position += static_cast<double>(i) / trace_size;
    }
  }

  // Score: deterministic branches (always same way) observed in every run,
  // sitting early in the trace, near an abort (a HALT within a few
  // instructions of either successor) are license-check shaped.
  const auto& code = program.code();
  auto near_halt = [&](std::size_t pc) {
    for (std::size_t look = pc; look < std::min(pc + 4, code.size()); ++look) {
      if (code[look].op == Op::kHalt) return true;
    }
    const std::size_t target = static_cast<std::size_t>(code[pc].imm);
    for (std::size_t look = target; look < std::min(target + 4, code.size()); ++look) {
      if (code[look].op == Op::kHalt) return true;
    }
    return false;
  };

  std::vector<std::pair<double, std::size_t>> scored;
  for (const auto& [pc, s] : stats) {
    const double rate = static_cast<double>(s.taken) / s.observations;
    const double determinism = std::max(rate, 1.0 - rate);  // 1 = always same
    const double earliness = 1.0 - s.mean_position / s.observations;
    double score = determinism + earliness;
    if (near_halt(pc)) score += 2.0;  // the abort-adjacent signature
    scored.emplace_back(score, pc);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  std::vector<std::size_t> ranked;
  ranked.reserve(scored.size());
  for (const auto& [score, pc] : scored) ranked.push_back(pc);
  return ranked;
}

std::optional<std::size_t> find_divergent_branch(const ExecutionResult& licensed,
                                                 const ExecutionResult& unlicensed) {
  const std::size_t n =
      std::min(licensed.branch_trace.size(), unlicensed.branch_trace.size());
  for (std::size_t i = 0; i < n; ++i) {
    const BranchEvent& a = licensed.branch_trace[i];
    const BranchEvent& b = unlicensed.branch_trace[i];
    if (a.pc != b.pc) return b.pc;       // control flow already diverged
    if (a.taken != b.taken) return b.pc; // the deciding branch
  }
  return std::nullopt;
}

}  // namespace sl::attack
