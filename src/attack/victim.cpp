#include "attack/victim.hpp"

namespace sl::attack {

namespace {

// Query-parsing "key function": a little arithmetic scramble standing in
// for real parse logic. The enclave-backed builds run this behind the
// gate; the software build inlines it as virtual-CPU code.
std::int64_t parse_query(std::int64_t query) {
  return (query * 37 + 11) ^ 0x2a;
}

// The authentication decision the AM performs over the supplied license.
// (In the software build this comparison is visible to the attacker.)
std::int64_t auth_check(std::int64_t license) {
  return license == kValidLicense ? 1 : 0;
}

void emit_protected_region(Program& p, Protection protection) {
  // Protected region: for three queries, parse and execute, emitting the
  // result. r4 = query value, r5 = parsed form, r6 = loop counter.
  p.label("protected");
  p.load(6, 3);  // three queries
  p.load(4, 100);
  p.label("query_loop");
  if (protection == Protection::kSecureLease) {
    // Key function inside the enclave: only runs with a valid lease.
    p.enclave_call(5, 4, "parse_query");
  } else {
    // Inline parse: r5 = (r4*37 + 11) ^ 0x2a.
    p.load(7, 37);
    p.mov(5, 4);
    p.mul(5, 7);
    p.load(7, 11);
    p.add(5, 7);
    p.load(7, 0x2a);
    p.xor_(5, 7);
  }
  // "Execute" the query: result = parsed + query, emitted as output.
  p.mov(8, 5);
  p.add(8, 4);
  p.out(8);
  // Next query.
  p.load(7, 17);
  p.add(4, 7);
  p.load(7, 1);
  p.sub(6, 7);
  p.load(7, 0);
  p.cmp_eq(6, 7);
  p.jne("query_loop");
  p.load(0, 0);
  p.halt(0);
}

}  // namespace

VictimApp build_victim(Protection protection) {
  VictimApp app;
  Program& p = app.program;

  // Initialization phase (init SSL, server init, ... in Figure 6): here a
  // token bit of setup arithmetic.
  p.label("init");
  p.load(2, 7);
  p.load(3, 5);
  p.add(2, 3);

  // Authentication module. r1 holds the user-supplied license value.
  if (protection == Protection::kSoftwareOnly) {
    // Visible comparison: r9 = expected license; flag = (r1 == r9).
    p.label("auth");
    p.load(9, kValidLicense);
    p.cmp_eq(1, 9);
    p.jne("abort");  // the jne of Figure 2: flip it and you are in
    p.jmp("protected");
  } else {
    // AM behind the enclave gate: r10 = auth(r1). The attacker cannot bend
    // the check itself, but the *outcome* is processed out here — skipping
    // the branch below is attack 2 of Figure 6.
    p.label("auth");
    p.enclave_call(10, 1, "auth_check");
    p.load(9, 1);
    p.cmp_eq(10, 9);
    p.jne("abort");
    p.jmp("protected");
  }

  p.label("abort");
  p.load(0, 1);
  p.halt(0);

  emit_protected_region(p, protection);
  p.finalize();

  // Expected output of a licensed run: three parsed+executed queries.
  for (std::int64_t q = 100, i = 0; i < 3; ++i, q += 17) {
    app.expected_output.push_back(parse_query(q) + q);
  }
  return app;
}

EnclaveGate make_gate(bool licensed) {
  return [licensed](const std::string& fn, std::int64_t arg) -> std::optional<std::int64_t> {
    if (fn == "auth_check") {
      // The AM itself always runs (it must be able to say "no").
      return auth_check(arg);
    }
    if (fn == "parse_query") {
      // Key function: refuses without a valid lease.
      if (!licensed) return std::nullopt;
      return parse_query(arg);
    }
    return std::nullopt;
  };
}

ExecutionResult run_victim(const VictimApp& app, std::int64_t license_value,
                           bool gate_licensed) {
  VirtualCpu cpu(app.program);
  cpu.set_enclave_gate(make_gate(gate_licensed));
  AttackPlan plan;
  plan.force_registers[1] = license_value;
  cpu.set_attack(plan);
  return cpu.run();
}

ExecutionResult mount_unsupervised_cfb_attack(const VictimApp& app,
                                              bool gate_licensed,
                                              int max_attempts) {
  // Step 1: collect traces with assorted invalid licenses (the attacker
  // has no valid one).
  std::vector<ExecutionResult> probes;
  for (std::int64_t guess : {0LL, 1LL, 0x1234LL, -1LL}) {
    probes.push_back(run_victim(app, guess, gate_licensed));
  }
  const std::vector<std::size_t> suspects =
      rank_suspect_branches(probes, app.program);

  // Step 2: flip suspects best-first until a run escapes the abort path.
  ExecutionResult best = probes.front();
  int attempts = 0;
  for (std::size_t pc : suspects) {
    if (attempts++ >= max_attempts) break;
    VirtualCpu cpu(app.program);
    cpu.set_enclave_gate(make_gate(gate_licensed));
    AttackPlan plan;
    plan.force_registers[1] = 0;
    plan.flip_branches.insert(pc);
    cpu.set_attack(plan);
    ExecutionResult attempt = cpu.run();
    // "Escaped" = produced output the abort path never does.
    if (!attempt.output.empty()) return attempt;
    best = std::move(attempt);
  }
  return best;
}

ExecutionResult mount_cfb_attack(const VictimApp& app, bool gate_licensed) {
  // Step 1 (supervised discovery): trace with and without a valid license.
  const ExecutionResult licensed = run_victim(app, kValidLicense, /*gate=*/true);
  const ExecutionResult unlicensed = run_victim(app, 0, gate_licensed);

  AttackPlan plan;
  plan.force_registers[1] = 0;  // no license
  const auto decision = find_divergent_branch(licensed, unlicensed);
  if (decision.has_value()) {
    // Step 2: flip the deciding branch.
    plan.flip_branches.insert(*decision);
  }

  VirtualCpu cpu(app.program);
  cpu.set_enclave_gate(make_gate(gate_licensed));
  cpu.set_attack(plan);
  return cpu.run();
}

}  // namespace sl::attack
