// Call-graph models of the attack victims, for the static auditor.
//
// The CFB attack experiments run vCPU *programs* (victim.hpp,
// mysql_victim.hpp, victim_generator.hpp); the partition auditor analyzes
// *call graphs*. This module provides the bridge: for every victim build it
// derives (a) an annotated AppModel mirroring the program's function
// structure and (b) the PartitionResult the protection scheme implies —
// so the dynamic attack outcome can be cross-validated against the static
// findings (tests/analysis/test_cross_validation.cpp):
//
//   attack cracks the build  ==>  the auditor flags its partition.
//
// The MySQL victim model is also a proper AppModel the real partitioners
// accept, so `partition_glamdring` / `partition_securelease` can be run on
// it and audited (the ISSUE's Glamdring-vs-SecureLease acceptance check).
#pragma once

#include "attack/mysql_victim.hpp"
#include "attack/victim.hpp"
#include "attack/victim_generator.hpp"
#include "partition/partitioner.hpp"
#include "workloads/app_model.hpp"

namespace sl::attack {

// --- the small Figure 1/2 victim (victim.hpp) -------------------------------

workloads::AppModel victim_app_model();
// The migrated set the given protection build implies: software-only
// migrates nothing, enclave-AM migrates the AM, SecureLease adds the
// parser key function.
partition::PartitionResult victim_partition(Protection protection);

// --- the Figure 6 MySQL victim (mysql_victim.hpp) ---------------------------

workloads::AppModel mysql_victim_model();
partition::PartitionResult mysql_victim_partition(MysqlProtection protection);

// --- generated victims (victim_generator.hpp) -------------------------------

// Model of a generated victim. Key-function annotations follow the build:
// under kSecureLease exactly the gated stages are annotated (the developer
// chose them); under the other protections every stage is annotated (the
// vendor wants the pipeline protected — the build just fails to protect it).
workloads::AppModel generated_victim_model(const GeneratedVictim& victim);
partition::PartitionResult generated_victim_partition(const GeneratedVictim& victim);

// Human-readable label for a protection build (used in audit reports).
std::string protection_label(Protection protection);
std::string protection_label(MysqlProtection protection);

}  // namespace sl::attack
