#include "attack/mysql_victim.hpp"

namespace sl::attack {

namespace {

// The query parser — MySQL's key function in the paper's partition. A
// seed-free scramble keeps the victim deterministic.
std::int64_t parse_query_fn(std::int64_t query) {
  return (query * 131 + 29) ^ 0x5a5;
}

std::int64_t auth_fn(std::int64_t license) {
  return license == kMysqlValidLicense ? 1 : 0;
}

}  // namespace

MysqlVictim build_mysql_victim(MysqlProtection protection) {
  MysqlVictim victim;
  Program& p = victim.program;

  // --- Initialization phase (Figure 6, left column). ----------------------
  p.label("init_ssl");
  p.load(2, 3).load(3, 11).mul(2, 3);  // handshake arithmetic stand-in
  p.label("server_init");
  p.load(3, 5).add(2, 3);
  p.label("signal_handlers");
  p.load(3, 1).xor_(2, 3);
  p.label("create_threads");
  p.load(5, 4);  // four worker "threads"
  p.label("handle_connections");
  p.load(3, 7).add(2, 3);

  // --- Connection phase. ----------------------------------------------------
  p.label("prepare_connection");
  p.load(6, 100);
  p.label("login_connection");
  p.load(3, 2).add(6, 3);
  p.label("check_connection");
  p.load(3, 1).add(6, 3);

  // --- acl_authenticate (the AM). r1 = user-supplied credentials. ----------
  p.label("acl_authenticate");
  if (protection == MysqlProtection::kSoftwareOnly) {
    // Attack 1's target: the internal decision branch.
    p.load(9, kMysqlValidLicense);
    p.cmp_eq(1, 9);
    p.jne("login_failed");  // the Figure 2 jne
    p.load(10, 1);          // res = CR_OK
  } else {
    // The check runs behind the gate; only the outcome (r10) comes back.
    p.enclave_call(10, 1, "acl_authenticate");
  }
  // Attack 2's target: the outcome is processed OUTSIDE the AM.
  p.load(9, 1);
  p.cmp_eq(10, 9);
  p.jne("login_failed");
  p.jmp("protected_region");

  p.label("login_failed");
  p.load(0, 1);
  p.halt(0);

  // --- Protected region: four queries through the pipeline. -----------------
  p.label("protected_region");
  p.load(4, 1'000);  // first query id
  p.load(6, 4);      // query count
  p.label("query_loop");
  // query input: derive the query payload.
  p.load(7, 3);
  p.mov(8, 4);
  p.add(8, 7);
  // query parser (the key function under SecureLease).
  if (protection == MysqlProtection::kSecureLease) {
    p.enclave_call(8, 8, "query_parser");
  } else {
    p.load(7, 131);
    p.mul(8, 7);
    p.load(7, 29);
    p.add(8, 7);
    p.load(7, 0x5a5);
    p.xor_(8, 7);
  }
  // execute query + write data: emit the result.
  p.load(7, 9);
  p.add(8, 7);
  p.out(8);
  // next query.
  p.load(7, 17);
  p.add(4, 7);
  p.load(7, 1);
  p.sub(6, 7);
  p.load(7, 0);
  p.cmp_eq(6, 7);
  p.jne("query_loop");
  p.load(0, 0);
  p.halt(0);
  p.finalize();

  for (std::int64_t q = 1'000, i = 0; i < 4; ++i, q += 17) {
    victim.expected_output.push_back(parse_query_fn(q + 3) + 9);
  }
  return victim;
}

EnclaveGate make_mysql_gate(bool licensed) {
  return [licensed](const std::string& fn,
                    std::int64_t arg) -> std::optional<std::int64_t> {
    if (fn == "acl_authenticate") return auth_fn(arg);
    if (fn == "query_parser") {
      if (!licensed) return std::nullopt;
      return parse_query_fn(arg);
    }
    return std::nullopt;
  };
}

ExecutionResult run_mysql(const MysqlVictim& victim, std::int64_t license,
                          bool gate_licensed) {
  VirtualCpu cpu(victim.program);
  cpu.set_enclave_gate(make_mysql_gate(gate_licensed));
  AttackPlan plan;
  plan.force_registers[1] = license;
  cpu.set_attack(plan);
  return cpu.run();
}

namespace {

ExecutionResult attack_nth_branch(const MysqlVictim& victim, bool gate_licensed,
                                  std::size_t branch_index) {
  // Trace an unlicensed run and flip the branch_index-th *conditional*
  // branch it executed.
  const ExecutionResult probe = run_mysql(victim, 0, gate_licensed);
  AttackPlan plan;
  plan.force_registers[1] = 0;
  if (branch_index < probe.branch_trace.size()) {
    plan.flip_branches.insert(probe.branch_trace[branch_index].pc);
  }
  VirtualCpu cpu(victim.program);
  cpu.set_enclave_gate(make_mysql_gate(gate_licensed));
  cpu.set_attack(plan);
  return cpu.run();
}

}  // namespace

ExecutionResult mysql_attack_auth_branch(const MysqlVictim& victim,
                                         bool gate_licensed) {
  // The first conditional branch an unlicensed run hits is the AM's
  // internal decision (software build) or the outcome check (enclave
  // builds) — either way, flip the first.
  return attack_nth_branch(victim, gate_licensed, 0);
}

ExecutionResult mysql_attack_outcome_branch(const MysqlVictim& victim,
                                            bool gate_licensed) {
  // The outcome-processing branch is the LAST branch before the abort in
  // the unlicensed trace.
  const ExecutionResult probe = run_mysql(victim, 0, gate_licensed);
  if (probe.branch_trace.empty()) return probe;
  return attack_nth_branch(victim, gate_licensed, probe.branch_trace.size() - 1);
}

}  // namespace sl::attack
