#include "attack/victim_model.hpp"

namespace sl::attack {

namespace {

using cfg::FunctionInfo;

FunctionInfo fn(std::string name, std::uint64_t invocations,
                std::uint64_t work_cycles) {
  FunctionInfo info;
  info.name = std::move(name);
  info.code_instructions = 500;
  info.mem_bytes = 16 * 1024;
  info.enclave_state_bytes = 16 * 1024;
  info.invocations = invocations;
  info.work_cycles = work_cycles;
  return info;
}

FunctionInfo am_fn(std::string name, std::uint64_t invocations,
                   std::uint64_t work_cycles) {
  FunctionInfo info = fn(std::move(name), invocations, work_cycles);
  info.in_authentication_module = true;
  info.touches_sensitive_data = true;  // credentials / ACL tables
  return info;
}

FunctionInfo key_fn(std::string name, std::uint64_t invocations,
                    std::uint64_t work_cycles) {
  FunctionInfo info = fn(std::move(name), invocations, work_cycles);
  info.is_key_function = true;
  return info;
}

FunctionInfo io_fn(std::string name, std::uint64_t invocations,
                   std::uint64_t work_cycles) {
  FunctionInfo info = fn(std::move(name), invocations, work_cycles);
  info.does_io = true;
  return info;
}

partition::PartitionResult partition_of(
    const workloads::AppModel& model, partition::Scheme scheme,
    const std::vector<std::string>& migrated_names) {
  partition::PartitionResult result;
  result.scheme = scheme;
  result.data_in_enclave = false;
  for (const std::string& name : migrated_names) {
    result.migrated.insert(model.graph.id_of(name));
  }
  return result;
}

}  // namespace

// --- small victim ------------------------------------------------------------

workloads::AppModel victim_app_model() {
  workloads::AppModel model;
  model.name = "CFB-victim";
  model.input_description = "Figure 1 victim: license check + 3 queries";
  model.entry = "main";
  cfg::CallGraph& g = model.graph;

  g.add_function(io_fn("main", 1, 10'000));
  g.add_function(fn("init", 1, 5'000));
  g.add_function(am_fn("check_license", 1, 20'000));
  g.add_function(fn("query_driver", 1, 3'000));
  g.add_function(key_fn("parse_query", 3, 30'000));
  g.add_function(fn("execute_query", 3, 40'000));
  g.add_function(io_fn("emit_output", 3, 5'000));

  g.add_call("main", "init", 1);
  g.add_call("main", "check_license", 1);
  g.add_call("main", "query_driver", 1);
  g.add_call("query_driver", "parse_query", 3);
  g.add_call("query_driver", "execute_query", 3);
  g.add_call("execute_query", "emit_output", 3);
  return model;
}

partition::PartitionResult victim_partition(Protection protection) {
  const workloads::AppModel model = victim_app_model();
  switch (protection) {
    case Protection::kSoftwareOnly:
      return partition_of(model, partition::Scheme::kVanilla, {});
    case Protection::kAmInEnclave:
      return partition_of(model, partition::Scheme::kFlaas, {"check_license"});
    case Protection::kSecureLease:
      return partition_of(model, partition::Scheme::kSecureLease,
                          {"check_license", "parse_query"});
  }
  return partition_of(model, partition::Scheme::kVanilla, {});
}

// --- MySQL victim ------------------------------------------------------------

workloads::AppModel mysql_victim_model() {
  workloads::AppModel model;
  model.name = "MySQL-victim";
  model.input_description = "Figure 6 victim: 4 connections x 4 queries";
  model.entry = "main";
  cfg::CallGraph& g = model.graph;

  // Initialization phase.
  g.add_function(io_fn("main", 1, 20'000));
  g.add_function(fn("init_ssl", 1, 30'000));
  g.add_function(fn("server_init", 1, 25'000));
  g.add_function(fn("signal_handlers", 1, 2'000));
  g.add_function(fn("create_threads", 1, 8'000));
  g.add_function(io_fn("handle_connections", 4, 100'000));

  // Connection phase.
  g.add_function(fn("prepare_connection", 4, 15'000));
  g.add_function(fn("login_connection", 4, 10'000));
  g.add_function(fn("check_connection", 4, 12'000));

  // The authentication module: acl_authenticate and its helpers read the
  // user/password tables — Glamdring-sensitive data.
  g.add_function(am_fn("acl_authenticate", 4, 20'000));
  g.add_function(am_fn("acl_check_user", 4, 10'000));
  g.add_function(am_fn("user_table_load", 1, 30'000));

  // Protected region: the query pipeline. The parser is the paper's MySQL
  // key function; it does NOT touch Glamdring-sensitive data — exactly why
  // a data-based partition leaves it outside.
  g.add_function(fn("query_input", 16, 8'000));
  g.add_function(key_fn("parse_query", 16, 50'000));
  g.add_function(fn("execute_query", 16, 200'000));
  g.add_function(io_fn("write_data", 16, 50'000));

  g.add_call("main", "init_ssl", 1);
  g.add_call("main", "server_init", 1);
  g.add_call("main", "signal_handlers", 1);
  g.add_call("main", "create_threads", 1);
  g.add_call("main", "handle_connections", 1);
  g.add_call("server_init", "user_table_load", 1);
  g.add_call("handle_connections", "prepare_connection", 4);
  g.add_call("prepare_connection", "login_connection", 4);
  g.add_call("login_connection", "check_connection", 4);
  g.add_call("check_connection", "acl_authenticate", 4);
  g.add_call("acl_authenticate", "acl_check_user", 4);
  // The verdict returns to check_connection, which dispatches queries.
  g.add_call("check_connection", "query_input", 4);
  g.add_call("query_input", "parse_query", 16);
  g.add_call("parse_query", "execute_query", 16);
  g.add_call("execute_query", "write_data", 16);
  return model;
}

partition::PartitionResult mysql_victim_partition(MysqlProtection protection) {
  const workloads::AppModel model = mysql_victim_model();
  const std::vector<std::string> am = {"acl_authenticate", "acl_check_user",
                                       "user_table_load"};
  switch (protection) {
    case MysqlProtection::kSoftwareOnly:
      return partition_of(model, partition::Scheme::kVanilla, {});
    case MysqlProtection::kAmInEnclave:
      return partition_of(model, partition::Scheme::kFlaas, am);
    case MysqlProtection::kSecureLease: {
      std::vector<std::string> migrated = am;
      migrated.push_back("parse_query");
      return partition_of(model, partition::Scheme::kSecureLease, migrated);
    }
  }
  return partition_of(model, partition::Scheme::kVanilla, {});
}

// --- generated victims -------------------------------------------------------

workloads::AppModel generated_victim_model(const GeneratedVictim& victim) {
  workloads::AppModel model;
  model.name = "generated-victim-" + std::to_string(victim.seed);
  model.input_description = std::to_string(victim.spec.stages) +
                            "-stage generated pipeline";
  model.entry = "main";
  cfg::CallGraph& g = model.graph;

  g.add_function(fn("main", 1, 5'000));
  g.add_function(fn("init", 1, 2'000));
  g.add_function(am_fn("check_license", 1, 10'000));
  const bool securelease = victim.spec.protection == Protection::kSecureLease;
  for (int s = 0; s < victim.spec.stages; ++s) {
    FunctionInfo info = fn("stage" + std::to_string(s),
                           static_cast<std::uint64_t>(victim.spec.outputs_per_stage),
                           20'000);
    // Under kSecureLease the developer annotated exactly the gated stages;
    // under the other builds the vendor wants the whole pipeline protected
    // (the build just fails to protect any of it).
    info.is_key_function =
        securelease ? victim.stage_gated[static_cast<std::size_t>(s)] : true;
    g.add_function(std::move(info));
  }
  g.add_function(io_fn("emit_output", 1, 1'000));

  g.add_call("main", "init", 1);
  g.add_call("main", "check_license", 1);
  if (victim.spec.stages > 0) {
    g.add_call("main", "stage0", 1);
    for (int s = 0; s + 1 < victim.spec.stages; ++s) {
      g.add_call("stage" + std::to_string(s), "stage" + std::to_string(s + 1), 1);
    }
    g.add_call("stage" + std::to_string(victim.spec.stages - 1), "emit_output", 1);
  } else {
    g.add_call("main", "emit_output", 1);
  }
  return model;
}

partition::PartitionResult generated_victim_partition(const GeneratedVictim& victim) {
  const workloads::AppModel model = generated_victim_model(victim);
  switch (victim.spec.protection) {
    case Protection::kSoftwareOnly:
      return partition_of(model, partition::Scheme::kVanilla, {});
    case Protection::kAmInEnclave:
      return partition_of(model, partition::Scheme::kFlaas, {"check_license"});
    case Protection::kSecureLease: {
      std::vector<std::string> migrated = {"check_license"};
      for (int s = 0; s < victim.spec.stages; ++s) {
        if (victim.stage_gated[static_cast<std::size_t>(s)]) {
          migrated.push_back("stage" + std::to_string(s));
        }
      }
      return partition_of(model, partition::Scheme::kSecureLease, migrated);
    }
  }
  return partition_of(model, partition::Scheme::kVanilla, {});
}

std::string protection_label(Protection protection) {
  switch (protection) {
    case Protection::kSoftwareOnly: return "software-only";
    case Protection::kAmInEnclave: return "enclave-AM";
    case Protection::kSecureLease: return "SecureLease";
  }
  return "?";
}

std::string protection_label(MysqlProtection protection) {
  switch (protection) {
    case MysqlProtection::kSoftwareOnly: return "software-only";
    case MysqlProtection::kAmInEnclave: return "enclave-AM";
    case MysqlProtection::kSecureLease: return "SecureLease";
  }
  return "?";
}

}  // namespace sl::attack
