#include "attack/victim_generator.hpp"

#include <string>

#include "common/rng.hpp"

namespace sl::attack {

namespace {

// The per-stage protected transform; varies with the seed so generated
// programs compute genuinely different functions.
std::int64_t stage_fn(std::uint64_t seed, int stage, std::int64_t input) {
  const std::int64_t a = static_cast<std::int64_t>(
      3 + splitmix64_key(static_cast<std::uint64_t>(stage) * 2 + 1, seed) % 97);
  const std::int64_t b = static_cast<std::int64_t>(
      splitmix64_key(static_cast<std::uint64_t>(stage) * 2 + 2, seed) % 1009);
  return (input * a + b) ^ (stage * 0x11);
}

std::string stage_name(int stage) { return "stage" + std::to_string(stage); }

}  // namespace

GeneratedVictim generate_victim(const VictimSpec& spec) {
  Rng rng(spec.seed);
  GeneratedVictim victim;
  victim.spec = spec;
  victim.seed = spec.seed;
  victim.license_value =
      static_cast<std::int64_t>(splitmix64_key(0xace, spec.seed) % 1'000'000 + 1);

  // Decide which stages are enclave-gated under kSecureLease.
  std::vector<bool> gated(static_cast<std::size_t>(spec.stages), false);
  if (spec.protection == Protection::kSecureLease) {
    for (int s = 0; s < spec.stages; ++s) {
      gated[static_cast<std::size_t>(s)] = rng.next_bool(spec.key_stage_fraction);
    }
    // At least one key function, or the partition protects nothing.
    gated[static_cast<std::size_t>(rng.next_below(
        static_cast<std::uint64_t>(spec.stages)))] = true;
    for (bool g : gated) {
      if (g) victim.gated_stages++;
    }
  }
  victim.stage_gated = gated;

  Program& p = victim.app.program;

  // Init phase: arithmetic noise with its own (harmless) branches so the
  // attack discovery has decoys to consider.
  p.label("init");
  p.load(2, static_cast<std::int64_t>(rng.next_below(50) + 1));
  for (int i = 0; i < spec.init_ops; ++i) {
    p.load(3, static_cast<std::int64_t>(rng.next_below(9) + 1));
    switch (rng.next_below(3)) {
      case 0: p.add(2, 3); break;
      case 1: p.mul(2, 3); break;
      default: p.xor_(2, 3); break;
    }
  }

  // Authentication module. r1 = user-supplied license value.
  p.label("auth");
  if (spec.protection == Protection::kSoftwareOnly) {
    p.load(9, victim.license_value);
    p.cmp_eq(1, 9);
    p.jne("abort");
  } else {
    p.enclave_call(10, 1, "auth_check");
    p.load(9, 1);
    p.cmp_eq(10, 9);
    p.jne("abort");
  }
  p.jmp("protected");

  p.label("abort");
  p.load(0, 1);
  p.halt(0);

  // Protected region: a pipeline of stages; each stage transforms r4 and
  // emits `outputs_per_stage` derived values.
  p.label("protected");
  const std::int64_t input0 = static_cast<std::int64_t>(rng.next_below(500) + 10);
  p.load(4, input0);
  std::int64_t value = input0;
  for (int s = 0; s < spec.stages; ++s) {
    if (spec.protection == Protection::kSecureLease &&
        gated[static_cast<std::size_t>(s)]) {
      p.enclave_call(4, 4, stage_name(s));
    } else {
      // Inline the transform: r4 = (r4*a + b) ^ (s*0x11).
      const std::int64_t a = static_cast<std::int64_t>(
          3 + splitmix64_key(static_cast<std::uint64_t>(s) * 2 + 1, spec.seed) % 97);
      const std::int64_t b = static_cast<std::int64_t>(
          splitmix64_key(static_cast<std::uint64_t>(s) * 2 + 2, spec.seed) % 1009);
      p.load(7, a);
      p.mul(4, 7);
      p.load(7, b);
      p.add(4, 7);
      p.load(7, s * 0x11);
      p.xor_(4, 7);
    }
    value = stage_fn(spec.seed, s, value);
    for (int o = 0; o < spec.outputs_per_stage; ++o) {
      p.load(7, o + 1);
      p.mov(8, 4);
      p.add(8, 7);
      p.out(8);
      victim.app.expected_output.push_back(value + o + 1);
    }
  }
  p.load(0, 0);
  p.halt(0);
  p.finalize();
  return victim;
}

EnclaveGate make_generated_gate(const GeneratedVictim& victim, bool licensed) {
  const std::int64_t valid = victim.license_value;
  const std::uint64_t seed = victim.seed;
  return [valid, licensed, seed](const std::string& fn,
                                 std::int64_t arg) -> std::optional<std::int64_t> {
    if (fn == "auth_check") return arg == valid ? 1 : 0;
    if (fn.rfind("stage", 0) == 0) {
      if (!licensed) return std::nullopt;  // no lease, no key function
      const int stage = std::stoi(fn.substr(5));
      return stage_fn(seed, stage, arg);
    }
    return std::nullopt;
  };
}

ExecutionResult run_generated(const GeneratedVictim& victim,
                              std::int64_t license_value, bool gate_licensed) {
  VirtualCpu cpu(victim.app.program);
  cpu.set_enclave_gate(make_generated_gate(victim, gate_licensed));
  AttackPlan plan;
  plan.force_registers[1] = license_value;
  cpu.set_attack(plan);
  return cpu.run();
}

ExecutionResult attack_generated(const GeneratedVictim& victim, bool gate_licensed) {
  const ExecutionResult licensed =
      run_generated(victim, victim.license_value, /*gate=*/true);
  const ExecutionResult unlicensed = run_generated(victim, 0, gate_licensed);

  AttackPlan plan;
  plan.force_registers[1] = 0;
  const auto decision = find_divergent_branch(licensed, unlicensed);
  if (decision.has_value()) plan.flip_branches.insert(*decision);

  VirtualCpu cpu(victim.app.program);
  cpu.set_enclave_gate(make_generated_gate(victim, gate_licensed));
  cpu.set_attack(plan);
  return cpu.run();
}

}  // namespace sl::attack
