// A small virtual CPU for mounting control-flow-bending attacks.
//
// The paper's threat model lets the attacker run the victim binary on a
// virtual CPU (Intel Pin in the paper) with full visibility and control
// over registers, memory and branches — unbeknownst to the program. This
// module provides exactly that power over a small register machine:
// programs are assembled from labeled instructions, and an attacker can
// flip branch decisions, skip calls, and force register values while the
// program runs. Enclave-resident functions are the one thing the virtual
// CPU cannot see into: they execute behind an EnclaveGate that checks for
// a valid lease token.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace sl::attack {

enum class Op {
  kLoadImm,  // r[a] = imm
  kMov,      // r[a] = r[b]
  kAdd,      // r[a] += r[b]
  kSub,      // r[a] -= r[b]
  kMul,      // r[a] *= r[b]
  kXor,      // r[a] ^= r[b]
  kCmpEq,    // flag = (r[a] == r[b])
  kJmp,      // pc = target
  kJeq,      // if flag, pc = target
  kJne,      // if !flag, pc = target
  kCall,     // push pc; pc = target
  kRet,      // pc = pop
  kHalt,     // stop (r[a] is the exit code)
  kOut,      // append r[a] to the output stream
  kEnclave,  // r[a] = enclave_fn(target)(r[b]) — runs behind the gate
};

struct Instr {
  Op op = Op::kHalt;
  int a = 0;
  int b = 0;
  std::int64_t imm = 0;
  std::string target;  // label or enclave-function name
};

// Assembler: labeled instruction stream with jump resolution.
class Program {
 public:
  Program& label(const std::string& name);
  Program& instr(Instr instruction);

  // Convenience emitters.
  Program& load(int reg, std::int64_t imm);
  Program& mov(int dst, int src);
  Program& add(int dst, int src);
  Program& sub(int dst, int src);
  Program& mul(int dst, int src);
  Program& xor_(int dst, int src);
  Program& cmp_eq(int a, int b);
  Program& jmp(const std::string& target);
  Program& jeq(const std::string& target);
  Program& jne(const std::string& target);
  Program& call(const std::string& target);
  Program& ret();
  Program& halt(int code_reg = 0);
  Program& out(int reg);
  Program& enclave_call(int dst, int arg, const std::string& fn);

  const std::vector<Instr>& code() const { return code_; }
  std::size_t address_of(const std::string& lbl) const;
  // Resolves all label targets; must be called before execution.
  void finalize();

 private:
  std::vector<Instr> code_;
  std::unordered_map<std::string, std::size_t> labels_;
  std::vector<std::size_t> unresolved_;
  bool finalized_ = false;
};

// A function exported by an enclave: callable only with a valid lease.
// Returns the function result; the gate decides whether the call is
// authorized (e.g. by consulting an SL-Manager).
using EnclaveGate =
    std::function<std::optional<std::int64_t>(const std::string& fn, std::int64_t arg)>;

// What the attacker tampers with (the virtual-CPU superpowers).
struct AttackPlan {
  std::unordered_set<std::size_t> flip_branches;   // invert Jeq/Jne at pc
  std::unordered_set<std::size_t> skip_calls;      // treat Call at pc as a no-op
  std::unordered_map<int, std::int64_t> force_registers;  // applied at start
};

struct BranchEvent {
  std::size_t pc = 0;
  bool taken = false;
};

struct ExecutionResult {
  bool halted = false;
  std::int64_t exit_code = -1;
  std::vector<std::int64_t> output;
  std::vector<BranchEvent> branch_trace;  // for CFB attack discovery
  std::uint64_t instructions = 0;
  std::uint64_t enclave_denials = 0;  // gated calls that were refused
};

class VirtualCpu {
 public:
  explicit VirtualCpu(const Program& program);

  void set_enclave_gate(EnclaveGate gate) { gate_ = std::move(gate); }
  void set_attack(AttackPlan plan) { attack_ = std::move(plan); }

  // Runs until HALT or the instruction budget is exhausted.
  ExecutionResult run(std::uint64_t max_instructions = 1'000'000);

 private:
  const Program& program_;
  EnclaveGate gate_;
  AttackPlan attack_;
};

// Supervised CFB attack discovery (paper Section 2.1.1): compare the branch
// traces of a licensed and an unlicensed run and return the pc of the first
// branch that diverges — the license-check decision point.
std::optional<std::size_t> find_divergent_branch(const ExecutionResult& licensed,
                                                 const ExecutionResult& unlicensed);

// Unsupervised discovery (Section 2.1.1's second method): with NO licensed
// trace available, rank candidate authentication branches from unlicensed
// runs alone. Heuristics: branches close to an early HALT with few
// instructions executed (license checks abort early) and branches that are
// always taken the same way score highest. Returns candidate pcs, most
// suspicious first.
std::vector<std::size_t> rank_suspect_branches(
    const std::vector<ExecutionResult>& unlicensed_runs, const Program& program);

}  // namespace sl::attack
