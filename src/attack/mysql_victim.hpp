// The Figure 6 victim: a miniature MySQL-shaped server pipeline.
//
// Stages follow the paper's diagram: init SSL -> server init -> signal
// handlers -> create threads -> handle connections -> prepare connection ->
// login connection -> check connection -> acl_authenticate (the AM) ->
// protected region (query input -> query parser -> execute query -> write
// data). Two attack entry points are modelled:
//   attack 1 — bend acl_authenticate's internal decision branch,
//   attack 2 — leave the AM alone (it may be in SGX) and bend the branch
//              that processes its OUTCOME outside the enclave.
// Under the SecureLease build the query parser is the enclave-gated key
// function, so both attacks yield a useless server.
#pragma once

#include "attack/vcpu.hpp"

namespace sl::attack {

enum class MysqlProtection {
  kSoftwareOnly,   // acl_authenticate is plain code
  kAmInEnclave,    // acl_authenticate behind the gate; outcome checked outside
  kSecureLease,    // AM and the query parser behind the gate
};

struct MysqlVictim {
  Program program;
  std::vector<std::int64_t> expected_output;  // results of 4 queries
};

inline constexpr std::int64_t kMysqlValidLicense = 0xdb5ec;

MysqlVictim build_mysql_victim(MysqlProtection protection);

EnclaveGate make_mysql_gate(bool licensed);

ExecutionResult run_mysql(const MysqlVictim& victim, std::int64_t license,
                          bool gate_licensed);

// Attack 1 of Figure 6: force acl_authenticate's decision (only meaningful
// for the software build; for enclave builds the branch is unreachable).
ExecutionResult mysql_attack_auth_branch(const MysqlVictim& victim,
                                         bool gate_licensed);

// Attack 2 of Figure 6: flip the outcome-processing branch outside the AM.
ExecutionResult mysql_attack_outcome_branch(const MysqlVictim& victim,
                                            bool gate_licensed);

}  // namespace sl::attack
