// Victim programs for the CFB attack experiments (paper Sections 2.1.1, 6.1).
//
// A miniature MySQL-like application assembled for the virtual CPU: an
// initialization phase, an authentication module that validates a license
// value, and a protected region (query parse + execute) that produces the
// program's useful output. Three builds reproduce the paper's narrative:
//  * kSoftwareOnly  — the AM is plain code; flipping its decision branch
//                     unlocks the whole program (Figure 1 / Figure 2).
//  * kAmInEnclave   — only the AM runs behind the enclave gate; the
//                     attacker cannot tamper with it but can skip it and
//                     fix up the result register (Figure 6, attack 2).
//  * kSecureLease   — the AM AND the key function (query parsing) are
//                     enclave-gated; a bent control flow reaches the
//                     protected region but the key function yields nothing
//                     without a valid lease, leaving the program useless.
#pragma once

#include "attack/vcpu.hpp"

namespace sl::attack {

enum class Protection { kSoftwareOnly, kAmInEnclave, kSecureLease };

struct VictimApp {
  Program program;
  // The output the vendor intends licensed users to obtain.
  std::vector<std::int64_t> expected_output;
};

// Builds the victim with the given protection scheme. `license_value` is
// what the user supplies at run time via register 1 (the correct value is
// kValidLicense).
VictimApp build_victim(Protection protection);

inline constexpr std::int64_t kValidLicense = 0x5ec2e7;

// The gate used for enclave-backed builds: authorized when `licensed`.
// Counts denials so tests can assert the handicap.
EnclaveGate make_gate(bool licensed);

// Runs the victim with the supplied license value and no attack.
ExecutionResult run_victim(const VictimApp& app, std::int64_t license_value,
                           bool gate_licensed);

// Mounts the supervised CFB attack of Section 2.1.1: trace a licensed and
// an unlicensed run, find the deciding branch, flip it, and re-run without
// a license. Returns the attacked execution.
ExecutionResult mount_cfb_attack(const VictimApp& app, bool gate_licensed);

// Mounts the unsupervised variant: no licensed trace is available, so the
// attacker runs the victim with several bogus license values, ranks the
// suspect branches, and flips candidates (best first, up to `max_attempts`)
// until an attempt survives past the abort. Returns the best attempt.
ExecutionResult mount_unsupervised_cfb_attack(const VictimApp& app,
                                              bool gate_licensed,
                                              int max_attempts = 4);

}  // namespace sl::attack
