// Deterministic observability: the metrics half (see trace.hpp for spans).
//
// Every number in the paper's evaluation is an accounting identity — counts
// of ECALLs, OCALLs, EPC faults, renewals and commits multiplied by
// per-event virtual-cycle costs — so the metrics layer is built on the same
// substrate: counters, gauges and virtual-cycle histograms whose values are
// pure functions of the deterministic simulation. Nothing here ever reads a
// wall clock; snapshots of the registry are bit-identical across runs of
// the same seed, which is what makes metrics usable as test oracles
// (tests/obs/test_golden_metrics.cpp).
//
// Design rules:
//  * Hot paths hold raw Counter*/Histogram* handles resolved once at
//    construction (or a function-local static) — never a per-event registry
//    lookup.
//  * Compiled out (-DSECURELEASE_OBSERVABILITY=OFF => SL_OBS_ENABLED=0) the
//    helpers below are empty inline functions and get_counter() et al.
//    return nullptr: zero registry lookups, zero increments, zero branches
//    survive in optimized hot paths.
//  * Histograms use fixed log-2 buckets (upper bounds 2^0 .. 2^62, +Inf) so
//    the exposition is platform-independent: no float boundaries, no
//    locale, no iteration-order dependence (registry is an ordered map).
//  * Values are relaxed atomics: the lease tree and GCL are exercised from
//    real threads in the concurrency tests, and a torn counter would be a
//    nondeterminism source.
//
// Exposition omits metrics that were never touched (count/value still
// zero): in-process suites share one global registry, and a golden snapshot
// must not depend on which unrelated test registered a metric earlier.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#ifndef SL_OBS_ENABLED
#define SL_OBS_ENABLED 1
#endif

namespace sl::obs {

// Ordered label set; registration sorts by key, so {a=1,b=2} and {b=2,a=1}
// name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void zero() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void zero() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Log-2 bucket geometry: bucket i (i < 63) counts observations v with
// v <= 2^i (and v > 2^(i-1) for i > 0); bucket 63 is the +Inf overflow.
inline constexpr int kHistogramBuckets = 64;

// Index of the bucket an observation lands in.
int histogram_bucket(std::uint64_t value);
// Upper bound of bucket i (2^i); UINT64_MAX stands in for +Inf (i == 63).
std::uint64_t histogram_upper_bound(int bucket);

// Value-type copy of a histogram, closed under merge and delta — the benches
// subtract a before-run snapshot from an after-run one so concurrent history
// in the shared registry never leaks into a run's numbers.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  // virtual cycles (or whatever unit was observed)
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  void merge(const HistogramSnapshot& other);
  // this - earlier, element-wise; requires earlier <= this.
  HistogramSnapshot delta(const HistogramSnapshot& earlier) const;
  // Quantile estimate (q in [0,1]) by linear interpolation inside the
  // bucket; deterministic, returns 0 when empty.
  double quantile(double q) const;
  double mean() const { return count > 0 ? static_cast<double>(sum) / static_cast<double>(count) : 0.0; }
};

class Histogram {
 public:
  void observe(std::uint64_t value) {
    buckets_[histogram_bucket(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }
  HistogramSnapshot snapshot() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  void zero();

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* metric_kind_name(MetricKind kind);

// Process-wide metric registry. Metric objects are never freed or moved
// once registered — zero_all() zeroes values in place — so raw handles held
// by long-lived components (an SgxRuntime, a RemoteShard) stay valid across
// test-suite resets.
class MetricsRegistry {
 public:
  // Registers (or finds) a series. The first registration's help string
  // wins; kind mismatches on an existing name throw.
  Counter* counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  Gauge* gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  Histogram* histogram(const std::string& name, const std::string& help,
                       Labels labels = {});

  // --- Aggregation (bench + test surface) -----------------------------------
  // Sum of a counter across every label set (0 when absent).
  std::uint64_t counter_sum(const std::string& name) const;
  // One specific series (0 when absent).
  std::uint64_t counter_value(const std::string& name, const Labels& labels) const;
  // Merge of a histogram across every label set.
  HistogramSnapshot histogram_sum(const std::string& name) const;
  HistogramSnapshot histogram_value(const std::string& name,
                                    const Labels& labels) const;

  // --- Exposition -----------------------------------------------------------
  // Deterministic JSON document: series sorted by (name, labels); untouched
  // series omitted. All numbers are integers.
  std::string to_json() const;
  // Prometheus text exposition format (one HELP/TYPE block per name,
  // cumulative histogram buckets, escaped help and label values).
  std::string to_prometheus() const;

  // Zeroes every registered value, keeping registrations (and therefore
  // every cached handle) intact. The reset used between golden runs.
  void zero_all();

  // The process-wide instance.
  static MetricsRegistry& global();

 private:
  struct Series {
    std::string name;
    std::string help;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  using SeriesKey = std::pair<std::string, Labels>;

  Series& series(const std::string& name, const std::string& help,
                 Labels labels, MetricKind kind);

  mutable std::mutex mutex_;
  std::map<SeriesKey, std::unique_ptr<Series>> series_;
};

// Runtime kill switch for the inc()/observe() helpers below. On by default;
// bench_sim_throughput flips it off for an A/B measurement of the
// instrumentation overhead. Registration is unaffected.
void set_runtime_enabled(bool enabled);
bool runtime_enabled();

// --- Hot-path helpers --------------------------------------------------------
// Components call these with cached handles; with SL_OBS_ENABLED=0 every one
// of them compiles to an empty inline function and the registration helpers
// return nullptr, so instrumented code needs no #if at the call site.

#if SL_OBS_ENABLED

inline Counter* get_counter(const std::string& name, const std::string& help,
                            Labels labels = {}) {
  return MetricsRegistry::global().counter(name, help, std::move(labels));
}
inline Gauge* get_gauge(const std::string& name, const std::string& help,
                        Labels labels = {}) {
  return MetricsRegistry::global().gauge(name, help, std::move(labels));
}
inline Histogram* get_histogram(const std::string& name, const std::string& help,
                                Labels labels = {}) {
  return MetricsRegistry::global().histogram(name, help, std::move(labels));
}
inline void inc(Counter* counter, std::uint64_t n = 1) {
  if (counter != nullptr && runtime_enabled()) counter->add(n);
}
inline void set(Gauge* gauge, std::int64_t v) {
  if (gauge != nullptr && runtime_enabled()) gauge->set(v);
}
inline void observe(Histogram* histogram, std::uint64_t value) {
  if (histogram != nullptr && runtime_enabled()) histogram->observe(value);
}

#else  // SL_OBS_ENABLED == 0: observability compiled out.

inline Counter* get_counter(const std::string&, const std::string&, Labels = {}) {
  return nullptr;
}
inline Gauge* get_gauge(const std::string&, const std::string&, Labels = {}) {
  return nullptr;
}
inline Histogram* get_histogram(const std::string&, const std::string&, Labels = {}) {
  return nullptr;
}
inline void inc(Counter*, std::uint64_t = 1) {}
inline void set(Gauge*, std::int64_t) {}
inline void observe(Histogram*, std::uint64_t) {}

#endif  // SL_OBS_ENABLED

// JSON string escaping shared by the exposition and the trace writer.
std::string escape_json(const std::string& text);
// Prometheus label-value escaping (backslash, double quote, newline).
std::string escape_prometheus_label(const std::string& text);

}  // namespace sl::obs
