// Deterministic observability: the tracing half (see metrics.hpp).
//
// A TraceSpan is one unit of named work stamped with the sgxsim virtual
// clock — never wall-clock — so a trace for a fixed seed is bit-identical
// across runs, machines and build modes. Spans are written as JSONL (one
// JSON object per line) and the recorder keeps a murmur3-chained
// fingerprint of the serialized lines, which the golden-metrics tests and
// the CI determinism gate compare across replays.
//
// The global recorder is disabled by default: record() returns after one
// relaxed atomic load, so leaving instrumentation in hot layers costs a
// branch. `securelease simulate/loadgen --trace-out FILE` enables it for
// the run and writes the JSONL file at the end. The span buffer is bounded
// (spans past the cap are dropped and counted) — a loadgen run cannot grow
// memory without bound by tracing.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace sl::obs {

struct TraceSpan {
  std::string name;    // e.g. "sim.event", "lease.drain"
  std::string layer;   // subsystem: "sim", "lease", "storage", ...
  std::uint64_t start = 0;  // virtual cycles at span begin
  std::uint64_t end = 0;    // virtual cycles at span end
  Labels attrs;             // ordered key/value attributes

  bool operator==(const TraceSpan&) const = default;
};

// One span as a single JSON line (no trailing newline).
std::string span_to_json(const TraceSpan& span);
// Strict inverse of span_to_json: returns nullopt on any malformed input.
std::optional<TraceSpan> span_from_json(const std::string& line);
// Parses a JSONL document; malformed lines are skipped and counted into
// `malformed` when non-null. Blank lines are ignored.
std::vector<TraceSpan> parse_jsonl(const std::string& text,
                                   std::size_t* malformed = nullptr);

class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCap = 1 << 20;

  void enable(std::size_t cap = kDefaultCap);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void clear();

  // Appends a span (drops + counts when at capacity). No-op when disabled.
  void record(TraceSpan span);

  std::vector<TraceSpan> spans() const;
  std::size_t span_count() const;
  std::uint64_t dropped() const;

  // murmur3_64 chain over the serialized lines, seeded with the span count.
  std::uint64_t fingerprint() const;
  // Whole trace as JSONL (one span per line, trailing newline per line).
  std::string to_jsonl() const;
  // Writes to_jsonl() to `path`; false when the file cannot be opened.
  bool write_jsonl(const std::string& path) const;

  static TraceRecorder& global();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::size_t cap_ = kDefaultCap;
  std::vector<TraceSpan> spans_;
  std::uint64_t dropped_ = 0;
};

}  // namespace sl::obs
