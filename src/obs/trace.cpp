#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>

#include "common/bytes.hpp"
#include "crypto/murmur.hpp"

namespace sl::obs {

namespace {

std::string format_u64(std::uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%llu", (unsigned long long)v);
  return buffer;
}

// --- Minimal strict parser for the span JSON shape ---------------------------
// The reader accepts exactly what span_to_json produces (plus insignificant
// whitespace between tokens): {"name":s,"layer":s,"start":n,"end":n,
// "attrs":{k:v,...}}. A hand-rolled parser keeps the round-trip property
// testable without a JSON dependency.

struct Cursor {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t')) {
      pos++;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      pos++;
      return true;
    }
    return false;
  }
};

bool parse_string(Cursor& cursor, std::string& out) {
  if (!cursor.eat('"')) return false;
  out.clear();
  while (cursor.pos < cursor.text.size()) {
    const char c = cursor.text[cursor.pos++];
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (cursor.pos >= cursor.text.size()) return false;
    const char escape = cursor.text[cursor.pos++];
    switch (escape) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (cursor.pos + 4 > cursor.text.size()) return false;
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = cursor.text[cursor.pos++];
          value <<= 4;
          if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        // The writer only emits \u00XX for control bytes; reject the rest.
        if (value > 0xFF) return false;
        out += static_cast<char>(value);
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated
}

bool parse_u64(Cursor& cursor, std::uint64_t& out) {
  cursor.skip_ws();
  const std::size_t start = cursor.pos;
  std::uint64_t value = 0;
  while (cursor.pos < cursor.text.size() && cursor.text[cursor.pos] >= '0' &&
         cursor.text[cursor.pos] <= '9') {
    const std::uint64_t digit =
        static_cast<std::uint64_t>(cursor.text[cursor.pos] - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
    cursor.pos++;
  }
  if (cursor.pos == start) return false;
  out = value;
  return true;
}

bool parse_key(Cursor& cursor, const char* expected) {
  std::string key;
  if (!parse_string(cursor, key)) return false;
  if (key != expected) return false;
  return cursor.eat(':');
}

}  // namespace

std::string span_to_json(const TraceSpan& span) {
  std::string out = "{\"name\":\"";
  out += escape_json(span.name);
  out += "\",\"layer\":\"";
  out += escape_json(span.layer);
  out += "\",\"start\":";
  out += format_u64(span.start);
  out += ",\"end\":";
  out += format_u64(span.end);
  out += ",\"attrs\":{";
  for (std::size_t i = 0; i < span.attrs.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"";
    out += escape_json(span.attrs[i].first);
    out += "\":\"";
    out += escape_json(span.attrs[i].second);
    out += "\"";
  }
  out += "}}";
  return out;
}

std::optional<TraceSpan> span_from_json(const std::string& line) {
  Cursor cursor{line};
  TraceSpan span;
  if (!cursor.eat('{')) return std::nullopt;
  if (!parse_key(cursor, "name") || !parse_string(cursor, span.name)) {
    return std::nullopt;
  }
  if (!cursor.eat(',') || !parse_key(cursor, "layer") ||
      !parse_string(cursor, span.layer)) {
    return std::nullopt;
  }
  if (!cursor.eat(',') || !parse_key(cursor, "start") ||
      !parse_u64(cursor, span.start)) {
    return std::nullopt;
  }
  if (!cursor.eat(',') || !parse_key(cursor, "end") ||
      !parse_u64(cursor, span.end)) {
    return std::nullopt;
  }
  if (!cursor.eat(',') || !parse_key(cursor, "attrs") || !cursor.eat('{')) {
    return std::nullopt;
  }
  cursor.skip_ws();
  if (cursor.pos < cursor.text.size() && cursor.text[cursor.pos] == '}') {
    cursor.pos++;
  } else {
    while (true) {
      std::string key, value;
      if (!parse_string(cursor, key) || !cursor.eat(':') ||
          !parse_string(cursor, value)) {
        return std::nullopt;
      }
      span.attrs.emplace_back(std::move(key), std::move(value));
      if (cursor.eat(',')) continue;
      if (cursor.eat('}')) break;
      return std::nullopt;
    }
  }
  if (!cursor.eat('}')) return std::nullopt;
  cursor.skip_ws();
  if (cursor.pos != line.size()) return std::nullopt;  // trailing garbage
  return span;
}

std::vector<TraceSpan> parse_jsonl(const std::string& text,
                                   std::size_t* malformed) {
  std::vector<TraceSpan> spans;
  std::size_t bad = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    const std::size_t stop = end == std::string::npos ? text.size() : end;
    if (stop > start) {
      const std::string line = text.substr(start, stop - start);
      if (auto span = span_from_json(line)) {
        spans.push_back(std::move(*span));
      } else {
        bad++;
      }
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
  if (malformed != nullptr) *malformed = bad;
  return spans;
}

void TraceRecorder::enable(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mutex_);
  cap_ = cap;
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::disable() { enabled_.store(false, std::memory_order_relaxed); }

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  dropped_ = 0;
}

void TraceRecorder::record(TraceSpan span) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= cap_) {
    dropped_++;
    return;
  }
  spans_.push_back(std::move(span));
}

std::vector<TraceSpan> TraceRecorder::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::size_t TraceRecorder::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::uint64_t TraceRecorder::fingerprint() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t fingerprint = spans_.size();
  for (const TraceSpan& span : spans_) {
    fingerprint = crypto::murmur3_64(to_bytes(span_to_json(span)), fingerprint);
  }
  return fingerprint;
}

std::string TraceRecorder::to_jsonl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const TraceSpan& span : spans_) {
    out += span_to_json(span);
    out += '\n';
  }
  return out;
}

bool TraceRecorder::write_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_jsonl();
  return static_cast<bool>(out);
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder instance;
  return instance;
}

}  // namespace sl::obs
