#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "common/error.hpp"

namespace sl::obs {

namespace {

std::atomic<bool> g_runtime_enabled{true};

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string format_u64(std::uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%llu", (unsigned long long)v);
  return buffer;
}

std::string format_i64(std::int64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%lld", (long long)v);
  return buffer;
}

// `{k="v",...}` or "" for the unlabeled series.
std::string prometheus_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + escape_prometheus_label(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

// Labels rendered as a JSON object.
std::string json_labels(const Labels& labels) {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + escape_json(labels[i].first) + "\":\"" +
           escape_json(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

int histogram_bucket(std::uint64_t value) {
  if (value <= 1) return 0;
  // Smallest i with value <= 2^i.
  const int width = std::bit_width(value - 1);
  return width > 62 ? kHistogramBuckets - 1 : width;
}

std::uint64_t histogram_upper_bound(int bucket) {
  if (bucket >= kHistogramBuckets - 1) return UINT64_MAX;  // +Inf
  return 1ull << bucket;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  for (int i = 0; i < kHistogramBuckets; ++i) buckets[i] += other.buckets[i];
}

HistogramSnapshot HistogramSnapshot::delta(const HistogramSnapshot& earlier) const {
  HistogramSnapshot out;
  require(count >= earlier.count && sum >= earlier.sum,
          "HistogramSnapshot::delta: earlier snapshot is newer");
  out.count = count - earlier.count;
  out.sum = sum - earlier.sum;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    require(buckets[i] >= earlier.buckets[i],
            "HistogramSnapshot::delta: earlier snapshot is newer");
    out.buckets[i] = buckets[i] - earlier.buckets[i];
  }
  return out;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based), nearest-rank with midpoint.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count - 1) + 0.5) + 1);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (cumulative + buckets[i] >= rank) {
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(histogram_upper_bound(i - 1));
      // The +Inf bucket has no finite upper edge; report its lower edge.
      if (i == kHistogramBuckets - 1) return lower;
      const double upper = static_cast<double>(histogram_upper_bound(i));
      const double within =
          static_cast<double>(rank - cumulative) / static_cast<double>(buckets[i]);
      return lower + (upper - lower) * within;
    }
    cumulative += buckets[i];
  }
  return static_cast<double>(histogram_upper_bound(kHistogramBuckets - 2));
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  for (int i = 0; i < kHistogramBuckets; ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::zero() {
  for (int i = 0; i < kHistogramBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

MetricsRegistry::Series& MetricsRegistry::series(const std::string& name,
                                                 const std::string& help,
                                                 Labels labels, MetricKind kind) {
  Labels key_labels = sorted(std::move(labels));
  std::lock_guard<std::mutex> lock(mutex_);
  const SeriesKey key{name, key_labels};
  auto it = series_.find(key);
  if (it != series_.end()) {
    require(it->second->kind == kind,
            "metric '" + name + "' re-registered with a different kind");
    return *it->second;
  }
  auto entry = std::make_unique<Series>();
  entry->name = name;
  entry->help = help;
  entry->labels = std::move(key_labels);
  entry->kind = kind;
  switch (kind) {
    case MetricKind::kCounter: entry->counter = std::make_unique<Counter>(); break;
    case MetricKind::kGauge: entry->gauge = std::make_unique<Gauge>(); break;
    case MetricKind::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  Series& ref = *entry;
  series_.emplace(key, std::move(entry));
  return ref;
}

Counter* MetricsRegistry::counter(const std::string& name, const std::string& help,
                                  Labels labels) {
  return series(name, help, std::move(labels), MetricKind::kCounter).counter.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              Labels labels) {
  return series(name, help, std::move(labels), MetricKind::kGauge).gauge.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help, Labels labels) {
  return series(name, help, std::move(labels), MetricKind::kHistogram)
      .histogram.get();
}

std::uint64_t MetricsRegistry::counter_sum(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, entry] : series_) {
    if (key.first == name && entry->kind == MetricKind::kCounter) {
      total += entry->counter->value();
    }
  }
  return total;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name,
                                             const Labels& labels) const {
  const Labels key_labels = sorted(labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(SeriesKey{name, key_labels});
  if (it == series_.end() || it->second->kind != MetricKind::kCounter) return 0;
  return it->second->counter->value();
}

HistogramSnapshot MetricsRegistry::histogram_sum(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot total;
  for (const auto& [key, entry] : series_) {
    if (key.first == name && entry->kind == MetricKind::kHistogram) {
      total.merge(entry->histogram->snapshot());
    }
  }
  return total;
}

HistogramSnapshot MetricsRegistry::histogram_value(const std::string& name,
                                                   const Labels& labels) const {
  const Labels key_labels = sorted(labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(SeriesKey{name, key_labels});
  if (it == series_.end() || it->second->kind != MetricKind::kHistogram) return {};
  return it->second->histogram->snapshot();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"metrics\": [";
  bool first = true;
  for (const auto& [key, entry] : series_) {
    std::string body;
    switch (entry->kind) {
      case MetricKind::kCounter: {
        const std::uint64_t value = entry->counter->value();
        if (value == 0) continue;  // untouched: omit for golden determinism
        body = "\"value\": " + format_u64(value);
        break;
      }
      case MetricKind::kGauge: {
        const std::int64_t value = entry->gauge->value();
        if (value == 0) continue;
        body = "\"value\": " + format_i64(value);
        break;
      }
      case MetricKind::kHistogram: {
        const HistogramSnapshot snap = entry->histogram->snapshot();
        if (snap.count == 0) continue;
        body = "\"count\": " + format_u64(snap.count) +
               ", \"sum\": " + format_u64(snap.sum) + ", \"buckets\": [";
        bool first_bucket = true;
        for (int i = 0; i < kHistogramBuckets; ++i) {
          if (snap.buckets[i] == 0) continue;
          if (!first_bucket) body += ", ";
          first_bucket = false;
          const bool inf = i == kHistogramBuckets - 1;
          body += "[" + (inf ? std::string("\"+Inf\"")
                             : format_u64(histogram_upper_bound(i))) +
                  ", " + format_u64(snap.buckets[i]) + "]";
        }
        body += "]";
        break;
      }
    }
    if (!first) out += ",";
    first = false;
    out += "\n    {\"name\": \"" + escape_json(entry->name) + "\", \"type\": \"" +
           metric_kind_name(entry->kind) + "\", \"labels\": " +
           json_labels(entry->labels) + ", " + body + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  std::string current_name;
  for (const auto& [key, entry] : series_) {
    // Skip untouched series (see header).
    switch (entry->kind) {
      case MetricKind::kCounter:
        if (entry->counter->value() == 0) continue;
        break;
      case MetricKind::kGauge:
        if (entry->gauge->value() == 0) continue;
        break;
      case MetricKind::kHistogram:
        if (entry->histogram->count() == 0) continue;
        break;
    }
    if (entry->name != current_name) {
      current_name = entry->name;
      std::string help = entry->help;
      // HELP text: escape backslash and newline per the exposition format.
      std::string escaped;
      for (char c : help) {
        if (c == '\\') escaped += "\\\\";
        else if (c == '\n') escaped += "\\n";
        else escaped += c;
      }
      out += "# HELP " + entry->name + " " + escaped + "\n";
      out += "# TYPE " + entry->name + " " + metric_kind_name(entry->kind) + "\n";
    }
    const std::string labels = prometheus_labels(entry->labels);
    switch (entry->kind) {
      case MetricKind::kCounter:
        out += entry->name + labels + " " + format_u64(entry->counter->value()) + "\n";
        break;
      case MetricKind::kGauge:
        out += entry->name + labels + " " + format_i64(entry->gauge->value()) + "\n";
        break;
      case MetricKind::kHistogram: {
        const HistogramSnapshot snap = entry->histogram->snapshot();
        std::uint64_t cumulative = 0;
        for (int i = 0; i < kHistogramBuckets; ++i) {
          cumulative += snap.buckets[i];
          // Compact exposition: only emit a bucket line when the cumulative
          // count changes (plus the mandatory +Inf bucket).
          const bool last = i == kHistogramBuckets - 1;
          if (snap.buckets[i] == 0 && !last) continue;
          Labels bucket_labels = entry->labels;
          bucket_labels.emplace_back(
              "le", last ? "+Inf" : format_u64(histogram_upper_bound(i)));
          out += entry->name + "_bucket" + prometheus_labels(bucket_labels) +
                 " " + format_u64(cumulative) + "\n";
        }
        out += entry->name + "_sum" + labels + " " + format_u64(snap.sum) + "\n";
        out += entry->name + "_count" + labels + " " + format_u64(snap.count) + "\n";
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::zero_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, entry] : series_) {
    switch (entry->kind) {
      case MetricKind::kCounter: entry->counter->zero(); break;
      case MetricKind::kGauge: entry->gauge->zero(); break;
      case MetricKind::kHistogram: entry->histogram->zero(); break;
    }
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

void set_runtime_enabled(bool enabled) {
  g_runtime_enabled.store(enabled, std::memory_order_relaxed);
}

bool runtime_enabled() {
  return g_runtime_enabled.load(std::memory_order_relaxed);
}

std::string escape_json(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string escape_prometheus_label(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

}  // namespace sl::obs
