#include "core/scheduler.hpp"

#include "common/error.hpp"
#include "lease/thread_backend.hpp"

namespace sl::core {

std::unique_ptr<Scheduler> make_scheduler(Backend backend,
                                          lease::ShardRouter& router) {
  switch (backend) {
    case Backend::kDeterministic:
      return std::make_unique<DeterministicScheduler>(router);
    case Backend::kThreads:
      return std::make_unique<lease::ThreadScheduler>(router);
  }
  ensure(false, "make_scheduler: unknown backend");
  return nullptr;
}

}  // namespace sl::core
