#include "core/securelease.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sl::core {

SecureLeaseSystem::SecureLeaseSystem(SystemOptions options) : options_(options) {}

LeaseProfile SecureLeaseSystem::default_profile(const workloads::WorkloadEntry& entry) {
  LeaseProfile profile;
  profile.license_checks = entry.license_checks;
  if (entry.name == "Key-Value") {
    // The license-check-heaviest workload gets a tight shared pool: small
    // sub-GCL grants, frequent renewals — the paper's worst F-LaaS case.
    profile.tg_multiplier = 1.4;
    profile.peers = 8;
    profile.batch = 1000;
  } else if (entry.faas) {
    profile.batch = 100;  // FaaS apps batch aggressively (Section 7.3)
  }
  return profile;
}

EndToEndStats SecureLeaseSystem::run_workload(const workloads::WorkloadEntry& entry,
                                              partition::Scheme scheme,
                                              std::optional<LeaseProfile> profile_opt) {
  const LeaseProfile profile =
      profile_opt.has_value() ? *profile_opt : default_profile(entry);

  EndToEndStats stats;
  stats.workload = entry.name;
  stats.scheme = scheme;

  // --- Partitioned execution (the "SGX" component of Figure 9). -------------
  const workloads::AppModel model = entry.make_model();
  partition::PartitionResult part;
  switch (scheme) {
    case partition::Scheme::kVanilla: part = partition::partition_vanilla(model); break;
    case partition::Scheme::kFullSgx: part = partition::partition_full_enclave(model); break;
    case partition::Scheme::kGlamdring: part = partition::partition_glamdring(model); break;
    case partition::Scheme::kSecureLease:
    case partition::Scheme::kFlaas:
      // Fair comparison (Section 7.4): F-LaaS uses the same migrated set
      // as SecureLease (its own out-degree partitioning is up to 2000x
      // slower — see bench_ablation_schemes); only the lease-allocation
      // logic differs, so the execution cost simulates identically.
      part = partition::partition_securelease(model).result;
      break;
  }
  partition::SimOptions sim_options;
  sim_options.costs = options_.costs;
  sim_options.seed = options_.seed;
  stats.partition_stats = partition::simulate_run(model, part, sim_options);
  stats.partition_stats.scheme = scheme;
  stats.vanilla_seconds =
      cycles_to_micros(stats.partition_stats.vanilla_cycles) / 1e6;
  stats.sgx_seconds = cycles_to_micros(stats.partition_stats.total_cycles -
                                       stats.partition_stats.vanilla_cycles) / 1e6;

  if (scheme == partition::Scheme::kVanilla) return stats;

  // --- Lease traffic (the "Local alloc." and "Lease renewal" components). ----
  // Build a fresh client machine + server stack and drive the real
  // protocol objects through the workload's license checks.
  constexpr std::uint64_t kPlatformSecret = 0x9a17f00d;
  sgx::SgxRuntime runtime(options_.costs);
  sgx::Platform platform(runtime, /*platform_id=*/options_.seed, kPlatformSecret);
  sgx::AttestationService ias;
  ias.register_platform(options_.seed, kPlatformSecret);

  lease::LicenseAuthority authority(/*vendor_secret=*/0xabcd1234);
  lease::SlRemote remote(authority, ias, lease::SlLocal::expected_measurement(),
                         options_.ra_latency_seconds);

  net::SimNetwork network(options_.seed ^ 0x2222);
  const net::NodeId node = 1;
  network.set_link(node, {.rtt_millis = options_.rtt_millis,
                          .reliability = options_.network_reliability});

  const std::uint64_t total_gcl = static_cast<std::uint64_t>(
      static_cast<double>(profile.license_checks) * profile.tg_multiplier);
  const lease::LicenseFile license = authority.issue(
      /*lease_id=*/100 + static_cast<lease::LeaseId>(entry.name.size()),
      entry.name, lease::LeaseKind::kCountBased, total_gcl);
  remote.provision(license);

  // Peers sharing the pool: Algorithm 1 sees C concurrent requesters.
  for (std::uint32_t p = 0; p < profile.peers; ++p) {
    remote.seed_peer(license.lease_id,
                     std::max<std::uint64_t>(1, total_gcl / 400), 0.95, 0.99);
  }

  lease::UntrustedStore store;
  lease::SlLocalOptions local_options;
  local_options.tokens_per_attestation = profile.batch;
  local_options.health = options_.node_health;
  local_options.keygen_seed = options_.seed ^ 0x10ca1;
  if (scheme == partition::Scheme::kFlaas) {
    local_options.renewal_ra_seconds = options_.ra_latency_seconds;
  }
  lease::SlLocal local(runtime, platform, remote, network, node, store, local_options);

  const Cycles before_init = runtime.clock().cycles();
  require(local.init(), "run_workload: SL-Local init failed");
  const Cycles init_cycles = runtime.clock().cycles() - before_init;

  lease::SlManager manager(runtime, platform, local, entry.name + "/addon", license);

  const Cycles before_checks = runtime.clock().cycles();
  for (std::uint64_t i = 0; i < profile.license_checks; ++i) {
    if (!manager.authorize_execution()) stats.denials++;
  }
  const Cycles check_cycles = runtime.clock().cycles() - before_checks;

  stats.license_checks = profile.license_checks;
  stats.local_attestations = local.stats().local_attestations;
  stats.renewals = local.stats().renewals;
  stats.remote_attestations = remote.stats().remote_attestations;

  // Decompose: renewals (and the F-LaaS per-renewal RAs) are network/RA
  // time; everything else in the check loop is local allocation work.
  const double renewal_rtt_s = options_.rtt_millis / 1e3;
  double renewal_seconds = static_cast<double>(stats.renewals) * renewal_rtt_s;
  if (scheme == partition::Scheme::kFlaas) {
    renewal_seconds += static_cast<double>(stats.renewals) * options_.ra_latency_seconds;
    // F-LaaS has no long-running local service: the init RA is paid per run.
    renewal_seconds += cycles_to_micros(init_cycles) / 1e6;
  } else {
    // SL-Local is a long-running service: its one-time init (incl. the
    // single remote attestation) amortizes across the session.
    renewal_seconds += cycles_to_micros(init_cycles) / 1e6 /
                       std::max<std::uint32_t>(1, profile.session_runs);
  }
  stats.renewal_seconds = renewal_seconds;

  const double check_seconds = cycles_to_micros(check_cycles) / 1e6;
  stats.local_alloc_seconds =
      std::max(0.0, check_seconds - static_cast<double>(stats.renewals) *
                                        (renewal_rtt_s +
                                         (scheme == partition::Scheme::kFlaas
                                              ? options_.ra_latency_seconds
                                              : 0.0)));
  return stats;
}

}  // namespace sl::core
