// SecureLease public API.
//
// This facade assembles the whole system of Figure 3 — a client machine
// with an SGX runtime, SL-Local and per-add-on SL-Managers, a simulated
// WAN, the IAS-role attestation service, and SL-Remote — and exposes the
// end-to-end experiment driver used by the Figure 9 benchmark: run a
// Table 4 workload under a protection scheme (Vanilla / FullSGX / F-LaaS /
// Glamdring / SecureLease) with its license-check traffic, and report the
// overhead decomposition (SGX execution, local allocations, lease
// renewals).
//
// Most downstream users only need this header:
//
//   sl::core::SecureLeaseSystem system(/*seed=*/42);
//   auto stats = system.run_workload(entry, sl::partition::Scheme::kSecureLease);
//
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "lease/sl_local.hpp"
#include "lease/sl_manager.hpp"
#include "lease/sl_remote.hpp"
#include "partition/cost_model.hpp"
#include "partition/partitioner.hpp"
#include "workloads/models.hpp"

namespace sl::core {

// Per-workload licensing configuration for the end-to-end runs.
struct LeaseProfile {
  std::uint64_t license_checks = 100;
  double tg_multiplier = 2.0;     // TG = multiplier x license_checks
  std::uint32_t peers = 4;        // other nodes sharing the license pool
  std::uint32_t batch = 10;       // tokens per local attestation
  // Runs an SL-Local session serves before re-attesting; the one-time
  // remote attestation amortizes across these (SL-Local is long-running).
  std::uint32_t session_runs = 10;
};

// Overhead decomposition in simulated seconds (the Figure 9 stack).
struct EndToEndStats {
  std::string workload;
  partition::Scheme scheme = partition::Scheme::kVanilla;

  double vanilla_seconds = 0.0;
  double sgx_seconds = 0.0;          // partitioned-execution overhead
  double local_alloc_seconds = 0.0;  // SL-Local attest + tree operations
  double renewal_seconds = 0.0;      // network renewals + (amortized) RAs

  std::uint64_t license_checks = 0;
  std::uint64_t local_attestations = 0;
  std::uint64_t renewals = 0;
  std::uint64_t remote_attestations = 0;  // per-session, before amortization
  std::uint64_t denials = 0;

  partition::RunStats partition_stats;

  double total_seconds() const {
    return vanilla_seconds + sgx_seconds + local_alloc_seconds + renewal_seconds;
  }
  double overhead() const {
    return vanilla_seconds == 0.0 ? 0.0 : total_seconds() / vanilla_seconds - 1.0;
  }
};

struct SystemOptions {
  std::uint64_t seed = 42;
  sgx::CostModel costs = sgx::default_cost_model();
  double ra_latency_seconds = 3.5;
  double rtt_millis = 20.0;
  double node_health = 0.95;
  double network_reliability = 0.98;
};

class SecureLeaseSystem {
 public:
  explicit SecureLeaseSystem(SystemOptions options = {});

  // Runs one Table 4 workload end to end under `scheme`. The default lease
  // profile derives from the entry's license-check count; pass `profile`
  // to override.
  EndToEndStats run_workload(const workloads::WorkloadEntry& entry,
                             partition::Scheme scheme,
                             std::optional<LeaseProfile> profile = std::nullopt);

  // Derives the default profile for a workload entry (Key-Value gets the
  // tight pool that makes it the paper's worst F-LaaS case).
  static LeaseProfile default_profile(const workloads::WorkloadEntry& entry);

  const SystemOptions& options() const { return options_; }

 private:
  SystemOptions options_;
};

}  // namespace sl::core
