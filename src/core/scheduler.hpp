// Execution scheduler — the seam between "what the sharded service does"
// and "what carries it out".
//
// A ShardRouter owns N RemoteShards and defines the request semantics:
// routing, bounded queues, batched drains, ledgers, state digests. A
// Scheduler decides who runs those shards:
//
//  * DeterministicScheduler (here, header-only): the PR 3-6 behavior —
//    every shard executes on the calling thread, in ascending shard order,
//    on virtual clocks. The DST, golden metrics and trace fingerprints run
//    on this backend and stay bit-identical.
//  * ThreadScheduler (lease/thread_backend.hpp): one OS thread per shard
//    behind a bounded lock-free MPSC ring, drained in phase-locked epochs.
//    Wall-clock parallel, and — because each shard worker executes exactly
//    the call sequence the deterministic backend would — per-shard ledgers,
//    state digests and conservation totals are bit-identical for the same
//    workload (tests/lease/test_backend_differential.cpp).
//
// The contract both backends share (docs/THREADING.md):
//  * register_client() calls complete before the first submit();
//  * submit()/renew_now() and drain_all() alternate in phases — callers
//    never submit while a drain is in flight (the closed-loop load
//    generator and the gateway path are naturally phased this way);
//  * submit() returns false on backpressure (owning shard at capacity) or
//    a down shard, and nothing is queued;
//  * drain_all() returns completions grouped by ascending shard index, in
//    per-shard drain order.
//
// This header is intentionally header-only: sl_lease implements
// ThreadScheduler against it without linking sl_core (which itself links
// sl_lease). The make_scheduler() factory lives in core/scheduler.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "lease/shard_router.hpp"

namespace sl::core {

enum class Backend {
  kDeterministic = 0,  // single-threaded, virtual cycles (the simulator)
  kThreads = 1,        // thread-per-shard, wall clock + virtual cycles
};

inline const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kDeterministic: return "deterministic";
    case Backend::kThreads: return "threads";
  }
  return "?";
}

inline std::optional<Backend> backend_from_name(std::string_view name) {
  if (name == "deterministic" || name == "sim") return Backend::kDeterministic;
  if (name == "threads" || name == "thread") return Backend::kThreads;
  return std::nullopt;
}

// Scheduler-level rejection counters. The deterministic backend rejects
// inside RemoteShard (visible in ShardStats); the thread backend rejects at
// its submission rings before a shard ever sees the request, so these keep
// the !SL_OBS_ENABLED accounting exact. Both backends increment the same
// per-shard registry counters, so metrics totals agree regardless.
struct SchedulerStats {
  std::uint64_t ring_rejections = 0;  // backpressure at the MPSC rings
  std::uint64_t down_rejections = 0;  // submits routed to a down shard
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  virtual Backend backend() const = 0;

  // Telemetry-only registration; per-shard SLIDs are minted lazily on first
  // use, in submission order on the owning shard (both backends).
  virtual void register_client(lease::ShardRouter::CustomerId customer,
                               lease::ShardRouter::ClientId client,
                               double health, double network) = 0;

  // Routes and queues one renewal. False => rejected (backpressure or down
  // shard); the piggybacked consumption report was NOT applied.
  virtual bool submit(lease::ShardRouter::CustomerId customer,
                      lease::ShardRouter::ClientId client,
                      const lease::LicenseFile& license,
                      std::uint64_t consumed, std::uint64_t ticket) = 0;

  // Executes every shard's pending batch and returns the completions.
  virtual std::vector<lease::ShardRouter::Completion> drain_all() = 0;

  // Synchronous single renewal on one shard (the gateway path): flushes the
  // shard's backlog, then processes exactly this request as a batch of one.
  virtual lease::SlRemote::RenewResult renew_now(
      std::size_t shard, lease::Slid slid, const lease::LicenseFile& license,
      double health, double network, std::uint64_t consumed,
      std::uint64_t request_id = 0) = 0;

  // Wall-clock seconds spent executing shard work (drain epochs). The
  // deterministic backend reports 0 — its only meaningful time axis is the
  // virtual router_.virtual_seconds().
  virtual double wall_seconds() const = 0;

  virtual SchedulerStats scheduler_stats() const = 0;

  lease::ShardRouter& router() { return router_; }
  const lease::ShardRouter& router() const { return router_; }

 protected:
  explicit Scheduler(lease::ShardRouter& router) : router_(router) {}

  lease::ShardRouter& router_;
};

// The simulator backend: pure delegation to the router on the calling
// thread. Zero behavior change against PR 3-6 — the methods ARE the router
// calls the loadgen and tests used to make directly.
class DeterministicScheduler final : public Scheduler {
 public:
  explicit DeterministicScheduler(lease::ShardRouter& router)
      : Scheduler(router) {}

  Backend backend() const override { return Backend::kDeterministic; }

  void register_client(lease::ShardRouter::CustomerId customer,
                       lease::ShardRouter::ClientId client, double health,
                       double network) override {
    router_.register_client(customer, client, health, network);
  }

  bool submit(lease::ShardRouter::CustomerId customer,
              lease::ShardRouter::ClientId client,
              const lease::LicenseFile& license, std::uint64_t consumed,
              std::uint64_t ticket) override {
    return router_.submit(customer, client, license, consumed, ticket);
  }

  std::vector<lease::ShardRouter::Completion> drain_all() override {
    return router_.drain_all();
  }

  lease::SlRemote::RenewResult renew_now(std::size_t shard, lease::Slid slid,
                                         const lease::LicenseFile& license,
                                         double health, double network,
                                         std::uint64_t consumed,
                                         std::uint64_t request_id) override {
    return router_.renew_now(shard, slid, license, health, network, consumed,
                             request_id);
  }

  double wall_seconds() const override { return 0.0; }

  SchedulerStats scheduler_stats() const override { return {}; }
};

// Constructs the requested backend over `router`. The thread backend sizes
// its rings to the router's shard queue capacity, preserving the exact
// backpressure threshold.
std::unique_ptr<Scheduler> make_scheduler(Backend backend,
                                          lease::ShardRouter& router);

}  // namespace sl::core
