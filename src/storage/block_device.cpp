#include "storage/block_device.hpp"

#include <utility>

namespace sl::storage {

BlockDevice::BlockDevice(StorageProfile profile, FaultConfig faults,
                         std::uint64_t seed)
    : profile_(profile), faults_(faults), rng_(seed ^ 0xb10cdef1ceULL) {}

void BlockDevice::charge(Cycles cycles) {
  if (clock_ != nullptr) clock_->advance_cycles(cycles);
}

std::uint64_t BlockDevice::pending_bytes() const {
  std::uint64_t total = 0;
  for (const Bytes& write : pending_) total += write.size();
  return total;
}

bool BlockDevice::append(ByteView bytes) {
  if (profile_.capacity_bytes > 0 &&
      durable_.size() + pending_bytes() + bytes.size() >
          profile_.capacity_bytes) {
    stats_.append_failures++;
    return false;
  }
  charge(profile_.cycles_per_append +
         static_cast<Cycles>(profile_.cycles_per_byte *
                             static_cast<double>(bytes.size())));
  pending_.emplace_back(bytes.begin(), bytes.end());
  stats_.appends++;
  stats_.bytes_appended += bytes.size();
  return true;
}

void BlockDevice::sync() {
  charge(profile_.cycles_per_sync);
  for (Bytes& write : pending_) {
    durable_.insert(durable_.end(), write.begin(), write.end());
  }
  pending_.clear();
  stats_.syncs++;
}

void BlockDevice::crash() {
  stats_.crashes++;
  // Walk the write cache in submission order. Once a write is lost, later
  // writes only persist when the device reorders; once a write is torn,
  // nothing later can be on the medium (the torn write IS the frontier).
  bool frontier_open = true;
  for (const Bytes& write : pending_) {
    if (!frontier_open) {
      stats_.writes_lost++;
      continue;
    }
    if (!rng_.next_bool(faults_.tail_survive_probability)) {
      stats_.writes_lost++;
      if (!rng_.next_bool(faults_.reorder_probability)) frontier_open = false;
      continue;
    }
    if (!write.empty() && rng_.next_bool(faults_.torn_write_probability)) {
      const std::size_t kept =
          static_cast<std::size_t>(rng_.next_below(write.size()));
      durable_.insert(durable_.end(), write.begin(), write.begin() + kept);
      stats_.writes_torn++;
      frontier_open = false;
      continue;
    }
    const std::size_t start = durable_.size();
    durable_.insert(durable_.end(), write.begin(), write.end());
    if (!write.empty() && rng_.next_bool(faults_.flip_probability)) {
      const std::size_t victim =
          start + static_cast<std::size_t>(rng_.next_below(write.size()));
      durable_[victim] ^= static_cast<std::uint8_t>(1 + rng_.next_below(255));
      stats_.bytes_flipped++;
    }
  }
  pending_.clear();
}

void BlockDevice::truncate_to(std::uint64_t bytes) {
  if (bytes < durable_.size()) durable_.resize(bytes);
  pending_.clear();
}

void BlockDevice::reset() {
  durable_.clear();
  pending_.clear();
}

}  // namespace sl::storage
