// Sealed, hash-chained write-ahead journal over a BlockDevice.
//
// Record framing (all little-endian):
//     [u32 cipher_len][u64 seq][u64 chain][ciphertext]
// The ciphertext is the Section 5.5 Protect bundle — plaintext payload with
// its SHA-256 appended, AES-128-CTR encrypted — under a per-record key
// derived from the journal master key and the sequence number, so the
// untrusted medium never sees ledger contents and any bit damage fails the
// hash check on open (encrypt-then-detect). `chain` is the first 8 bytes of
// SHA-256(master_key || prev_chain || seq || ciphertext): a torn tail, a
// duplicated or replayed frame, or a reordered frame breaks the chain and
// replay truncates at the first invalid record instead of trusting it.
// Keying the chain means an adversary holding the image cannot splice a
// middle frame out and recompute the successors' chain fields.
//
// Sequence numbers increase monotonically across the journal's whole life,
// surviving checkpoint truncation (reset() keeps the counter), so a stale
// pre-checkpoint frame can never be replayed into a newer generation.
//
// CheckpointStore keeps two alternating slots (generation parity) of sealed
// state snapshots; the journal's first record after a truncation names the
// generation, making the journal the single source of truth for which slot
// recovery must load.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/sim_clock.hpp"
#include "obs/metrics.hpp"
#include "storage/block_device.hpp"

namespace sl::storage {

struct JournalConfig {
  std::uint64_t master_key = 0x5ea1ed;  // seals every record
  StorageProfile profile;
  FaultConfig faults;
  std::uint64_t device_seed = 0x10ad;
};

struct JournalRecord {
  std::uint64_t seq = 0;
  Bytes payload;  // decrypted, integrity-checked plaintext
};

struct ReplayResult {
  std::vector<JournalRecord> records;
  std::uint64_t valid_bytes = 0;      // length of the verified prefix
  std::uint64_t truncated_bytes = 0;  // bytes after the first invalid frame
  bool tail_truncated = false;        // truncated_bytes > 0
  std::uint64_t final_chain = 0;      // chain value after the last valid frame
  // "end" for a clean parse; otherwise why the scan stopped: "short-frame",
  // "bad-length", "seal-invalid", "chain-mismatch", or "seq-gap" (a frame
  // numbered at or below its predecessor; forward jumps are legal — they
  // are seqs consumed by frames a crash destroyed, see resume_from()).
  std::string stop_reason = "end";
};

class Journal {
 public:
  explicit Journal(JournalConfig config);

  void attach_clock(SimClock* clock) { device_.attach_clock(clock); }

  // Stages one sealed record in the device write cache. Returns the frame's
  // sequence number, or nullopt on a full disk (nothing staged).
  std::optional<std::uint64_t> append(ByteView payload);
  // Group-commit barrier: everything appended so far becomes durable and
  // the synced frontier advances to the last staged sequence number.
  void sync();
  // Power loss (delegates to the device fault model). The in-memory cursors
  // survive — they model what the service had acknowledged, which is
  // exactly what the recovery oracle checks the replay against.
  void crash();
  // Checkpoint truncation: atomically replaces the whole journal with one
  // sealed genesis record (durable on return). Sequence numbering continues.
  void reset(ByteView genesis_payload);

  // Parses and verifies the durable image. Pure read; no state change.
  ReplayResult replay() const;
  // Adopts a replay verdict after a crash: truncates the device to the
  // verified prefix and resumes the chain/sequence cursors from it.
  void resume_from(const ReplayResult& replay);

  std::uint64_t next_seq() const { return next_seq_; }
  // Last sequence number covered by a completed sync (0 = none).
  std::uint64_t synced_seq() const { return synced_seq_; }
  std::uint64_t durable_bytes() const { return device_.durable_bytes(); }
  std::uint64_t pending_bytes() const { return device_.pending_bytes(); }
  BlockDevice& device() { return device_; }
  const BlockDevice& device() const { return device_; }

 private:
  Bytes seal_frame(std::uint64_t seq, ByteView payload);

  JournalConfig config_;
  BlockDevice device_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t staged_seq_ = 0;  // last appended (possibly unsynced)
  std::uint64_t synced_seq_ = 0;
  std::uint64_t chain_ = 0;
  // Metric handles, resolved once at construction (null when compiled out).
  obs::Counter* obs_appends_ = nullptr;
  obs::Counter* obs_append_bytes_ = nullptr;
  obs::Counter* obs_full_rejections_ = nullptr;
  obs::Counter* obs_syncs_ = nullptr;
  obs::Counter* obs_truncations_ = nullptr;
};

// Double-slot sealed snapshot store. write() always syncs before returning:
// a checkpoint is only ever referenced by a journal genesis record written
// *after* it, so an un-synced checkpoint must never be loadable.
class CheckpointStore {
 public:
  CheckpointStore(std::uint64_t master_key, StorageProfile profile,
                  FaultConfig faults, std::uint64_t seed);

  void attach_clock(SimClock* clock);

  // Seals `state` into slot generation%2 (overwriting it) and syncs.
  void write(std::uint64_t generation, ByteView state);
  // Opens the slot for `generation`; nullopt when missing, sealed under a
  // different generation, or damaged.
  std::optional<Bytes> load(std::uint64_t generation) const;

  void crash();
  BlockDevice& slot(std::size_t index) { return slots_[index % 2]; }

 private:
  std::uint64_t master_key_;
  std::vector<BlockDevice> slots_;
  obs::Counter* obs_writes_ = nullptr;
  obs::Counter* obs_write_bytes_ = nullptr;
};

}  // namespace sl::storage
