// Sealed, hash-chained write-ahead journal over a BlockDevice.
//
// Record framing (all little-endian):
//     [u32 cipher_len][u64 seq][u64 epoch][u64 chain][ciphertext]
// The ciphertext is the Section 5.5 Protect bundle — plaintext payload with
// its SHA-256 appended, AES-128-CTR encrypted — under a per-record key
// derived from the journal master key and the sequence number, so the
// untrusted medium never sees ledger contents and any bit damage fails the
// hash check on open (encrypt-then-detect). `chain` is the first 8 bytes of
// SHA-256(master_key || prev_chain || seq || epoch || ciphertext): a torn
// tail, a duplicated or replayed frame, or a reordered frame breaks the
// chain and replay truncates at the first invalid record instead of trusting
// it. Keying the chain means an adversary holding the image cannot splice a
// middle frame out and recompute the successors' chain fields.
//
// `epoch` is the replication fencing term (docs/REPLICATION.md): a leader
// change bumps it via set_epoch(), and because the chain covers it a deposed
// leader cannot forge frames that claim a newer term. Within one image the
// epoch may only stay or grow; a decrease stops replay ("epoch-regression").
//
// Sequence numbers increase monotonically across the journal's whole life,
// surviving checkpoint truncation (reset() keeps the counter), so a stale
// pre-checkpoint frame can never be replayed into a newer generation.
//
// CheckpointStore keeps two alternating slots (generation parity) of sealed
// state snapshots; the journal's first record after a truncation names the
// generation, making the journal the single source of truth for which slot
// recovery must load.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/sim_clock.hpp"
#include "obs/metrics.hpp"
#include "storage/block_device.hpp"

namespace sl::storage {

struct JournalConfig {
  std::uint64_t master_key = 0x5ea1ed;  // seals every record
  StorageProfile profile;
  FaultConfig faults;
  std::uint64_t device_seed = 0x10ad;
};

struct JournalRecord {
  std::uint64_t seq = 0;
  std::uint64_t epoch = 0;  // fencing term sealed into the frame
  Bytes payload;            // decrypted, integrity-checked plaintext
};

struct ReplayResult {
  std::vector<JournalRecord> records;
  std::uint64_t valid_bytes = 0;      // length of the verified prefix
  std::uint64_t truncated_bytes = 0;  // bytes after the first invalid frame
  bool tail_truncated = false;        // truncated_bytes > 0
  std::uint64_t final_chain = 0;      // chain value after the last valid frame
  std::uint64_t final_epoch = 0;      // epoch of the last valid frame
  // "end" for a clean parse; otherwise why the scan stopped: "short-frame",
  // "bad-length", "seal-invalid", "chain-mismatch", "seq-gap" (a frame
  // numbered at or below its predecessor; forward jumps are legal — they
  // are seqs consumed by frames a crash destroyed, see resume_from()), or
  // "epoch-regression" (a frame claiming an older fencing term than its
  // predecessor — only a forgery or stale-leader artifact produces one).
  std::string stop_reason = "end";
};

// Verdict of walking a batch of raw sealed frames as an extension of a known
// chain position. This is the follower-side primitive of the replication
// layer: a replica that trusts (start_seq, start_epoch, start_chain) can
// verify that shipped frame bytes genuinely extend its log without being
// able to forge frames itself (the chain is keyed by the journal master).
struct ChainExtension {
  bool ok = false;  // every byte of the view consumed as a valid frame
  std::vector<JournalRecord> records;
  std::uint64_t valid_bytes = 0;  // verified prefix of the view
  std::uint64_t end_seq = 0;      // cursors after the last valid frame
  std::uint64_t end_chain = 0;
  std::uint64_t end_epoch = 0;
  std::string stop_reason = "end";  // same vocabulary as ReplayResult
};

// Walks `frames` (concatenated sealed journal frames) from the given chain
// position. Rejects anything a full replay would reject, plus any frame at
// or below start_seq or below start_epoch. Pure function, no device I/O.
ChainExtension verify_chain_extension(std::uint64_t master_key,
                                      std::uint64_t start_chain,
                                      std::uint64_t start_seq,
                                      std::uint64_t start_epoch,
                                      ByteView frames);

// The chain value before the first record (what a brand-new follower starts
// from). Exposed so replicas can verify a stream from genesis.
std::uint64_t journal_base_chain(std::uint64_t master_key);

class Journal {
 public:
  explicit Journal(JournalConfig config);

  void attach_clock(SimClock* clock) { device_.attach_clock(clock); }

  // Stages one sealed record in the device write cache. Returns the frame's
  // sequence number, or nullopt on a full disk (nothing staged).
  std::optional<std::uint64_t> append(ByteView payload);
  // Group-commit barrier: everything appended so far becomes durable and
  // the synced frontier advances to the last staged sequence number.
  void sync();
  // Power loss (delegates to the device fault model). The in-memory cursors
  // survive — they model what the service had acknowledged, which is
  // exactly what the recovery oracle checks the replay against.
  void crash();
  // Checkpoint truncation: atomically replaces the whole journal with one
  // sealed genesis record (durable on return). Sequence numbering continues.
  void reset(ByteView genesis_payload);

  // Parses and verifies the durable image. Pure read; no state change.
  ReplayResult replay() const;
  // Adopts a replay verdict after a crash: truncates the device to the
  // verified prefix and resumes the chain/sequence cursors from it.
  void resume_from(const ReplayResult& replay);

  std::uint64_t next_seq() const { return next_seq_; }
  // Last sequence number covered by a completed sync (0 = none).
  std::uint64_t synced_seq() const { return synced_seq_; }
  // Fencing term stamped into every subsequent frame. set_epoch() only moves
  // forward — a leader can be fenced up, never down.
  std::uint64_t epoch() const { return epoch_; }
  void set_epoch(std::uint64_t epoch);
  // Chain cursor after the last staged frame (what the next frame will be
  // chained onto). Followers compare this against their verified cursor.
  std::uint64_t chain() const { return chain_; }
  // Chain cursor after the last *synced* frame — the acked prefix's chain.
  // Replication matches follower acks against this, never the staged
  // cursor, so an in-flight intent can't poison the ack wait.
  std::uint64_t synced_chain() const { return synced_chain_; }
  std::uint64_t durable_bytes() const { return device_.durable_bytes(); }
  std::uint64_t pending_bytes() const { return device_.pending_bytes(); }
  // Byte frontier of the last completed sync barrier — the acked prefix.
  // Distinct from durable_bytes() after a crash: the fault model may flush
  // pending (never-acked) writes into the durable image, and replication
  // must never ship bytes past what group commit acknowledged.
  std::uint64_t synced_bytes() const { return synced_bytes_; }
  BlockDevice& device() { return device_; }
  const BlockDevice& device() const { return device_; }

 private:
  Bytes seal_frame(std::uint64_t seq, ByteView payload);

  JournalConfig config_;
  BlockDevice device_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t staged_seq_ = 0;  // last appended (possibly unsynced)
  std::uint64_t synced_seq_ = 0;
  std::uint64_t synced_bytes_ = 0;
  std::uint64_t chain_ = 0;
  std::uint64_t synced_chain_ = 0;
  std::uint64_t epoch_ = 0;
  // Metric handles, resolved once at construction (null when compiled out).
  obs::Counter* obs_appends_ = nullptr;
  obs::Counter* obs_append_bytes_ = nullptr;
  obs::Counter* obs_full_rejections_ = nullptr;
  obs::Counter* obs_syncs_ = nullptr;
  obs::Counter* obs_truncations_ = nullptr;
};

// Double-slot sealed snapshot store. write() always syncs before returning:
// a checkpoint is only ever referenced by a journal genesis record written
// *after* it, so an un-synced checkpoint must never be loadable.
class CheckpointStore {
 public:
  CheckpointStore(std::uint64_t master_key, StorageProfile profile,
                  FaultConfig faults, std::uint64_t seed);

  void attach_clock(SimClock* clock);

  // Seals `state` into slot generation%2 (overwriting it) and syncs.
  void write(std::uint64_t generation, ByteView state);
  // Opens the slot for `generation`; nullopt when missing, sealed under a
  // different generation, or damaged.
  std::optional<Bytes> load(std::uint64_t generation) const;

  void crash();
  BlockDevice& slot(std::size_t index) { return slots_[index % 2]; }

 private:
  std::uint64_t master_key_;
  std::vector<BlockDevice> slots_;
  obs::Counter* obs_writes_ = nullptr;
  obs::Counter* obs_write_bytes_ = nullptr;
};

}  // namespace sl::storage
