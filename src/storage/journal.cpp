#include "storage/journal.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "crypto/aes128.hpp"
#include "crypto/sha256.hpp"

namespace sl::storage {

namespace {

// Frame header: u32 cipher_len + u64 seq + u64 epoch + u64 chain.
constexpr std::size_t kFrameHeader = 4 + 8 + 8 + 8;
// A sealed bundle is payload || SHA-256, so never shorter than the digest.
constexpr std::size_t kMinCipher = crypto::kSha256DigestSize;
// Sanity bound; a length prefix past this is corruption, not a record.
constexpr std::size_t kMaxCipher = 1u << 20;

constexpr std::uint64_t kJournalNonce = 0x4a4f55524e414c00ULL;    // "JOURNAL"
constexpr std::uint64_t kCheckpointNonce = 0x434b50545f534c00ULL; // "CKPT_SL"

std::uint64_t record_key(std::uint64_t master, std::uint64_t seq) {
  return splitmix64_key(seq, master) | 1;
}

std::uint64_t checkpoint_key(std::uint64_t master, std::uint64_t generation) {
  return splitmix64_key(generation ^ 0xc0de0000ULL, master) | 1;
}

std::uint64_t base_chain(std::uint64_t master) {
  return splitmix64_key(0x6ea15eedULL, master);
}

// Section 5.5 Protect under a caller-supplied key: hash-then-encrypt, so any
// damage to the ciphertext fails the inner hash on open.
Bytes seal_with_key(ByteView payload, std::uint64_t key, std::uint64_t nonce) {
  const crypto::Sha256Digest digest = crypto::Sha256::hash(payload);
  Bytes bundle(payload.begin(), payload.end());
  bundle.insert(bundle.end(), digest.begin(), digest.end());
  return crypto::aes128_ctr(crypto::expand_lease_key(key), nonce, bundle);
}

std::optional<Bytes> open_with_key(ByteView ciphertext, std::uint64_t key,
                                   std::uint64_t nonce) {
  if (ciphertext.size() < crypto::kSha256DigestSize) return std::nullopt;
  const Bytes bundle =
      crypto::aes128_ctr(crypto::expand_lease_key(key), nonce, ciphertext);
  const std::size_t data_size = bundle.size() - crypto::kSha256DigestSize;
  const ByteView data(bundle.data(), data_size);
  const ByteView stored(bundle.data() + data_size, crypto::kSha256DigestSize);
  const crypto::Sha256Digest expected = crypto::Sha256::hash(data);
  if (!constant_time_equal(stored, ByteView(expected.data(), expected.size()))) {
    return std::nullopt;
  }
  return Bytes(data.begin(), data.end());
}

// Keyed: without the master key an adversary cannot recompute chain values,
// so frames can neither be spliced out of the middle (later chains would
// need fixing up) nor appended with a forged seq jump or fencing epoch.
std::uint64_t chain_step(std::uint64_t master, std::uint64_t prev,
                         std::uint64_t seq, std::uint64_t epoch,
                         ByteView ciphertext) {
  Bytes buffer;
  put_u64(buffer, master);
  put_u64(buffer, prev);
  put_u64(buffer, seq);
  put_u64(buffer, epoch);
  buffer.insert(buffer.end(), ciphertext.begin(), ciphertext.end());
  const crypto::Sha256Digest digest = crypto::Sha256::hash(buffer);
  return get_u64(ByteView(digest.data(), digest.size()), 0);
}

// Shared frame walker behind both replay() and verify_chain_extension():
// scans concatenated frames from a known chain position, stopping at the
// first byte that is not a valid extension. `expected_seq == 0` disables the
// rollback check for the first frame (a replay from an empty cursor accepts
// any starting seq; the chain still binds it).
ChainExtension walk_frames(std::uint64_t master, std::uint64_t start_chain,
                           std::uint64_t expected_seq, std::uint64_t epoch,
                           ByteView view) {
  ChainExtension result;
  std::uint64_t chain = start_chain;
  result.end_chain = chain;
  result.end_epoch = epoch;
  result.end_seq = expected_seq == 0 ? 0 : expected_seq - 1;
  std::size_t offset = 0;

  while (true) {
    const std::size_t remaining = view.size() - offset;
    if (remaining == 0) break;
    if (remaining < kFrameHeader) {
      result.stop_reason = "short-frame";
      break;
    }
    const std::uint32_t len = get_u32(view, offset);
    if (len < kMinCipher || len > kMaxCipher ||
        len > remaining - kFrameHeader) {
      result.stop_reason = "bad-length";
      break;
    }
    const std::uint64_t seq = get_u64(view, offset + 4);
    const std::uint64_t frame_epoch = get_u64(view, offset + 12);
    const std::uint64_t chain_field = get_u64(view, offset + 20);
    const ByteView ciphertext(view.data() + offset + kFrameHeader, len);
    const std::uint64_t expect =
        chain_step(master, chain, seq, frame_epoch, ciphertext);
    if (expect != chain_field) {
      // Also catches duplicated or reordered frames: the chain binds every
      // frame to its predecessor's chain value and its own seq and epoch.
      result.stop_reason = "chain-mismatch";
      break;
    }
    if (expected_seq != 0 && seq < expected_seq) {
      // Rollback: a frame numbered at or below its predecessor. Forward
      // jumps are legitimate — append() consumes sequence numbers for
      // frames a crash later destroys, and resume_from() never reuses them
      // (a reused seq would repeat a seal key/nonce pair), so the writer
      // resumes past the hole. The chain field binds the jump to the real
      // predecessor, which a forger without the key cannot reproduce.
      result.stop_reason = "seq-gap";
      break;
    }
    if (frame_epoch < epoch) {
      // A frame claiming an older fencing term than its predecessor: only a
      // stale deposed leader (or a forger) produces one. Epoch bumps are
      // legal — that is exactly what a failover seals into the stream.
      result.stop_reason = "epoch-regression";
      break;
    }
    auto payload =
        open_with_key(ciphertext, record_key(master, seq), kJournalNonce ^ seq);
    if (!payload.has_value()) {
      result.stop_reason = "seal-invalid";
      break;
    }
    result.records.push_back(JournalRecord{seq, frame_epoch, std::move(*payload)});
    chain = expect;
    epoch = frame_epoch;
    expected_seq = seq + 1;
    offset += kFrameHeader + len;
    result.valid_bytes = offset;
    result.end_chain = chain;
    result.end_epoch = epoch;
    result.end_seq = seq;
  }

  result.ok = result.stop_reason == "end" && result.valid_bytes == view.size();
  return result;
}

}  // namespace

ChainExtension verify_chain_extension(std::uint64_t master_key,
                                      std::uint64_t start_chain,
                                      std::uint64_t start_seq,
                                      std::uint64_t start_epoch,
                                      ByteView frames) {
  return walk_frames(master_key, start_chain, start_seq + 1, start_epoch,
                     frames);
}

std::uint64_t journal_base_chain(std::uint64_t master_key) {
  return base_chain(master_key);
}

Journal::Journal(JournalConfig config)
    : config_(config),
      device_(config.profile, config.faults, config.device_seed),
      chain_(base_chain(config.master_key)),
      synced_chain_(chain_) {
  obs_appends_ = obs::get_counter("sl_storage_journal_appends_total",
                                  "Sealed frames staged in the journal");
  obs_append_bytes_ = obs::get_counter("sl_storage_journal_append_bytes_total",
                                       "Framed bytes staged in the journal");
  obs_full_rejections_ =
      obs::get_counter("sl_storage_journal_full_rejections_total",
                       "Appends rejected by a full device");
  obs_syncs_ = obs::get_counter("sl_storage_journal_syncs_total",
                                "Group-commit sync barriers");
  obs_truncations_ = obs::get_counter("sl_storage_journal_truncations_total",
                                      "Checkpoint truncations (reset)");
}

Bytes Journal::seal_frame(std::uint64_t seq, ByteView payload) {
  const Bytes ciphertext = seal_with_key(
      payload, record_key(config_.master_key, seq), kJournalNonce ^ seq);
  Bytes frame;
  put_u32(frame, static_cast<std::uint32_t>(ciphertext.size()));
  put_u64(frame, seq);
  put_u64(frame, epoch_);
  put_u64(frame,
          chain_step(config_.master_key, chain_, seq, epoch_, ciphertext));
  frame.insert(frame.end(), ciphertext.begin(), ciphertext.end());
  return frame;
}

std::optional<std::uint64_t> Journal::append(ByteView payload) {
  const std::uint64_t seq = next_seq_;
  const Bytes frame = seal_frame(seq, payload);
  if (!device_.append(frame)) {
    obs::inc(obs_full_rejections_);
    return std::nullopt;
  }
  obs::inc(obs_appends_);
  obs::inc(obs_append_bytes_, frame.size());
  // Commit the cursors only once the device took the frame.
  chain_ = get_u64(frame, 20);
  staged_seq_ = seq;
  next_seq_ = seq + 1;
  return seq;
}

void Journal::sync() {
  device_.sync();
  synced_seq_ = staged_seq_;
  synced_bytes_ = device_.durable_bytes();
  synced_chain_ = chain_;
  obs::inc(obs_syncs_);
}

void Journal::crash() { device_.crash(); }

void Journal::set_epoch(std::uint64_t epoch) {
  ensure(epoch >= epoch_, "Journal::set_epoch: fencing epoch may not regress");
  epoch_ = epoch;
}

void Journal::reset(ByteView genesis_payload) {
  obs::inc(obs_truncations_);
  device_.reset();
  chain_ = base_chain(config_.master_key);
  const auto seq = append(genesis_payload);
  ensure(seq.has_value(), "Journal::reset: genesis record did not fit");
  sync();
}

ReplayResult Journal::replay() const {
  ReplayResult result;
  const Bytes& image = device_.contents();
  ChainExtension walk =
      walk_frames(config_.master_key, base_chain(config_.master_key),
                  /*expected_seq=*/0, /*epoch=*/0,
                  ByteView(image.data(), image.size()));
  result.records = std::move(walk.records);
  result.valid_bytes = walk.valid_bytes;
  result.final_chain = walk.end_chain;
  result.final_epoch = walk.end_epoch;
  result.stop_reason = std::move(walk.stop_reason);
  result.truncated_bytes = image.size() - result.valid_bytes;
  result.tail_truncated = result.truncated_bytes > 0;
  // Replay is a cold recovery path; a labeled registry lookup per verdict
  // is acceptable here.
  obs::inc(obs::get_counter("sl_storage_replay_verdicts_total",
                            "Journal replays by terminating verdict",
                            {{"reason", result.stop_reason}}));
  return result;
}

void Journal::resume_from(const ReplayResult& replay) {
  device_.truncate_to(replay.valid_bytes);
  // The verified image is the new incarnation's acked frontier: everything
  // in it (including former intents that survived the crash) is durable
  // history the resumed writer builds on.
  synced_bytes_ = replay.valid_bytes;
  chain_ = replay.final_chain;
  synced_chain_ = replay.final_chain;
  epoch_ = std::max(epoch_, replay.final_epoch);
  if (!replay.records.empty()) {
    const std::uint64_t last = replay.records.back().seq;
    staged_seq_ = last;
    synced_seq_ = last;
    next_seq_ = std::max(next_seq_, last + 1);
  } else {
    staged_seq_ = 0;
    synced_seq_ = 0;
  }
}

// --- CheckpointStore --------------------------------------------------------

CheckpointStore::CheckpointStore(std::uint64_t master_key,
                                 StorageProfile profile, FaultConfig faults,
                                 std::uint64_t seed)
    : master_key_(master_key) {
  slots_.emplace_back(profile, faults, seed);
  slots_.emplace_back(profile, faults, seed + 1);
  obs_writes_ = obs::get_counter("sl_storage_checkpoint_writes_total",
                                 "Sealed checkpoint snapshots written");
  obs_write_bytes_ = obs::get_counter("sl_storage_checkpoint_bytes_total",
                                      "Checkpoint snapshot bytes written");
}

void CheckpointStore::attach_clock(SimClock* clock) {
  for (BlockDevice& slot : slots_) slot.attach_clock(clock);
}

void CheckpointStore::write(std::uint64_t generation, ByteView state) {
  BlockDevice& device = slots_[generation % 2];
  const Bytes ciphertext =
      seal_with_key(state, checkpoint_key(master_key_, generation),
                    kCheckpointNonce ^ generation);
  Bytes frame;
  put_u32(frame, static_cast<std::uint32_t>(ciphertext.size()));
  put_u64(frame, generation);
  frame.insert(frame.end(), ciphertext.begin(), ciphertext.end());
  device.reset();
  ensure(device.append(frame), "CheckpointStore: snapshot did not fit");
  device.sync();
  obs::inc(obs_writes_);
  obs::inc(obs_write_bytes_, frame.size());
}

std::optional<Bytes> CheckpointStore::load(std::uint64_t generation) const {
  // Cold recovery path: labeled lookup per verdict is acceptable.
  const auto verdict = [](std::optional<Bytes> result) {
    obs::inc(obs::get_counter(
        "sl_storage_checkpoint_loads_total", "Checkpoint slot loads by result",
        {{"result", result.has_value() ? "ok" : "failed"}}));
    return result;
  };
  const BlockDevice& device = slots_[generation % 2];
  const Bytes& image = device.contents();
  const ByteView view(image.data(), image.size());
  if (image.size() < 12) return verdict(std::nullopt);
  const std::uint32_t len = get_u32(view, 0);
  if (len < kMinCipher || len > kMaxCipher || len != image.size() - 12) {
    return verdict(std::nullopt);
  }
  if (get_u64(view, 4) != generation) return verdict(std::nullopt);
  const ByteView ciphertext(image.data() + 12, len);
  return verdict(open_with_key(ciphertext,
                               checkpoint_key(master_key_, generation),
                               kCheckpointNonce ^ generation));
}

void CheckpointStore::crash() {
  for (BlockDevice& slot : slots_) slot.crash();
}

}  // namespace sl::storage
