// Simulated block storage for the durability layer.
//
// A BlockDevice models an append-oriented device with an explicit sync
// barrier, the abstraction every write-ahead journal is built on:
//  * append() stages bytes in the volatile write cache (pending);
//  * sync() is the fsync barrier — pending bytes become durable;
//  * crash() models power loss: durable bytes survive intact, while each
//    pending (unsynced) write is subjected to a seeded fault model — lost
//    outright, torn mid-write, persisted out of order relative to a lost
//    predecessor, or persisted with a flipped byte.
// All costs are virtual cycles charged to an attached SimClock, so storage
// performance is as deterministic as the rest of the simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/sim_clock.hpp"

namespace sl::storage {

struct StorageProfile {
  // Fixed cost of staging one write plus a per-byte copy cost.
  Cycles cycles_per_append = 2'000;
  double cycles_per_byte = 2.0;
  // Cost of the sync barrier (the fsync the group commit amortizes).
  Cycles cycles_per_sync = 80'000;
  // Durable capacity; appends past it fail (full disk). 0 = unbounded.
  std::uint64_t capacity_bytes = 0;
};

// Crash-time fault model applied to *unsynced* writes only: the device
// honours completed sync barriers (a device that lies about fsync cannot
// support acknowledged durability at all), but anything still in the write
// cache at power loss is fair game.
struct FaultConfig {
  // An unsynced write persists anyway (reached the medium before the cut).
  double tail_survive_probability = 0.0;
  // A surviving write is torn: only a strict prefix reaches the medium.
  double torn_write_probability = 0.0;
  // After a lost write, later writes may still persist (write reordering).
  double reorder_probability = 0.0;
  // A surviving unsynced write gets one byte flipped (medium corruption).
  double flip_probability = 0.0;
};

struct DeviceStats {
  std::uint64_t appends = 0;
  std::uint64_t append_failures = 0;  // full disk
  std::uint64_t syncs = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t crashes = 0;
  std::uint64_t writes_lost = 0;    // unsynced writes dropped at crash
  std::uint64_t writes_torn = 0;    // unsynced writes partially persisted
  std::uint64_t bytes_flipped = 0;  // corruption injected into survivors
};

class BlockDevice {
 public:
  BlockDevice(StorageProfile profile, FaultConfig faults, std::uint64_t seed);

  // Storage work is charged here; null detaches (no charging).
  void attach_clock(SimClock* clock) { clock_ = clock; }

  // Stages one write. Returns false (and charges nothing durable) when the
  // durable image plus pending writes would exceed capacity.
  bool append(ByteView bytes);
  // The fsync barrier: every pending write becomes durable, in order.
  void sync();
  // Power loss: applies the fault model to pending writes, clears them.
  void crash();
  // Truncates the durable image to `bytes` and drops pending writes (used
  // by recovery to discard a detected torn tail) .
  void truncate_to(std::uint64_t bytes);
  // Atomic rotation: clears the durable image and the write cache (the
  // journal checkpointer's truncate step).
  void reset();

  const Bytes& contents() const { return durable_; }
  std::uint64_t durable_bytes() const { return durable_.size(); }
  std::uint64_t pending_bytes() const;
  std::size_t pending_writes() const { return pending_.size(); }
  const StorageProfile& profile() const { return profile_; }
  const DeviceStats& stats() const { return stats_; }

 private:
  void charge(Cycles cycles);

  StorageProfile profile_;
  FaultConfig faults_;
  Rng rng_;
  SimClock* clock_ = nullptr;
  Bytes durable_;
  std::vector<Bytes> pending_;
  DeviceStats stats_;
};

}  // namespace sl::storage
